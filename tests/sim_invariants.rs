//! Property-based invariants at the simulator level (complementing the
//! engine-level proptests in `miniraid-core`): random fail/recover/txn
//! schedules through the full event-driven testbed must preserve
//! convergence and availability guarantees.

use miniraid::core::config::TwoStepRecovery;
use miniraid::core::ids::{ItemId, SiteId, TxnId};
use miniraid::core::ops::{Operation, Transaction};
use miniraid::core::ProtocolConfig;
use miniraid::sim::{CostModel, ProcessorModel, SimConfig, Simulation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Fail(u8),
    Recover(u8),
    Txn {
        site: u8,
        ops: Vec<(bool, u32, u64)>,
    },
}

fn arb_step() -> impl Strategy<Value = Step> {
    let op = (any::<bool>(), 0u32..16, 1u64..1000);
    prop_oneof![
        1 => (0u8..3).prop_map(Step::Fail),
        1 => (0u8..3).prop_map(Step::Recover),
        5 => ((0u8..3), proptest::collection::vec(op, 1..5))
            .prop_map(|(site, ops)| Step::Txn { site, ops }),
    ]
}

fn build_sim(batch: bool) -> Simulation {
    let protocol = ProtocolConfig {
        db_size: 16,
        n_sites: 3,
        two_step_recovery: batch.then_some(TwoStepRecovery {
            threshold: 1.0,
            batch_size: 16,
        }),
        ..ProtocolConfig::default()
    };
    let mut config = SimConfig::paper(protocol);
    config.cost = CostModel::zero_cpu();
    config.processor = ProcessorModel::PerSite;
    Simulation::new(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any schedule (≥1 site up at all times) plus a final
    /// recover-everyone phase with batch copiers, all replicas converge.
    #[test]
    fn random_schedules_converge_through_the_simulator(
        steps in proptest::collection::vec(arb_step(), 1..40)
    ) {
        let mut sim = build_sim(true);
        let mut next_txn = 1u64;
        for step in steps {
            match step {
                Step::Fail(site) => {
                    let up = (0..3).filter(|s| sim.engine(SiteId(*s)).is_up()).count();
                    if up > 1 && sim.engine(SiteId(site)).is_up() {
                        sim.fail_site(SiteId(site), true);
                    }
                }
                Step::Recover(site) => {
                    if !sim.engine(SiteId(site)).is_up() {
                        sim.recover_site(SiteId(site));
                    }
                }
                Step::Txn { site, ops } => {
                    if !sim.engine(SiteId(site)).is_up() {
                        continue;
                    }
                    let txn = Transaction::new(
                        TxnId(next_txn),
                        ops.iter()
                            .map(|(w, item, value)| {
                                let item = ItemId(item % 16);
                                if *w {
                                    Operation::Write(item, *value)
                                } else {
                                    Operation::Read(item)
                                }
                            })
                            .collect(),
                    );
                    next_txn += 1;
                    sim.run_txn(SiteId(site), txn);
                }
            }
        }
        // Bring everyone up; batch recovery drains all fail-locks.
        for s in 0..3u8 {
            if !sim.engine(SiteId(s)).is_up() {
                prop_assert!(sim.recover_site(SiteId(s)));
            }
        }
        sim.run_to_quiescence();
        for s in 0..3u8 {
            prop_assert_eq!(sim.engine(SiteId(s)).own_stale_count(), 0,
                "site {} still stale", s);
        }
        let d0 = sim.engine(SiteId(0)).db().digest();
        for s in 1..3u8 {
            prop_assert_eq!(sim.engine(SiteId(s)).db().digest(), d0,
                "site {} diverged", s);
        }
    }

    /// Virtual time advances monotonically and every injected transaction
    /// is reported exactly once.
    #[test]
    fn every_transaction_is_reported_once(
        txns in proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 0u32..16, 1u64..100), 1..4),
            1..20
        )
    ) {
        let mut sim = build_sim(false);
        let mut last_now = sim.now();
        for (i, ops) in txns.iter().enumerate() {
            let id = TxnId(i as u64 + 1);
            let txn = Transaction::new(
                id,
                ops.iter().map(|(w, item, value)| {
                    let item = ItemId(item % 16);
                    if *w { Operation::Write(item, *value) } else { Operation::Read(item) }
                }).collect(),
            );
            let rec = sim.run_txn(SiteId((i % 3) as u8), txn);
            prop_assert_eq!(rec.report.txn, id);
            prop_assert!(sim.now() >= last_now);
            last_now = sim.now();
        }
        prop_assert_eq!(sim.records.len(), txns.len());
        let mut seen = std::collections::HashSet::new();
        for r in &sim.records {
            prop_assert!(seen.insert(r.report.txn), "duplicate report");
            prop_assert!(r.end >= r.start);
        }
    }
}
