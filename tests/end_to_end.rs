//! Cross-crate integration: simulator + workload generators + durable
//! storage + codec working together.

use miniraid::core::ids::SiteId;
use miniraid::core::ProtocolConfig;
use miniraid::sim::{CostModel, Manager, ProcessorModel, Routing, SimConfig, Simulation};
use miniraid::storage::{DurableStore, ItemValue};
use miniraid::txn::et1::{Et1Gen, Et1Scale};
use miniraid::txn::wisconsin::WisconsinGen;
use miniraid::txn::workload::ZipfGen;

fn sim(db_size: u32, n_sites: u8) -> Simulation {
    let protocol = ProtocolConfig {
        db_size,
        n_sites,
        ..ProtocolConfig::default()
    };
    let mut config = SimConfig::paper(protocol);
    config.cost = CostModel::zero_cpu();
    config.processor = ProcessorModel::PerSite;
    Simulation::new(config)
}

#[test]
fn et1_workload_through_failure_and_recovery_converges() {
    let scale = Et1Scale::tiny();
    let sim = sim(scale.db_size(), 3);
    let mut manager = Manager::new(sim, Et1Gen::new(42, scale));

    manager.run_many(&Routing::RoundRobinUp, 30);
    manager.sim.fail_site(SiteId(1), true);
    manager.run_many(&Routing::RoundRobinUp, 30);
    assert!(manager.sim.recover_site(SiteId(1)));
    manager.run_until(&Routing::RoundRobinUp, 2000, |sim| {
        sim.faillock_counts().iter().all(|c| *c == 0)
    });

    assert!(manager.sim.up_sites_converged());
    // All ET1 transactions are updates; no aborts besides none expected
    // here (failure was announced).
    let aborted = manager.series.iter().filter(|p| !p.committed).count();
    assert_eq!(aborted, 0);
}

#[test]
fn wisconsin_workload_runs_range_queries_over_replicas() {
    let sim = sim(1000, 2);
    let mut manager = Manager::new(sim, WisconsinGen::new(9, 1000));
    let records = manager.run_many(&Routing::RoundRobinUp, 40);
    assert!(records.iter().all(|r| r.report.outcome.is_committed()));
    // Range selections return as many results as distinct items read.
    for r in &records {
        if r.report.stats.writes == 0 {
            assert!(r.report.read_results.len() == 10 || r.report.read_results.len() == 100);
        }
    }
    assert!(manager.sim.up_sites_converged());
}

#[test]
fn zipf_workload_hot_items_survive_failures() {
    let sim = sim(100, 3);
    let mut manager = Manager::new(sim, ZipfGen::new(5, 100, 6, 0.99, 0.5));
    manager.run_many(&Routing::RoundRobinUp, 50);
    manager.sim.fail_site(SiteId(2), true);
    manager.run_many(&Routing::RoundRobinUp, 50);
    assert!(manager.sim.recover_site(SiteId(2)));
    manager.run_until(&Routing::RoundRobinUp, 3000, |sim| {
        sim.faillock_counts().iter().all(|c| *c == 0)
    });
    assert!(manager.sim.up_sites_converged());
    // Zipf skew means the hot head clears fast: after recovery item 0
    // (the hottest) must be fresh everywhere.
    for s in 0..3u8 {
        assert!(!manager
            .sim
            .engine(SiteId(s))
            .faillocks()
            .is_locked(miniraid::core::ids::ItemId(0), SiteId(s)));
    }
}

#[test]
fn committed_state_can_be_made_durable_and_recovered() {
    // Drive the replicated simulator, then persist one site's committed
    // state through the WAL-backed store and verify crash recovery
    // reproduces the same database image.
    let sim_instance = sim(20, 2);
    let mut manager = Manager::new(
        sim_instance,
        miniraid::txn::workload::UniformGen::new(3, 20, 5),
    );
    let records = manager.run_many(&Routing::RoundRobinUp, 40);

    let mut dir = std::env::temp_dir();
    dir.push(format!("miniraid-e2e-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut store = DurableStore::open(&dir, 20).unwrap();
        for r in &records {
            if r.report.outcome.is_committed() {
                // Reconstruct the write set from the engine's db is not
                // possible post-hoc; use the report's txn id with the
                // coordinator engine instead: replay through commits.
                let _ = r;
            }
        }
        // Persist the final replicated image (a snapshot-style commit).
        let engine_db = manager.sim.engine(SiteId(0)).db();
        let writes: Vec<(u32, ItemValue)> = engine_db.iter().collect();
        store.commit(9999, &writes).unwrap();
    } // crash
    let mut store = DurableStore::open(&dir, 20).unwrap();
    // Restart is instant: the image hydrates lazily, so force full
    // replay before digesting the in-memory store.
    store.hydrate_all().unwrap();
    assert_eq!(
        store.mem().digest(),
        manager.sim.engine(SiteId(0)).db().digest(),
        "durable recovery must reproduce the replicated image"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn simulator_and_threaded_cluster_agree_on_a_scripted_run() {
    use miniraid::cluster::{Cluster, ClusterTiming};
    use miniraid::core::ids::{ItemId, TxnId};
    use miniraid::core::ops::{Operation, Transaction};
    use std::time::Duration;

    let script: Vec<Transaction> = (1..=10u64)
        .map(|i| {
            Transaction::new(
                TxnId(i),
                vec![
                    Operation::Write(ItemId((i % 8) as u32), i * 10),
                    Operation::Read(ItemId(((i + 1) % 8) as u32)),
                ],
            )
        })
        .collect();

    // Simulator run.
    let mut s = sim(8, 2);
    let mut sim_reads = Vec::new();
    for txn in &script {
        let rec = s.run_txn(SiteId((txn.id.0 % 2) as u8), txn.clone());
        assert!(rec.report.outcome.is_committed());
        sim_reads.push(rec.report.read_results.clone());
    }

    // Threaded cluster run of the same script.
    let config = ProtocolConfig {
        db_size: 8,
        n_sites: 2,
        ..ProtocolConfig::default()
    };
    let (cluster, mut client) = Cluster::launch(config, ClusterTiming::default());
    let mut cluster_reads = Vec::new();
    for txn in &script {
        let report = client
            .run_txn(
                SiteId((txn.id.0 % 2) as u8),
                txn.clone(),
                Duration::from_secs(5),
            )
            .unwrap();
        assert!(report.outcome.is_committed());
        cluster_reads.push(report.read_results.clone());
    }
    client.terminate_all();
    cluster.join(Duration::from_secs(5));

    // Same engine, same script, same serial order => identical reads.
    assert_eq!(sim_reads, cluster_reads);
}
