//! Deterministic tests for the pipelined (multi-transaction) engine:
//! conflict-serializable histories under `max_inflight > 1`, and the
//! convergence invariant across failure/recovery schedules.
//!
//! The engines are driven by a hand-rolled deterministic pump: messages
//! flow through one global FIFO queue; timers fire (in armed order)
//! only when no message can make progress, which is exactly the
//! quiescent moment a timeout models.

use std::collections::VecDeque;

use miniraid::core::config::ProtocolConfig;
use miniraid::core::engine::{Input, Output, SiteEngine, TimerId};
use miniraid::core::ids::{ItemId, SiteId, TxnId};
use miniraid::core::messages::{Command, TxnReport};
use miniraid::core::ops::{Operation, Transaction};
use miniraid::core::session::SiteStatus;
use miniraid::txn::history::{HistoryOp, PrecedenceGraph};
use proptest::prelude::*;

struct Pump {
    engines: Vec<SiteEngine>,
    queue: VecDeque<(SiteId, Input)>,
    timers: VecDeque<(SiteId, TimerId)>,
    reports: Vec<TxnReport>,
    /// Per-site apply history: one `HistoryOp` per persisted write, in
    /// the order the site applied them.
    histories: Vec<Vec<HistoryOp>>,
}

impl Pump {
    fn new(config: ProtocolConfig) -> Self {
        let n = config.n_sites;
        let mut config = config;
        // Persist outputs are this harness's observation channel: each
        // one is an atomic application of a transaction's (fresher)
        // writes at one site.
        config.emit_persistence = true;
        let engines = (0..n)
            .map(|i| SiteEngine::new(SiteId(i), config.clone()))
            .collect();
        Pump {
            engines,
            queue: VecDeque::new(),
            timers: VecDeque::new(),
            reports: Vec::new(),
            histories: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn collect(&mut self, at: SiteId, out: Vec<Output>) {
        for output in out {
            match output {
                Output::Send { to, msg } => {
                    self.queue.push_back((to, Input::Deliver { from: at, msg }));
                }
                Output::SetTimer(id) => self.timers.push_back((at, id)),
                Output::Report(report) => self.reports.push(report),
                Output::Persist { txn, writes, .. } => {
                    self.histories[at.index()].extend(writes.iter().map(|(item, _)| HistoryOp {
                        txn,
                        item: *item,
                        is_write: true,
                    }));
                }
                _ => {}
            }
        }
    }

    fn input(&mut self, site: SiteId, input: Input) {
        let out = self.engines[site.index()].handle_owned(input);
        self.collect(site, out);
    }

    fn begin(&mut self, site: SiteId, txn: Transaction) {
        self.queue
            .push_back((site, Input::Control(Command::Begin(txn))));
    }

    /// Drain messages; once drained, fire the oldest armed timer and
    /// drain again. Quiescent when both queues are empty.
    fn run_to_quiescence(&mut self) {
        let mut steps = 0usize;
        loop {
            while let Some((site, input)) = self.queue.pop_front() {
                self.input(site, input);
                steps += 1;
                assert!(steps < 1_000_000, "pump did not quiesce");
            }
            match self.timers.pop_front() {
                Some((site, id)) => self.input(site, Input::Timer(id)),
                None => return,
            }
        }
    }

    fn up_count(&self) -> usize {
        self.engines
            .iter()
            .filter(|e| e.status() == SiteStatus::Up)
            .count()
    }

    /// Digest equality over sites that are up with no stale copies.
    fn converged(&self) -> bool {
        let mut digests = self
            .engines
            .iter()
            .filter(|e| e.status() == SiteStatus::Up && e.own_stale_count() == 0)
            .map(|e| e.db().digest());
        match digests.next() {
            Some(first) => digests.all(|d| d == first),
            None => true,
        }
    }
}

fn write_txn(id: u64, items: &[u32]) -> Transaction {
    Transaction::new(
        TxnId(id),
        items
            .iter()
            .map(|item| Operation::Write(ItemId(*item), id))
            .collect(),
    )
}

fn config(n_sites: u8, db_size: u32, max_inflight: usize) -> ProtocolConfig {
    ProtocolConfig {
        db_size,
        n_sites,
        max_inflight,
        ..ProtocolConfig::default()
    }
}

/// Assert every site's apply history is conflict-serializable, and that
/// transaction-id order (versions are transaction ids) is an equivalent
/// serial order of each — one shared serial order across all replicas.
fn assert_histories_serializable(pump: &Pump) {
    for (site, history) in pump.histories.iter().enumerate() {
        let graph = PrecedenceGraph::build(history);
        assert!(
            graph.is_serializable(),
            "site {site}: apply history not conflict-serializable"
        );
        let mut txns: Vec<TxnId> = history.iter().map(|op| op.txn).collect();
        txns.sort_unstable();
        txns.dedup();
        for (i, a) in txns.iter().enumerate() {
            for b in &txns[i + 1..] {
                assert!(
                    !graph.requires(*b, *a),
                    "site {site}: history orders {b} before {a}, against id order"
                );
            }
        }
    }
}

#[test]
fn pipelined_conflicting_histories_are_serializable() {
    let mut pump = Pump::new(config(3, 64, 4));
    // 24 transactions at one coordinator with heavily overlapping write
    // sets: every window of 4 conflicts somewhere, so the pipeline must
    // serialize through the lock table.
    for k in 0..24u64 {
        let items = [(k % 4) as u32, 8 + (k % 3) as u32, 16 + k as u32];
        pump.begin(SiteId(0), write_txn(k + 1, &items));
    }
    pump.run_to_quiescence();

    assert_eq!(pump.reports.len(), 24);
    assert!(
        pump.reports.iter().all(|r| r.outcome.is_committed()),
        "all conflicting pipelined transactions commit"
    );
    assert_histories_serializable(&pump);
    assert!(pump.converged(), "replicas diverged");

    let m = pump.engines[0].metrics();
    assert!(
        m.inflight_high_water >= 2,
        "pipeline never overlapped (high water {})",
        m.inflight_high_water
    );
    assert!(
        m.lock_waits > 0,
        "conflicting write sets never waited for locks"
    );
}

#[test]
fn disjoint_pipeline_admits_full_window() {
    let mut pump = Pump::new(config(3, 64, 4));
    for k in 0..16u64 {
        // Pairwise-disjoint write sets: nothing ever waits.
        pump.begin(
            SiteId(0),
            write_txn(k + 1, &[k as u32 * 4, k as u32 * 4 + 1]),
        );
    }
    pump.run_to_quiescence();

    assert!(pump.reports.iter().all(|r| r.outcome.is_committed()));
    assert_histories_serializable(&pump);
    let m = pump.engines[0].metrics();
    assert_eq!(m.lock_waits, 0);
    assert_eq!(m.inflight_high_water, 4, "admission should fill the window");
}

#[test]
fn pipelined_commits_survive_fail_and_recover() {
    let mut pump = Pump::new(config(3, 32, 4));
    for k in 0..6u64 {
        pump.begin(SiteId(0), write_txn(k + 1, &[k as u32, 16 + k as u32]));
    }
    pump.run_to_quiescence();

    // Site 1 crashes silently: the next wave sets fail-locks for it
    // (the coordinator detects the failure by ack timeout).
    pump.input(SiteId(1), Input::Control(Command::Fail));
    for k in 6..18u64 {
        let items = [(k % 8) as u32, 16 + (k % 8) as u32];
        pump.begin(SiteId(0), write_txn(k + 1, &items));
    }
    pump.run_to_quiescence();
    // The operational sites track which of site 1's copies went stale.
    assert!(
        pump.engines[0].faillocks().count_locked_for(SiteId(1)) > 0,
        "failure left no fail-locks behind"
    );

    pump.input(SiteId(1), Input::Control(Command::Recover));
    pump.run_to_quiescence();
    assert_eq!(pump.engines[1].status(), SiteStatus::Up);

    // Touch every item once more: writes refresh stale copies and clear
    // the remaining fail-locks.
    for k in 0..16u64 {
        pump.begin(SiteId(2), write_txn(100 + k, &[k as u32, 16 + k as u32]));
    }
    pump.run_to_quiescence();

    assert_eq!(pump.engines[1].own_stale_count(), 0);
    assert_histories_serializable(&pump);
    assert!(pump.converged(), "replicas diverged after recovery");
    let committed = pump
        .reports
        .iter()
        .filter(|r| r.outcome.is_committed())
        .count();
    assert!(committed >= 22, "only {committed} commits");
}

/// One schedule action, decoded from proptest-generated bytes.
#[derive(Debug, Clone, Copy)]
enum Action {
    Submit { site: u8, a: u8, b: u8 },
    Fail(u8),
    Recover(u8),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(site, a, b)| Action::Submit {
            site,
            a,
            b
        }),
        any::<u8>().prop_map(Action::Fail),
        any::<u8>().prop_map(Action::Recover),
    ]
}

proptest! {
    /// Convergence under random fail/recover schedules with a deep
    /// pipeline: after every site is recovered and every item written
    /// once more, all replicas hold identical databases.
    #[test]
    fn convergence_under_random_fail_recover(
        actions in proptest::collection::vec(arb_action(), 0..12),
        max_inflight in 1usize..6,
    ) {
        const N: u8 = 3;
        const DB: u32 = 16;
        let mut pump = Pump::new(config(N, DB, max_inflight));
        let mut next_txn = 1u64;

        for action in actions {
            pump.run_to_quiescence();
            match action {
                Action::Submit { site, a, b } => {
                    let site = SiteId(site % N);
                    let items = [a as u32 % DB, b as u32 % DB];
                    let items = if items[0] == items[1] {
                        &items[..1]
                    } else {
                        &items[..]
                    };
                    let txn = write_txn(next_txn, items);
                    next_txn += 1;
                    pump.begin(site, txn);
                }
                Action::Fail(site) => {
                    let site = SiteId(site % N);
                    // Never fail the last operational site (the paper's
                    // total-failure case needs operator intervention).
                    if pump.engines[site.index()].status() == SiteStatus::Up
                        && pump.up_count() >= 2
                    {
                        pump.input(site, Input::Control(Command::Fail));
                    }
                }
                Action::Recover(site) => {
                    let site = SiteId(site % N);
                    if pump.engines[site.index()].status() == SiteStatus::Down {
                        pump.input(site, Input::Control(Command::Recover));
                    }
                }
            }
        }
        pump.run_to_quiescence();

        // Bring everyone back, then write every item once: refreshes
        // every stale copy and clears every fail-lock.
        for i in 0..N {
            pump.run_to_quiescence();
            if pump.engines[i as usize].status() == SiteStatus::Down {
                pump.input(SiteId(i), Input::Control(Command::Recover));
                pump.run_to_quiescence();
            }
        }
        for item in 0..DB {
            pump.begin(SiteId(0), write_txn(1000 + item as u64, &[item]));
        }
        pump.run_to_quiescence();

        for i in 0..N {
            prop_assert_eq!(pump.engines[i as usize].status(), SiteStatus::Up);
            prop_assert_eq!(pump.engines[i as usize].own_stale_count(), 0);
        }
        let first = pump.engines[0].db().digest();
        for engine in &pump.engines[1..] {
            prop_assert_eq!(engine.db().digest(), first);
        }
        assert_histories_serializable(&pump);
    }
}
