//! Reproduction CI: every qualitative claim of the paper's evaluation,
//! asserted against the regenerated experiments. If a refactor breaks the
//! shape of a result — who wins, by roughly what factor, where the
//! crossovers fall — these tests fail.

use miniraid::core::ids::SiteId;
use miniraid::sim::scenario::{
    experiment1, experiment2, experiment3_scenario1, experiment3_scenario2,
};
use miniraid::sim::Routing;

#[test]
fn exp1_faillock_maintenance_is_a_slight_overhead() {
    let r = experiment1(1987);
    // §2.3: "The overhead in fail-locks maintenance caused a slight
    // increase in transaction processing times."
    assert!(r.coord_with_faillocks > r.coord_without_faillocks);
    assert!(r.part_with_faillocks > r.part_without_faillocks);
    let coord_overhead = r.coord_with_faillocks / r.coord_without_faillocks;
    let part_overhead = r.part_with_faillocks / r.part_without_faillocks;
    // The paper's ratios are 186/176 ≈ 1.057 and 97/90 ≈ 1.078.
    assert!(
        (1.01..1.15).contains(&coord_overhead),
        "coordinator overhead ratio {coord_overhead}"
    );
    assert!(
        (1.01..1.15).contains(&part_overhead),
        "participant overhead ratio {part_overhead}"
    );
}

#[test]
fn exp1_absolute_times_track_the_paper() {
    let r = experiment1(1987);
    let within = |measured: f64, paper: f64, tol: f64| (measured / paper - 1.0).abs() <= tol;
    assert!(
        within(r.coord_without_faillocks, 176.0, 0.15),
        "{}",
        r.coord_without_faillocks
    );
    assert!(
        within(r.coord_with_faillocks, 186.0, 0.15),
        "{}",
        r.coord_with_faillocks
    );
    assert!(
        within(r.part_without_faillocks, 90.0, 0.15),
        "{}",
        r.part_without_faillocks
    );
    assert!(
        within(r.part_with_faillocks, 97.0, 0.15),
        "{}",
        r.part_with_faillocks
    );
    assert!(within(r.ct1_recovering, 190.0, 0.2), "{}", r.ct1_recovering);
    assert!(
        within(r.ct1_operational, 50.0, 0.2),
        "{}",
        r.ct1_operational
    );
    assert!(within(r.ct2, 68.0, 0.2), "{}", r.ct2);
    assert!(within(r.copy_service, 25.0, 0.2), "{}", r.copy_service);
    assert!(
        within(r.clear_faillocks, 20.0, 0.3),
        "{}",
        r.clear_faillocks
    );
    assert!(within(r.copier_txn, 270.0, 0.2), "{}", r.copier_txn);
}

#[test]
fn exp1_control_transaction_orderings() {
    let r = experiment1(1987);
    // §2.2.2: the recovering-site CT1 costs more than the operational
    // side's, which costs less than a small database transaction; CT2
    // is "comparable to the cost of a small database transaction".
    assert!(r.ct1_recovering > r.ct1_operational * 2.0);
    assert!(r.ct1_operational < r.coord_with_faillocks);
    assert!(r.ct2 < r.coord_with_faillocks);
}

#[test]
fn exp1_copier_transactions_are_a_significant_increase() {
    let r = experiment1(1987);
    // §2.2.3: "an increase of 45% over the time for a database
    // transaction which generated no copier transactions."
    let increase = r.copier_increase_percent();
    assert!(
        (30.0..75.0).contains(&increase),
        "copier increase {increase}%"
    );
    // Copy-request service and clear-fail-locks are small relative to
    // the transaction itself.
    assert!(r.copy_service < r.coord_with_faillocks / 3.0);
    assert!(r.clear_faillocks < r.coord_with_faillocks / 3.0);
}

#[test]
fn exp2_over_ninety_percent_faillocked_after_100_txns() {
    let routing = Routing::MostlyWithOccasional {
        base: SiteId(1),
        nth: 50,
        alt: SiteId(0),
    };
    let r = experiment2(1987, routing);
    // §3.1.1: "processing 100 transactions on site 1 while site 0 was
    // down resulted in setting fail-locks for over 90% of the copies".
    assert!(r.peak as f64 >= 0.9 * 50.0, "peak {}", r.peak);
}

#[test]
fn exp2_clearing_rate_slows_as_fewer_items_remain() {
    let routing = Routing::MostlyWithOccasional {
        base: SiteId(1),
        nth: 50,
        alt: SiteId(0),
    };
    // §3.1.2: "The first 10 fail-locks were cleared in only 6
    // transactions and the last 10 fail-locks were cleared in 106
    // transactions!" — i.e. the tail is much slower than the head.
    // Check across seeds (single-seed tails are high-variance).
    let mut slower = 0;
    for seed in 0..5u64 {
        let r = experiment2(2000 + seed, routing.clone());
        let first = r.first_ten_clears.unwrap_or(u64::MAX);
        let last = r.last_ten_clears.unwrap_or(0);
        if last > first * 3 {
            slower += 1;
        }
    }
    assert!(slower >= 4, "tail slower in only {slower}/5 seeds");
}

#[test]
fn exp2_recovery_length_matches_paper_order_of_magnitude() {
    let routing = Routing::MostlyWithOccasional {
        base: SiteId(1),
        nth: 50,
        alt: SiteId(0),
    };
    // Paper: 160 additional transactions; across seeds the mean must be
    // in that neighbourhood.
    let mean: f64 = (0..6u64)
        .map(|s| experiment2(1987 + s, routing.clone()).txns_to_recover as f64)
        .sum::<f64>()
        / 6.0;
    assert!((100.0..280.0).contains(&mean), "mean recovery {mean}");
}

#[test]
fn exp3_scenario1_overlap_causes_aborts_scenario2_does_not() {
    // §4.2.1: "forced site 0 to abort 13 transactions";
    // §4.2.2: "the sites were able to recover without any aborted
    // transactions due to data being unavailable."
    let s1 = experiment3_scenario1(1987);
    assert!(
        (5..=25).contains(&s1.aborts),
        "scenario 1 aborts {}",
        s1.aborts
    );
    let s2 = experiment3_scenario2(1987);
    assert_eq!(s2.aborts, 0, "scenario 2 must have no aborts");
}

#[test]
fn exp3_both_scenarios_fully_recover() {
    // §4.3: "Write operations ... and copier transactions ... are able
    // to bring the database back to a consistent state relatively fast."
    let s1 = experiment3_scenario1(1987);
    assert!(s1.fully_recovered);
    let s2 = experiment3_scenario2(1987);
    assert!(s2.fully_recovered);
    // Every site accumulated and then shed fail-locks.
    for peak in &s2.peaks {
        assert!(*peak > 0);
    }
}
