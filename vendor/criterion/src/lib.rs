//! Offline stub of `criterion`: same macro/builder surface, but each
//! benchmark is timed with a single coarse wall-clock pass instead of
//! criterion's statistical sampling. Output is one line per benchmark
//! (`name ... <mean> ns/iter`). See `vendor/README.md`.

use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (sizing is ignored here —
/// every variant runs setup once per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the measured routine.
    elapsed_ns: f64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed_ns: 0.0,
        }
    }

    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total_ns as f64 / self.iters as f64;
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count (scales iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&full, f);
        self
    }

    /// End the group (restores the default sample size).
    pub fn finish(&mut self) {
        self.criterion.sample_size = Criterion::DEFAULT_SAMPLE_SIZE;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: Self::DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    const DEFAULT_SAMPLE_SIZE: u64 = 50;

    /// Override configuration from CLI-style args (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.run_one(id.as_ref(), f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // One warm-up pass, then a measured pass sized by sample_size.
        let mut warmup = Bencher::new(1);
        f(&mut warmup);
        let mut bencher = Bencher::new(self.sample_size.max(1));
        f(&mut bencher);
        println!("bench: {:<50} {:>14.1} ns/iter", id, bencher.elapsed_ns);
    }
}

/// Collect benchmark functions into a named group fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(10);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.elapsed_ns >= 0.0);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed_ns >= 0.0);
    }

    #[test]
    fn groups_run_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
    }
}
