//! Offline stub of the `serde` facade: trait names for bounds plus the
//! no-op derive macros. See `vendor/README.md` for scope and caveats.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`. Blanket-implemented so
/// `T: Serialize` bounds are always satisfied (the no-op derive emits no
/// impls).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
