//! Offline stub of the `bytes` crate: the little-endian get/put subset
//! this workspace uses, backed by `Vec<u8>`. See `vendor/README.md`.

use std::ops::{Deref, DerefMut};

/// Read side of a byte buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte. Panics if empty (callers bounds-check first).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Copy `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write side of a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte buffer (cheaply cloneable in the real crate; a
/// plain `Vec<u8>` here).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn advance(&mut self, n: usize) {
        self.0.drain(..n);
    }

    fn chunk(&self) -> &[u8] {
        &self.0
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Detach the contents, leaving this buffer empty (its allocation is
    /// not retained — the stub favours simplicity over reuse here; use
    /// `clear()` + borrowing for true reuse).
    pub fn split(&mut self) -> BytesMut {
        BytesMut(std::mem::take(&mut self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert!(!r.has_remaining());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u64_le(1);
        let cap = buf.0.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.0.capacity(), cap);
    }
}
