//! Offline stub of `crossbeam`: just the `channel` module, delegating to
//! `std::sync::mpsc` (whose implementation has itself been crossbeam-based
//! since Rust 1.67 — `Sender` is `Send + Sync + Clone` and `Receiver` has
//! `recv_timeout`, which covers everything this workspace needs).

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded MPMC-ish channel (MPSC here — this workspace never
    /// clones receivers).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(42u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 42);
    }

    #[test]
    fn timeout_fires_when_empty() {
        let (_tx, rx) = channel::unbounded::<u8>();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
    }
}
