//! No-op `Serialize`/`Deserialize` derives for offline builds.
//!
//! Nothing in this repository serializes through serde (all persistence
//! and report formats are hand-rolled), so deriving nothing is sound.
//! The `serde` helper attribute is registered so `#[serde(...)]`
//! annotations, should they appear, do not fail to resolve.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
