//! Offline stub of `rand` 0.9: the `StdRng`/`Rng`/`SeedableRng` subset
//! this workspace uses, over a SplitMix64 generator. Deterministic for a
//! given seed (the workspace's experiments rely on seeded reproducibility,
//! not on matching upstream `StdRng`'s exact stream).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u8 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable over a sub-range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                if span > u64::MAX as u128 {
                    return (lo as i128 + rng() as i128) as $t;
                }
                (lo as i128 + (rng() % span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges samplable by `rng.random_range(..)`. Blanket impls over
/// [`SampleUniform`] (like upstream) so integer-literal ranges unify with
/// the caller's expected type.
pub trait SampleRange<T> {
    /// Draw a value in the range. Panics on empty ranges.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_in(self.start, self.end, false, &mut || rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, &mut || rng.next_u64())
    }
}

/// High-level sampling methods (auto-implemented for any `RngCore`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The standard seeded generator (SplitMix64 here).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// A process-global random value (seeded from the clock once, then
/// sequenced by an atomic counter — unique across calls, unlike a pure
/// clock read).
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut rng = StdRng::seed_from_u64(base ^ n.rotate_left(32));
    T::draw(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1u64..=u64::MAX);
            assert!(w >= 1);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn global_random_values_differ() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }
}
