//! Offline stub of `parking_lot`: `Mutex`/`RwLock`/`Condvar` over
//! `std::sync`, with parking_lot's no-poison API (a poisoned std lock is
//! recovered transparently). See `vendor/README.md`.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion lock with parking_lot's panic-tolerant `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds `Some` except transiently inside
/// `Condvar::wait*`, where the inner std guard is moved through the std
/// condvar and put back before returning.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable matching parking_lot's `&mut guard` signatures.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with panic-tolerant acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in an rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        handle.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
