//! Offline stub of `proptest`: the strategy combinators and macros this
//! workspace uses, driven by a deterministic SplitMix64 generator.
//!
//! Differences from the real crate (see `vendor/README.md`):
//! - no shrinking — a failing case reports the generated values via the
//!   ordinary assert message, not a minimal counterexample;
//! - no persistence — `.proptest-regressions` files are ignored;
//! - case seeds are derived from the test name and case index, so runs
//!   are reproducible but do not match upstream's RNG streams.

pub mod test_runner {
    /// Deterministic generator feeding all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Build from a 64-bit seed.
        pub fn seed(seed: u64) -> Self {
            TestRng(seed)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps offline suite runtime
            // proportionate while still exercising varied inputs.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    ///
    /// `generate` is object-safe; the combinators require `Sized`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase for storage in heterogeneous collections
        /// (used by `prop_oneof!`).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs at least one positive weight"
            );
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, strat) in &self.arms {
                if pick < *w as u64 {
                    return strat.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Full-domain generation for `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with `size.start..size.end` items.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion macros — plain asserts here (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies, re-run for `config.cases` deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            // Mix the test name into the seed so sibling tests see
            // different streams.
            let __name_salt: u64 = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                });
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::seed(
                    __name_salt ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::seed(1);
        let strat = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_honours_zero_weight_arms() {
        let mut rng = TestRng::seed(2);
        let strat = prop_oneof![
            1 => Just(1u8),
            0 => Just(2u8),
        ];
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng), 1);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::seed(3);
        let strat = collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_binds_multiple_args(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            let _ = b;
        }
    }
}
