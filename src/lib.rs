//! # miniraid — replicated copy control during site failure and recovery
//!
//! A complete Rust implementation and experimental reproduction of:
//!
//! > B. Bhargava, P. Noll, D. Sabo. *An Experimental Analysis of
//! > Replicated Copy Control During Site Failure and Recovery.*
//! > Purdue CSD-TR-692 (1987) / ICDE 1988.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the protocol: session numbers, nominal session vectors,
//!   fail-locks, ROWAA reads/writes over two-phase commit, copier
//!   transactions, and control transactions of types 1–3, all inside the
//!   sans-IO [`core::engine::SiteEngine`] state machine.
//! * [`storage`] — in-memory replicated tables (the paper's mode) plus a
//!   WAL/snapshot durable store.
//! * [`net`] — the reliable ordered messaging substrate: binary codec,
//!   in-process channel transport, TCP transport, latency injection.
//! * [`txn`] — workload generators (the paper's uniform hot-set, Zipf,
//!   ET1/DebitCredit, Wisconsin-style) and a strict-2PL lock manager.
//! * [`sim`] — the deterministic mini-RAID testbed: virtual clock,
//!   calibrated 1987 cost model, managing site, and the paper's three
//!   experiments as runnable scenarios.
//! * [`shard`] — sharded replication groups: keyspace partitioner,
//!   single- vs multi-shard router, and the top-level cross-shard
//!   two-phase-commit coordinator.
//! * [`cluster`] — the same engine on real threads over real transports.
//!
//! ## Quick start
//!
//! ```
//! use miniraid::cluster::{Cluster, ClusterTiming};
//! use miniraid::core::config::ProtocolConfig;
//! use miniraid::core::ids::{ItemId, SiteId};
//! use miniraid::core::ops::{Operation, Transaction};
//! use std::time::Duration;
//!
//! let config = ProtocolConfig { db_size: 16, n_sites: 3, ..Default::default() };
//! let (cluster, mut client) = Cluster::launch(config, ClusterTiming::default());
//!
//! let id = client.next_txn_id();
//! let report = client
//!     .run_txn(
//!         SiteId(0),
//!         Transaction::new(id, vec![Operation::Write(ItemId(3), 42)]),
//!         Duration::from_secs(5),
//!     )
//!     .unwrap();
//! assert!(report.outcome.is_committed());
//!
//! client.terminate_all();
//! cluster.join(Duration::from_secs(5));
//! ```
//!
//! To regenerate the paper's tables and figures:
//! `cargo run --release -p miniraid-bench --bin repro_all`.

#![warn(missing_docs)]

/// The replication protocol (re-export of `miniraid-core`).
pub use miniraid_core as core;

/// Storage substrate (re-export of `miniraid-storage`).
pub use miniraid_storage as storage;

/// Messaging substrate (re-export of `miniraid-net`).
pub use miniraid_net as net;

/// Workloads and concurrency control (re-export of `miniraid-txn`).
pub use miniraid_txn as txn;

/// The deterministic testbed (re-export of `miniraid-sim`).
pub use miniraid_sim as sim;

/// Sharded replication groups (re-export of `miniraid-shard`).
pub use miniraid_shard as shard;

/// Threaded deployment (re-export of `miniraid-cluster`).
pub use miniraid_cluster as cluster;
