//! Partial replication and the type-3 control transaction (paper §3.2).
//!
//! The paper proposes: "a site having the last up-to-date copy of a data
//! item would create a copy on a back-up site that has no copy of that
//! data item." This example builds a 3-site system where every item
//! lives on only 2 sites, fails holders until items are endangered, and
//! shows type-3 control transactions preserving availability — then the
//! backups being retired once the original holders are healthy again.
//!
//! Run: `cargo run --release --example partial_replication`

use miniraid::core::ids::{ItemId, SiteId, TxnId};
use miniraid::core::ops::{Operation, Transaction};
use miniraid::core::partial::ReplicationMap;
use miniraid::core::ProtocolConfig;
use miniraid::sim::{CostModel, ProcessorModel, SimConfig, Simulation};

fn main() {
    let db_size = 12u32;
    let config = ProtocolConfig {
        db_size,
        n_sites: 3,
        backup_on_last_copy: true,
        ..ProtocolConfig::default()
    };
    let map = ReplicationMap::round_robin(db_size, 3, 2);
    println!("replication map (item -> holders):");
    for item in 0..db_size {
        let holders: Vec<String> = map
            .holders_of(ItemId(item))
            .map(|s| s.0.to_string())
            .collect();
        println!("  x{item:<2} -> sites {{{}}}", holders.join(", "));
    }

    let mut sim_config = SimConfig::paper(config);
    sim_config.cost = CostModel::zero_cpu();
    sim_config.processor = ProcessorModel::PerSite;
    let mut sim = Simulation::with_replication(sim_config, map);

    // Touch every item so all copies carry committed values.
    let mut txn_id = 1u64;
    for item in 0..db_size {
        let record = sim.run_txn(
            SiteId(0),
            Transaction::new(
                TxnId(txn_id),
                vec![Operation::Write(ItemId(item), 100 + item as u64)],
            ),
        );
        assert!(record.report.outcome.is_committed());
        txn_id += 1;
    }

    // Fail site 1: items held by {0,1} and {1,2} drop to one operational
    // copy; the survivors issue CreateBackup (control transaction type 3).
    println!("\nfailing site 1 ...");
    sim.fail_site(SiteId(1), true);
    sim.run_to_quiescence();
    let ct3: u64 = (0..3)
        .map(|i| sim.engine(SiteId(i)).metrics().control_type3)
        .sum();
    println!("type-3 control transactions issued: {ct3}");
    for i in [0u8, 2] {
        let extras: Vec<String> = (0..db_size)
            .filter(|raw| {
                sim.engine(SiteId(i))
                    .replication()
                    .is_backup(ItemId(*raw), SiteId(i))
            })
            .map(|raw| format!("x{raw}"))
            .collect();
        if !extras.is_empty() {
            println!("  site {i} now hosts backup copies: {}", extras.join(", "));
        }
    }

    // Fail site 2 as well — without the backups, items held only by
    // {1, 2} would now be unavailable. With them, everything still reads.
    println!("\nfailing site 2 as well ...");
    sim.fail_site(SiteId(2), true);
    let mut available = 0u32;
    for item in 0..db_size {
        let record = sim.run_txn(
            SiteId(0),
            Transaction::new(TxnId(txn_id), vec![Operation::Read(ItemId(item))]),
        );
        txn_id += 1;
        if record.report.outcome.is_committed() {
            available += 1;
            assert_eq!(record.report.read_results[0].1.data, 100 + item as u64);
        }
    }
    println!("available items with site 0 alone: {available}/{db_size}");
    assert_eq!(available, db_size, "backups must keep everything readable");

    // Bring the holders back; once they are refreshed, backup copies are
    // retired.
    println!("\nrecovering sites 1 and 2 ...");
    assert!(sim.recover_site(SiteId(1)));
    assert!(sim.recover_site(SiteId(2)));
    // Writes refresh the recovered copies; clears trigger retirement.
    for item in 0..db_size {
        sim.run_txn(
            SiteId(0),
            Transaction::new(
                TxnId(txn_id),
                vec![Operation::Write(ItemId(item), 200 + item as u64)],
            ),
        );
        txn_id += 1;
    }
    sim.run_to_quiescence();
    let leftover: u32 = (0..3)
        .map(|i| {
            (0..db_size)
                .filter(|raw| {
                    sim.engine(SiteId(i))
                        .replication()
                        .is_backup(ItemId(*raw), SiteId(i))
                })
                .count() as u32
        })
        .sum();
    println!("backup copies still held after full recovery: {leftover}");
    println!("\ndone — type-3 control transactions preserved availability through two failures");
}
