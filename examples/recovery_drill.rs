//! A parameterized recovery drill on the deterministic simulator:
//! reproduce the paper's Figure-1 experiment with your own database
//! size, transaction size, failure length, and routing — and see the
//! fail-lock curve as an ASCII chart.
//!
//! Run: `cargo run --release --example recovery_drill -- [db_size] [max_txn] [down_txns]`
//! e.g. `cargo run --release --example recovery_drill -- 100 8 150`

use miniraid::core::ids::SiteId;
use miniraid::core::ProtocolConfig;
use miniraid::sim::report::{ascii_chart, site_series};
use miniraid::sim::{CostModel, Manager, ProcessorModel, Routing, SimConfig, Simulation};
use miniraid::txn::workload::UniformGen;

fn main() {
    let mut args = std::env::args().skip(1);
    let db_size: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let max_txn: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let down_txns: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);

    println!(
        "recovery drill: db_size={db_size}, max transaction size={max_txn}, \
         {down_txns} transactions while site 0 is down"
    );

    let protocol = ProtocolConfig {
        db_size,
        n_sites: 2,
        ..ProtocolConfig::default()
    };
    let mut config = SimConfig::paper(protocol);
    config.cost = CostModel::zero_cpu();
    config.processor = ProcessorModel::PerSite;
    let sim = Simulation::new(config);
    let mut manager = Manager::new(sim, UniformGen::new(7, db_size, max_txn));

    // Fail site 0, run the down period on site 1.
    manager.sim.fail_site(SiteId(0), true);
    manager.run_many(&Routing::Fixed(SiteId(1)), down_txns);
    let peak = manager.sim.faillock_counts()[0];
    println!(
        "after {down_txns} transactions: {peak}/{db_size} copies on site 0 are fail-locked \
         ({:.0} %)",
        peak as f64 / db_size as f64 * 100.0
    );

    // Recover and process on both sites until clean.
    assert!(manager.sim.recover_site(SiteId(0)), "recovery failed");
    let recovery_txns = manager.run_until(&Routing::RoundRobinUp, 20_000, |sim| {
        sim.faillock_counts()[0] == 0
    });
    let copiers = manager.sim.engine(SiteId(0)).metrics().copier_requests;
    println!(
        "site 0 completely recovered after {recovery_txns} more transactions \
         ({copiers} copier transactions)"
    );

    let chart = ascii_chart(
        "\nfail-locked copies on site 0 vs. transaction number",
        &site_series(&manager.series)[..1],
        16,
    );
    print!("{chart}");

    assert!(manager.sim.up_sites_converged(), "replicas diverged!");
    println!("\nreplica convergence verified (digests equal)");
}
