//! An ET1/DebitCredit-style bank workload over the replicated cluster,
//! with a site failure and recovery mid-run.
//!
//! The paper names the ET1 benchmark [Anon85] as the workload it planned
//! to repeat its experiments with; this example does exactly that on the
//! threaded deployment: a stream of debit/credit transactions against a
//! bank schema, a failure injected at the halfway mark, and recovery
//! before the run ends. Availability is measured as committed
//! transactions.
//!
//! Run: `cargo run --example bank_debit_credit`

use std::time::Duration;

use miniraid::cluster::{Cluster, ClusterTiming};
use miniraid::core::config::{ProtocolConfig, TwoStepRecovery};
use miniraid::core::ids::SiteId;
use miniraid::txn::et1::{Et1Gen, Et1Scale};
use miniraid::txn::workload::WorkloadGen;

const WAIT: Duration = Duration::from_secs(5);

fn main() {
    let scale = Et1Scale::tiny();
    let config = ProtocolConfig {
        db_size: scale.db_size(),
        n_sites: 3,
        // Use the paper's proposed two-step recovery so the failed site
        // refreshes itself in batch mode.
        two_step_recovery: Some(TwoStepRecovery {
            threshold: 1.0,
            batch_size: 16,
        }),
        ..ProtocolConfig::default()
    };
    println!(
        "bank schema: {} branches, {} tellers, {} accounts, {} history slots ({} items)",
        scale.branches,
        scale.branches * scale.tellers_per_branch,
        scale.branches * scale.accounts_per_branch,
        scale.history_slots,
        scale.db_size()
    );

    let (cluster, mut client) = Cluster::launch(config, ClusterTiming::default());
    let mut gen = Et1Gen::new(2024, scale);

    let total = 120u64;
    let mut committed = 0u32;
    let mut aborted = 0u32;
    for i in 0..total {
        // Round-robin over the sites we believe are up.
        let site = SiteId((i % 3) as u8);
        let skip_failed = i >= total / 2 && i < (3 * total) / 4 && site == SiteId(2);
        let site = if skip_failed { SiteId(0) } else { site };

        if i == total / 2 {
            println!("\n--- failing site 2 at transaction {i} ---");
            client.fail(SiteId(2));
        }
        if i == (3 * total) / 4 {
            println!("--- recovering site 2 at transaction {i} ---");
            let session = client.recover(SiteId(2), WAIT).expect("recovery");
            client.wait_data_recovered(WAIT).expect("batch refresh");
            println!("--- site 2 back in session {session}, fully refreshed ---\n");
        }

        let txn = gen.next_txn(client.next_txn_id());
        match client.run_txn(site, txn, WAIT) {
            Ok(report) if report.outcome.is_committed() => committed += 1,
            Ok(_) => aborted += 1,
            Err(e) => panic!("cluster stalled: {e}"),
        }
    }

    println!("debit/credit run: {committed} committed, {aborted} aborted of {total}");
    // The only aborts should be the failure-detection transaction(s).
    assert!(aborted <= 3, "unexpected abort count {aborted}");
    assert!(committed >= total as u32 - 3);

    client.terminate_all();
    cluster.join(WAIT);
    println!("done");
}
