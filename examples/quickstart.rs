//! Quickstart: a three-site replicated database on real threads.
//!
//! Demonstrates the full lifecycle the paper studies: commit with all
//! sites up, a site failure (detected by the protocol), continued
//! availability under ROWAA, recovery via a type-1 control transaction,
//! and a copier transaction refreshing the stale copy.
//!
//! Run: `cargo run --example quickstart`

use std::time::Duration;

use miniraid::cluster::{Cluster, ClusterTiming};
use miniraid::core::config::ProtocolConfig;
use miniraid::core::ids::{ItemId, SiteId};
use miniraid::core::ops::{Operation, Transaction};

const WAIT: Duration = Duration::from_secs(5);

fn main() {
    let config = ProtocolConfig {
        db_size: 32,
        n_sites: 3,
        ..ProtocolConfig::default()
    };
    let (cluster, mut client) = Cluster::launch(config, ClusterTiming::default());
    println!("launched 3 database sites on threads");

    // 1. Normal operation: a write replicates to every available copy.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Write(ItemId(7), 1001)]),
            WAIT,
        )
        .expect("report");
    println!(
        "[{}] write x7=1001 at site 0: {:?} ({} messages)",
        report.txn, report.outcome, report.stats.messages_sent
    );

    // 2. Site 2 fails. The next transaction detects it (phase-one
    //    timeout), aborts, and announces the failure — a type-2 control
    //    transaction. The one after that succeeds without site 2.
    client.fail(SiteId(2));
    println!("\nsite 2 failed (silently — the protocol must discover it)");
    for _ in 0..2 {
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                SiteId(0),
                Transaction::new(id, vec![Operation::Write(ItemId(7), 2002)]),
                WAIT,
            )
            .expect("report");
        println!(
            "[{}] write x7=2002: {:?} (fail-locks set: {})",
            report.txn, report.outcome, report.stats.faillocks_set
        );
    }

    // 3. Reads remain available on the surviving sites (ROWAA).
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(1),
            Transaction::new(id, vec![Operation::Read(ItemId(7))]),
            WAIT,
        )
        .expect("report");
    println!(
        "[{}] read x7 at site 1 -> {} ({:?})",
        report.txn, report.read_results[0].1.data, report.outcome
    );

    // 4. Site 2 recovers: type-1 control transaction installs the session
    //    vector and fail-locks from an operational site.
    let session = client.recover(SiteId(2), WAIT).expect("recovery");
    println!("\nsite 2 recovered into session {session}");

    // 5. A read of the stale item at site 2 triggers a copier transaction
    //    before the transaction proceeds.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(2),
            Transaction::new(id, vec![Operation::Read(ItemId(7))]),
            WAIT,
        )
        .expect("report");
    println!(
        "[{}] read x7 at recovered site 2 -> {} (copier transactions: {})",
        report.txn, report.read_results[0].1.data, report.stats.copier_requests
    );
    assert_eq!(report.read_results[0].1.data, 2002);

    client.terminate_all();
    cluster.join(WAIT);
    println!("\nall sites terminated cleanly");
}
