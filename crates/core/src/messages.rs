//! Wire protocol between sites.
//!
//! Every intersite interaction of the paper appears here: the two-phase
//! commit traffic (Appendix A), copier transactions and the "special"
//! clear-fail-lock transactions (§1.2), control transactions of types 1
//! and 2 (§1.1), and the proposed type 3 for partially replicated
//! databases (§3.2). `Mgmt`/`MgmtReport` carry managing-site traffic when
//! sites run as real processes/threads rather than inside the simulator.

use serde::{Deserialize, Serialize};

use crate::error::AbortReason;
use crate::ids::{ItemId, ReqId, SessionNumber, SiteId, TxnId};
use crate::session::{SiteRecord, SiteStatus};
use miniraid_storage::ItemValue;

/// Commands the managing site issues to a database site (paper §1.2: the
/// managing site "was used to cause sites to fail and recover and to
/// initiate a database transaction to a site").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Stop participating in any further system action.
    Fail,
    /// Begin recovery (type-1 control transaction).
    Recover,
    /// Recover without a donor: total-failure bootstrap. The managing
    /// site certifies this site was in the last operational set, so its
    /// local state is authoritative; it comes up in a fresh session with
    /// every peer marked down, and they rejoin through ordinary type-1
    /// recovery with it as the donor.
    Bootstrap,
    /// Coordinate this database transaction.
    Begin(crate::ops::Transaction),
    /// Shut down permanently.
    Terminate,
}

/// Final outcome of a database transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// Committed at every available copy.
    Committed,
    /// Aborted for the given reason.
    Aborted(AbortReason),
}

impl TxnOutcome {
    /// True if committed.
    pub fn is_committed(self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }
}

/// Per-transaction statistics reported with the outcome (what the paper's
/// managing site recorded for each transaction: fail-locks set/cleared,
/// copier transactions requested).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnStats {
    /// Read operations executed.
    pub reads: u32,
    /// Write operations in the effective write set.
    pub writes: u32,
    /// Copy requests (copier transactions) issued.
    pub copier_requests: u32,
    /// Fail-lock bits set during commit maintenance (at the coordinator).
    pub faillocks_set: u32,
    /// Fail-lock bits cleared (maintenance + copier refresh, coordinator).
    pub faillocks_cleared: u32,
    /// Messages the coordinator sent on behalf of this transaction.
    pub messages_sent: u32,
    /// True if a participant failed in phase two (the transaction still
    /// commits per Appendix A.1, after announcing the failure).
    pub participant_failed_phase_two: bool,
}

/// Outcome report delivered to whoever submitted the transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnReport {
    /// The transaction.
    pub txn: TxnId,
    /// The coordinating site.
    pub coordinator: SiteId,
    /// Commit or abort.
    pub outcome: TxnOutcome,
    /// Counters.
    pub stats: TxnStats,
    /// Values observed by the transaction's reads (committed transactions
    /// only; used by consistency verification and by applications).
    pub read_results: Vec<(ItemId, ItemValue)>,
}

/// One cross-shard transaction's entry in the replicated coordinator
/// decision log (`XDecisionLog` protocol). The coordinator appends a
/// *begin* record (`outcome = None`, branches only) before releasing any
/// `ShardPrepare`, and a *commit* record (`outcome = Some(true)`, votes
/// included) before sending any `ShardDecide { commit: true }`. A
/// successor that reads the log back can therefore always classify an
/// in-doubt transaction: no record → prepares never left the
/// coordinator; begin record only → presumed abort (no participant has
/// committed); commit record → re-drive the commit idempotently.
/// Aborts are never logged (presumed abort).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XDecisionRecord {
    /// The cross-shard transaction id (shared by every branch).
    pub txn: TxnId,
    /// The per-group branch transactions, `(group, branch)`, exactly as
    /// handed to the coordinator — enough for a successor to re-drive
    /// write-only residues to a failed branch coordinator's peers.
    pub branches: Vec<(u8, crate::ops::Transaction)>,
    /// PREPARED votes collected so far, `(group, ok)`.
    pub votes: Vec<(u8, bool)>,
    /// `None` while in doubt at the coordinator, `Some(true)` once the
    /// global commit decision is made. (`Some(false)` is representable
    /// for completeness but never replicated — aborts are presumed.)
    pub outcome: Option<bool>,
}

/// One key range in flight between two replication groups during a live
/// reshard: items `lo..hi` (half-open, global names) are moving from
/// group `donor` to group `recipient`. The range passes through two
/// wire-visible sub-states — copying (`frozen = false`: the donor still
/// serves reads *and* writes, every committed write is written through
/// to the recipient) and frozen (`frozen = true`: the donor is
/// read-only so the resharder's final sweep races no writer) — before
/// the cutover map retires it and the recipient owns the range alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigratingRange {
    /// First item of the range (inclusive, global id).
    pub lo: u32,
    /// One past the last item of the range (exclusive, global id).
    pub hi: u32,
    /// The group that owns the range today.
    pub donor: u8,
    /// The group the range is moving to.
    pub recipient: u8,
    /// True once the donor has been made read-only for the final sweep.
    pub frozen: bool,
}

impl MigratingRange {
    /// True when `item` falls inside this range.
    pub fn contains(&self, item: u32) -> bool {
        self.lo <= item && item < self.hi
    }
}

/// Messages exchanged between sites (and, for `Mgmt`/`MgmtReport`,
/// between the managing site and database sites over a real transport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    // ---- Two-phase commit (Appendix A) -------------------------------
    /// Phase one: the coordinator ships the write set to a participant.
    /// `snapshot` is the coordinator's perceived session numbers, letting
    /// the participant detect status changes mid-transaction. `clears`
    /// piggybacks fail-lock clearing information when
    /// [`crate::config::ProtocolConfig::piggyback_clears`] is on.
    CopyUpdate {
        /// Transaction being committed.
        txn: TxnId,
        /// Effective write set with version-stamped values.
        writes: Vec<(ItemId, ItemValue)>,
        /// Coordinator's session-number snapshot.
        snapshot: Vec<SessionNumber>,
        /// Piggybacked fail-lock clears: `(item, refreshed_site)`.
        clears: Vec<(ItemId, SiteId)>,
        /// Bitmap of the sites the *coordinator* considered operational
        /// (bit `s` = site `s` up). Commit-time fail-lock maintenance
        /// runs against this mask rather than each participant's own
        /// vector: the fail-lock table is replicated state, and it stays
        /// replicated only if every participant applies the *identical*
        /// update — local vectors can diverge transiently (a failure
        /// announcement in flight reaches sites at different times).
        up_mask: u64,
    },
    /// Participant acknowledgement of `CopyUpdate`. `ok = false` rejects
    /// (session mismatch or not operational) and aborts the transaction.
    UpdateAck {
        /// Transaction.
        txn: TxnId,
        /// Accepted?
        ok: bool,
    },
    /// Phase two: commit indication.
    Commit {
        /// Transaction.
        txn: TxnId,
    },
    /// Participant acknowledgement of commit.
    CommitAck {
        /// Transaction.
        txn: TxnId,
    },
    /// Abort indication: discard buffered updates.
    AbortTxn {
        /// Transaction.
        txn: TxnId,
    },

    // ---- Copier transactions (§1.2) -----------------------------------
    /// Request up-to-date copies of `items` from a site believed to hold
    /// them.
    CopyRequest {
        /// Correlation id.
        req: ReqId,
        /// Items to refresh.
        items: Vec<ItemId>,
    },
    /// Response to `CopyRequest`. `ok = false` means the responder could
    /// not serve an up-to-date copy of every requested item.
    CopyResponse {
        /// Correlation id.
        req: ReqId,
        /// Served successfully?
        ok: bool,
        /// The copies (empty when `ok = false`).
        copies: Vec<(ItemId, ItemValue)>,
    },
    /// The "special transaction" informing other sites of fail-lock bits
    /// cleared by copier transactions: `site`'s copies of `items` are now
    /// up to date.
    ClearFailLocks {
        /// The refreshed site.
        site: SiteId,
        /// The refreshed items.
        items: Vec<ItemId>,
    },
    /// Corrective fail-lock set after a phase-two failure: the sender
    /// committed a transaction whose `CopyUpdate` carried an `up_mask`
    /// still showing `site` operational, but `site` never acknowledged
    /// the commit — its copies of `items` must be marked stale at every
    /// participant that already ran the (clearing) commit-time
    /// maintenance. Paper Appendix A.1 sequences the type-2 control
    /// transaction *before* the commit for exactly this reason.
    SetFailLocks {
        /// The site that missed the commit.
        site: SiteId,
        /// The items it missed.
        items: Vec<ItemId>,
    },

    // ---- Control transactions (§1.1) ----------------------------------
    /// Type 1, announce phase: the sender is preparing to become
    /// operational in session `session`. If `want_state` is set, the
    /// receiver replies with `RecoveryInfo`.
    RecoveryAnnounce {
        /// The recovering site's new session number.
        session: SessionNumber,
        /// Should the receiver ship its session vector and fail-locks?
        want_state: bool,
    },
    /// Type 1, state transfer: session vector, fail-locks, and the
    /// replication map from an operational site (the recovering site
    /// missed any type-3 backup creations/retirements while down).
    RecoveryInfo {
        /// The responder's nominal session vector records, in site order.
        vector: Vec<SiteRecord>,
        /// The responder's fail-lock bitmaps, one word per item.
        faillocks: Vec<u64>,
        /// The responder's replication map: holder bits per item.
        holders: Vec<u64>,
        /// ... and which of those holdings are type-3 backups.
        backups: Vec<u64>,
    },
    /// Type 2: the sender determined that the listed sites, last seen in
    /// the given sessions, have failed.
    FailureAnnounce {
        /// `(failed_site, session in which it was seen up)`.
        failed: Vec<(SiteId, SessionNumber)>,
    },

    // ---- Partial replication & control transaction type 3 (§3.2) ------
    /// Read request for items the coordinator holds no copy of
    /// (partially replicated databases only).
    ReadRequest {
        /// Correlation id.
        req: ReqId,
        /// Items to read.
        items: Vec<ItemId>,
    },
    /// Response to `ReadRequest`.
    ReadResponse {
        /// Correlation id.
        req: ReqId,
        /// Served successfully?
        ok: bool,
        /// The values read.
        values: Vec<(ItemId, ItemValue)>,
    },
    /// Type 3: the sender holds the last operational up-to-date copy of
    /// `item` and asks the receiver to become a backup holder.
    CreateBackup {
        /// The endangered item.
        item: ItemId,
        /// Its current value.
        value: ItemValue,
    },
    /// Broadcast: `site` is now a holder of `item` (replication map
    /// update after a successful `CreateBackup`).
    BackupCreated {
        /// The item.
        item: ItemId,
        /// The new holder.
        site: SiteId,
    },
    /// Broadcast: `site` is no longer a holder of `item` (the extra copy
    /// created by a type-3 control transaction is being retired).
    BackupDropped {
        /// The item.
        item: ItemId,
        /// The retiring holder.
        site: SiteId,
    },

    // ---- Managing-site traffic over real transports --------------------
    /// A command from the managing site.
    Mgmt(Command),
    /// A transaction outcome reported back to the managing site.
    MgmtReport(TxnReport),
    /// Notification to the managing site that the sender completed a
    /// type-1 control transaction and is operational again.
    MgmtRecovered {
        /// The recovered site's session.
        session: SessionNumber,
    },
    /// Notification to the managing site that the sender finished data
    /// recovery (all of its fail-locks cleared — "completely recovered").
    MgmtDataRecovered {
        /// The recovered site's session.
        session: SessionNumber,
    },
    /// Ask a site for its metrics exposition (management plane; answered
    /// by the driving loop, not the engine).
    MetricsRequest,
    /// Prometheus-style text exposition of a site's counters and latency
    /// histograms.
    MetricsResponse {
        /// The rendered exposition text.
        text: String,
    },

    // ---- Sharded replication groups (crates/shard) ----------------------
    /// Routing envelope for sharded deployments: a physical site hosting
    /// one engine per replication group unwraps this and hands `inner` to
    /// the engine of group `shard`. Never nested inside another
    /// `ShardEnv`; the reliable layer may wrap it in `Seq`, not vice
    /// versa.
    ShardEnv {
        /// The replication group the payload belongs to.
        shard: u8,
        /// The group-local message.
        inner: Box<Message>,
    },
    /// Cross-shard two-phase commit, phase one: the top-level coordinator
    /// (the sharded router) asks a group's branch coordinator to run the
    /// group-local part of a multi-shard transaction up to the point of
    /// commit and hold it there, replying with `ShardVote`.
    ShardPrepare {
        /// The group-local branch transaction (items already localized).
        txn: crate::ops::Transaction,
    },
    /// Branch coordinator's vote: the branch is prepared (`ok`) and
    /// parked awaiting `ShardDecide`, or it aborted locally (`!ok`).
    ShardVote {
        /// The branch transaction.
        txn: TxnId,
        /// Prepared successfully?
        ok: bool,
    },
    /// Cross-shard two-phase commit, phase two: commit or abort the
    /// parked branch.
    ShardDecide {
        /// The branch transaction.
        txn: TxnId,
        /// Commit (`true`) or global abort (`false`).
        commit: bool,
    },

    // ---- XDecisionLog: replicated coordinator decision log --------------
    /// Append (or supersede) one transaction's decision record at a log
    /// replica. Sent by the acting cross-shard coordinator to every
    /// member of the designated log group; the coordinator proceeds only
    /// once a quorum has acknowledged. A record with `outcome = Some`
    /// supersedes the begin record of the same transaction. `epoch`
    /// fences: replicas reject appends from a coordinator older than the
    /// highest epoch they have seen.
    XLogAppend {
        /// The appending coordinator's epoch.
        epoch: u64,
        /// The record.
        record: XDecisionRecord,
    },
    /// A log replica's acknowledgement of `XLogAppend`. `ok = false`
    /// means the append was fenced off by a higher coordinator epoch.
    XLogAck {
        /// The appended transaction.
        txn: TxnId,
        /// The highest coordinator epoch the replica has seen.
        epoch: u64,
        /// Accepted?
        ok: bool,
        /// Whether the acknowledged record carried an outcome (commit
        /// record) or not (begin record). Management frames are
        /// retried, not sequenced, so a duplicated begin append's ack
        /// can arrive while the coordinator is counting the *commit*
        /// record's quorum — without this bit the two are
        /// indistinguishable and a begin-only replica could be counted
        /// toward the commit quorum.
        decided: bool,
    },
    /// A successor coordinator's log read: announce `epoch` (fencing off
    /// any older coordinator still running) and ask for every stored
    /// decision record.
    XLogQuery {
        /// The successor's epoch.
        epoch: u64,
    },
    /// A log replica's reply to `XLogQuery`: everything it holds.
    XLogReply {
        /// The highest coordinator epoch the replica has seen.
        epoch: u64,
        /// All stored records, in unspecified order.
        records: Vec<XDecisionRecord>,
    },

    // ---- Live resharding: epoch-versioned shard maps --------------------
    /// Control-transaction-type-3-style map announcement (§3.2 scaled to
    /// key ranges): install shard map `epoch` with the given per-item
    /// group assignment and in-flight migrating ranges. Served by the
    /// site loop beside the metrics server — a down engine still learns
    /// the new map. Installs are idempotent and monotonic: a site
    /// accepts iff `epoch` is newer than what it holds, so the resharder
    /// can retry announcements indefinitely and resume after a crash.
    MapChange {
        /// The new map's epoch.
        epoch: u64,
        /// Owning group per item, indexed by global item id.
        assignment: Vec<u8>,
        /// Ranges currently in flight between groups.
        migrating: Vec<MigratingRange>,
    },
    /// A site's acknowledgement of `MapChange`. `ok = false` means the
    /// site already holds this epoch or a newer one (the install was a
    /// stale duplicate — harmless, but not counted toward the
    /// announcement quorum at the older epoch).
    MapChangeAck {
        /// The epoch the site now holds.
        epoch: u64,
        /// Did this frame advance the site's map?
        ok: bool,
    },
    /// Ask a site for its installed shard map (clients refresh through
    /// this after a `WrongEpoch` rejection; a restarted resharder
    /// re-derives the plan phase from the highest installed epoch).
    MapQuery,
    /// Reply to `MapQuery`: the site's installed map, if any.
    MapReply {
        /// The installed map's epoch (0 = no map installed).
        epoch: u64,
        /// Owning group per item.
        assignment: Vec<u8>,
        /// Ranges in flight.
        migrating: Vec<MigratingRange>,
    },
    /// Rejection of a `Mgmt(Begin)` routed under a stale shard map: the
    /// receiving group's installed epoch says this site no longer (or
    /// not yet) owns some item the transaction touches. The submitter
    /// refreshes its map and retries against the current owner.
    WrongEpoch {
        /// The rejected transaction.
        txn: TxnId,
        /// The rejecting site's installed map epoch.
        epoch: u64,
    },
    /// Garbage-collect a finished transaction's decision record at a log
    /// replica (`XLogStore::retire`): sent by the acting coordinator
    /// once every branch of the transaction has confirmed its outcome.
    /// Carries the coordinator's epoch so a deposed coordinator cannot
    /// retire a record its successor still needs.
    XLogRetire {
        /// The retiring coordinator's epoch.
        epoch: u64,
        /// The finished transaction.
        txn: TxnId,
    },

    // ---- Causal trace propagation (observability plane) -----------------
    /// A protocol message annotated with the causal [`TraceId`] of the
    /// client-submitted transaction it belongs to. Purely additive: a
    /// frame without the wrapper decodes exactly as before (zero cost
    /// when absent), and the driving site loop unwraps it — registering
    /// the id with the engine's tracer — before the engine ever sees
    /// it. Legal nesting mirrors `ShardEnv`: `Seq{ShardEnv{Traced{..}}}`
    /// from outermost to innermost.
    ///
    /// [`TraceId`]: crate::trace::TraceId
    Traced {
        /// The causal trace id (never 0 on the wire).
        trace: u64,
        /// The annotated message.
        inner: Box<Message>,
    },

    // ---- Reliable session layer (transport decorator) ------------------
    /// A protocol message wrapped with a per-link sequence number by the
    /// reliable session layer. `epoch` distinguishes sequence spaces
    /// across sender restarts. The engine never sees this variant: the
    /// reliable mailbox unwraps it (dedup + reorder) before delivery.
    Seq {
        /// The sender's session-layer epoch (restart counter).
        epoch: u64,
        /// Per-(sender, receiver) monotonic sequence number, from 1.
        seq: u64,
        /// The sequenced payload (never itself `Seq`/`SeqAck`).
        inner: Box<Message>,
    },
    /// Cumulative acknowledgement: the receiver has delivered every
    /// sequenced message of `epoch` up to and including `cumulative`.
    /// Acks are themselves unsequenced (loss-tolerant by redundancy).
    SeqAck {
        /// The acked sender epoch.
        epoch: u64,
        /// Highest contiguously delivered sequence number.
        cumulative: u64,
        /// The *receiver's* own session-layer epoch. A sender that sees
        /// this change knows the peer restarted (lost its receive state)
        /// and must renumber its unacked frames from 1.
        receiver: u64,
    },
}

impl Message {
    /// Short human-readable tag for logs and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::CopyUpdate { .. } => "CopyUpdate",
            Message::UpdateAck { .. } => "UpdateAck",
            Message::Commit { .. } => "Commit",
            Message::CommitAck { .. } => "CommitAck",
            Message::AbortTxn { .. } => "AbortTxn",
            Message::CopyRequest { .. } => "CopyRequest",
            Message::CopyResponse { .. } => "CopyResponse",
            Message::ClearFailLocks { .. } => "ClearFailLocks",
            Message::SetFailLocks { .. } => "SetFailLocks",
            Message::RecoveryAnnounce { .. } => "RecoveryAnnounce",
            Message::RecoveryInfo { .. } => "RecoveryInfo",
            Message::FailureAnnounce { .. } => "FailureAnnounce",
            Message::ReadRequest { .. } => "ReadRequest",
            Message::ReadResponse { .. } => "ReadResponse",
            Message::CreateBackup { .. } => "CreateBackup",
            Message::BackupCreated { .. } => "BackupCreated",
            Message::BackupDropped { .. } => "BackupDropped",
            Message::Mgmt(_) => "Mgmt",
            Message::MgmtReport(_) => "MgmtReport",
            Message::MgmtRecovered { .. } => "MgmtRecovered",
            Message::MgmtDataRecovered { .. } => "MgmtDataRecovered",
            Message::MetricsRequest => "MetricsRequest",
            Message::MetricsResponse { .. } => "MetricsResponse",
            Message::ShardEnv { .. } => "ShardEnv",
            Message::ShardPrepare { .. } => "ShardPrepare",
            Message::ShardVote { .. } => "ShardVote",
            Message::ShardDecide { .. } => "ShardDecide",
            Message::XLogAppend { .. } => "XLogAppend",
            Message::XLogAck { .. } => "XLogAck",
            Message::XLogQuery { .. } => "XLogQuery",
            Message::XLogReply { .. } => "XLogReply",
            Message::MapChange { .. } => "MapChange",
            Message::MapChangeAck { .. } => "MapChangeAck",
            Message::MapQuery => "MapQuery",
            Message::MapReply { .. } => "MapReply",
            Message::WrongEpoch { .. } => "WrongEpoch",
            Message::XLogRetire { .. } => "XLogRetire",
            Message::Traced { .. } => "Traced",
            Message::Seq { .. } => "Seq",
            Message::SeqAck { .. } => "SeqAck",
        }
    }

    /// The transaction this message belongs to, when it names exactly
    /// one. Used by the driving layers to attribute outbound messages
    /// to a causal trace (wrap-on-send) and to register inbound trace
    /// ids with the engine's tracer. Envelope variants delegate.
    pub fn txn_id(&self) -> Option<TxnId> {
        match self {
            Message::CopyUpdate { txn, .. }
            | Message::UpdateAck { txn, .. }
            | Message::Commit { txn }
            | Message::CommitAck { txn }
            | Message::AbortTxn { txn }
            | Message::ShardVote { txn, .. }
            | Message::ShardDecide { txn, .. }
            | Message::XLogAck { txn, .. }
            | Message::WrongEpoch { txn, .. }
            | Message::XLogRetire { txn, .. } => Some(*txn),
            Message::XLogAppend { record, .. } => Some(record.txn),
            Message::ShardPrepare { txn } => Some(txn.id),
            Message::Mgmt(Command::Begin(txn)) => Some(txn.id),
            Message::MgmtReport(report) => Some(report.txn),
            Message::ShardEnv { inner, .. }
            | Message::Traced { inner, .. }
            | Message::Seq { inner, .. } => inner.txn_id(),
            _ => None,
        }
    }
}

// Re-export SiteStatus here for codec convenience.
pub use crate::session::SiteStatus as WireSiteStatus;

#[allow(unused_imports)]
use crate::session::SiteStatus as _SiteStatusUsed; // doc linkage

impl std::fmt::Display for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind())
    }
}

/// Helper: is this a management-plane message?
///
/// The cross-shard 2PC trio (`ShardPrepare`/`ShardVote`/`ShardDecide`)
/// and the `XDecisionLog` quartet count as management traffic: the
/// acting coordinator's exchange with branch coordinators and log
/// replicas must not be sequenced into a per-link session that dies
/// with a site — the coordinator itself can now crash and be replaced
/// (its successor speaks from a new epoch), so these frames carry their
/// own idempotence (version-stamped re-drives, epoch-fenced appends)
/// and are simply retried rather than retransmitted. A `ShardEnv` is
/// whatever its payload is.
pub fn is_management(msg: &Message) -> bool {
    match msg {
        Message::Mgmt(_)
        | Message::MgmtReport(_)
        | Message::MgmtRecovered { .. }
        | Message::MgmtDataRecovered { .. }
        | Message::MetricsRequest
        | Message::MetricsResponse { .. }
        | Message::ShardPrepare { .. }
        | Message::ShardVote { .. }
        | Message::ShardDecide { .. }
        | Message::XLogAppend { .. }
        | Message::XLogAck { .. }
        | Message::XLogQuery { .. }
        | Message::XLogReply { .. }
        | Message::MapChange { .. }
        | Message::MapChangeAck { .. }
        | Message::MapQuery
        | Message::MapReply { .. }
        | Message::WrongEpoch { .. }
        | Message::XLogRetire { .. } => true,
        Message::ShardEnv { inner, .. } | Message::Traced { inner, .. } => is_management(inner),
        _ => false,
    }
}

/// Helper: status used when encoding site records.
pub fn status_code(status: SiteStatus) -> u8 {
    match status {
        SiteStatus::Up => 0,
        SiteStatus::Down => 1,
        SiteStatus::WaitingToRecover => 2,
        SiteStatus::Terminating => 3,
    }
}

/// Inverse of [`status_code`].
pub fn status_from_code(code: u8) -> Option<SiteStatus> {
    Some(match code {
        0 => SiteStatus::Up,
        1 => SiteStatus::Down,
        2 => SiteStatus::WaitingToRecover,
        3 => SiteStatus::Terminating,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_for_core_messages() {
        let msgs = [
            Message::Commit { txn: TxnId(1) },
            Message::CommitAck { txn: TxnId(1) },
            Message::AbortTxn { txn: TxnId(1) },
        ];
        let kinds: std::collections::HashSet<_> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            SiteStatus::Up,
            SiteStatus::Down,
            SiteStatus::WaitingToRecover,
            SiteStatus::Terminating,
        ] {
            assert_eq!(status_from_code(status_code(s)), Some(s));
        }
        assert_eq!(status_from_code(9), None);
    }

    #[test]
    fn management_predicate() {
        assert!(is_management(&Message::Mgmt(Command::Fail)));
        assert!(!is_management(&Message::Commit { txn: TxnId(0) }));
    }

    #[test]
    fn shard_management_predicate() {
        assert!(is_management(&Message::ShardVote {
            txn: TxnId(1),
            ok: true,
        }));
        assert!(is_management(&Message::ShardDecide {
            txn: TxnId(1),
            commit: false,
        }));
        // ShardEnv takes its plane from the payload.
        assert!(is_management(&Message::ShardEnv {
            shard: 0,
            inner: Box::new(Message::Mgmt(Command::Fail)),
        }));
        assert!(!is_management(&Message::ShardEnv {
            shard: 0,
            inner: Box::new(Message::Commit { txn: TxnId(0) }),
        }));
    }

    #[test]
    fn traced_delegates_management_and_txn_id() {
        let traced = Message::Traced {
            trace: 9,
            inner: Box::new(Message::Mgmt(Command::Begin(crate::ops::Transaction::new(
                TxnId(4),
                vec![],
            )))),
        };
        assert!(is_management(&traced));
        assert_eq!(traced.txn_id(), Some(TxnId(4)));
        let nested = Message::ShardEnv {
            shard: 1,
            inner: Box::new(Message::Traced {
                trace: 9,
                inner: Box::new(Message::Commit { txn: TxnId(8) }),
            }),
        };
        assert!(!is_management(&nested));
        assert_eq!(nested.txn_id(), Some(TxnId(8)));
        assert_eq!(Message::MetricsRequest.txn_id(), None);
    }

    #[test]
    fn xlog_frames_are_management_and_carry_txn_ids() {
        let record = XDecisionRecord {
            txn: TxnId(12),
            branches: vec![(0, crate::ops::Transaction::new(TxnId(12), vec![]))],
            votes: vec![(0, true)],
            outcome: Some(true),
        };
        let append = Message::XLogAppend {
            epoch: 7,
            record: record.clone(),
        };
        let ack = Message::XLogAck {
            txn: TxnId(12),
            epoch: 7,
            ok: true,
            decided: true,
        };
        let query = Message::XLogQuery { epoch: 8 };
        let reply = Message::XLogReply {
            epoch: 8,
            records: vec![record],
        };
        for m in [&append, &ack, &query, &reply] {
            assert!(is_management(m), "{} must be management-plane", m.kind());
        }
        assert_eq!(append.txn_id(), Some(TxnId(12)));
        assert_eq!(ack.txn_id(), Some(TxnId(12)));
        assert_eq!(query.txn_id(), None);
        assert_eq!(reply.txn_id(), None);
    }

    #[test]
    fn map_frames_are_management_and_carry_txn_ids() {
        let range = MigratingRange {
            lo: 4,
            hi: 8,
            donor: 0,
            recipient: 1,
            frozen: false,
        };
        assert!(range.contains(4) && range.contains(7));
        assert!(!range.contains(8) && !range.contains(3));
        let change = Message::MapChange {
            epoch: 3,
            assignment: vec![0, 0, 1, 1],
            migrating: vec![range],
        };
        let ack = Message::MapChangeAck { epoch: 3, ok: true };
        let query = Message::MapQuery;
        let reply = Message::MapReply {
            epoch: 3,
            assignment: vec![0, 0, 1, 1],
            migrating: vec![range],
        };
        let wrong = Message::WrongEpoch {
            txn: TxnId(9),
            epoch: 3,
        };
        let retire = Message::XLogRetire {
            epoch: 5,
            txn: TxnId(9),
        };
        for m in [&change, &ack, &query, &reply, &wrong, &retire] {
            assert!(is_management(m), "{} must be management-plane", m.kind());
        }
        assert_eq!(wrong.txn_id(), Some(TxnId(9)));
        assert_eq!(retire.txn_id(), Some(TxnId(9)));
        assert_eq!(change.txn_id(), None);
        assert_eq!(reply.txn_id(), None);
    }

    #[test]
    fn outcome_predicate() {
        assert!(TxnOutcome::Committed.is_committed());
        assert!(!TxnOutcome::Aborted(AbortReason::DataUnavailable).is_committed());
    }
}
