//! Error and abort types for the replication protocol.

use serde::{Deserialize, Serialize};

use crate::ids::{SiteId, TxnId};

/// Why a database transaction aborted (paper Appendix A abort paths plus
/// the session-number consistency check of §1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// A fail-locked read had no operational site holding an up-to-date
    /// copy — the cause of the 13 aborts in the paper's Experiment 3,
    /// scenario 1.
    DataUnavailable,
    /// The site a copy request was sent to failed before responding
    /// (Appendix A.1, copier branch).
    CopierTargetFailed,
    /// A participant failed during phase one of two-phase commit
    /// (Appendix A.1, phase-one branch).
    ParticipantFailed,
    /// A participant rejected the update because the coordinator's session
    /// snapshot no longer matched its state (§1.1: session numbers detect
    /// status changes during execution).
    SessionMismatch,
    /// The transaction arrived at a site that is not operational.
    SiteNotOperational,
    /// A cross-shard coordinator decided global abort: some other branch
    /// of the multi-shard transaction voted no or timed out, so this
    /// branch — locally prepared and ready to commit — must discard.
    GlobalAbort,
    /// The transaction was routed under a shard map older than the one
    /// the receiving group has installed (live resharding, §3.2's type-3
    /// map changes generalized to ranges): the submitter must refresh
    /// its map and retry against the current owner.
    StaleShardMap,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AbortReason::DataUnavailable => "no up-to-date copy available",
            AbortReason::CopierTargetFailed => "copier target site failed",
            AbortReason::ParticipantFailed => "participant failed in phase one",
            AbortReason::SessionMismatch => "session vector mismatch",
            AbortReason::SiteNotOperational => "coordinating site not operational",
            AbortReason::GlobalAbort => "aborted by cross-shard coordinator",
            AbortReason::StaleShardMap => "rejected by a newer shard-map epoch",
        };
        f.write_str(s)
    }
}

/// Protocol-level errors (driver misuse, capacity limits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// More sites than the 64 the fail-lock bitmaps support.
    TooManySites {
        /// The number of sites requested.
        requested: usize,
    },
    /// A transaction was submitted while this site already coordinates one
    /// and queuing is disabled.
    CoordinatorBusy {
        /// The busy site.
        site: SiteId,
        /// The transaction it is coordinating.
        active: TxnId,
    },
    /// A referenced item is outside the database universe.
    UnknownItem {
        /// The offending item id.
        item: u32,
        /// The database universe size.
        size: u32,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::TooManySites { requested } => {
                write!(
                    f,
                    "{requested} sites requested; fail-lock bitmaps support at most 64"
                )
            }
            ProtocolError::CoordinatorBusy { site, active } => {
                write!(f, "{site} already coordinates {active}")
            }
            ProtocolError::UnknownItem { item, size } => {
                write!(f, "item {item} outside database universe of {size}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_reasons_render() {
        for r in [
            AbortReason::DataUnavailable,
            AbortReason::CopierTargetFailed,
            AbortReason::ParticipantFailed,
            AbortReason::SessionMismatch,
            AbortReason::SiteNotOperational,
            AbortReason::GlobalAbort,
            AbortReason::StaleShardMap,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn protocol_errors_render() {
        let e = ProtocolError::CoordinatorBusy {
            site: SiteId(1),
            active: TxnId(5),
        };
        assert!(e.to_string().contains("T5"));
    }
}
