//! Per-site protocol counters, queryable by the experiment harness.

use serde::{Deserialize, Serialize};

use crate::error::AbortReason;

/// Aborted-transaction counts broken down by [`AbortReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbortBreakdown {
    /// No operational site held an up-to-date copy of a read item.
    pub data_unavailable: u64,
    /// A copy request's target failed before responding.
    pub copier_target_failed: u64,
    /// A participant failed during phase one of two-phase commit.
    pub participant_failed: u64,
    /// A participant rejected the update on a session-vector mismatch.
    pub session_mismatch: u64,
    /// The transaction arrived at a non-operational site.
    pub site_not_operational: u64,
    /// A cross-shard coordinator decided global abort for this branch.
    pub global_abort: u64,
    /// The transaction was routed under a stale shard map (live
    /// resharding) and rejected for retry at the current owner.
    pub stale_shard_map: u64,
}

impl AbortBreakdown {
    /// Count one abort for `reason`.
    pub fn record(&mut self, reason: AbortReason) {
        *self.slot(reason) += 1;
    }

    /// The count for `reason`.
    pub fn get(&self, reason: AbortReason) -> u64 {
        match reason {
            AbortReason::DataUnavailable => self.data_unavailable,
            AbortReason::CopierTargetFailed => self.copier_target_failed,
            AbortReason::ParticipantFailed => self.participant_failed,
            AbortReason::SessionMismatch => self.session_mismatch,
            AbortReason::SiteNotOperational => self.site_not_operational,
            AbortReason::GlobalAbort => self.global_abort,
            AbortReason::StaleShardMap => self.stale_shard_map,
        }
    }

    /// Total aborts across all reasons.
    pub fn total(&self) -> u64 {
        self.data_unavailable
            + self.copier_target_failed
            + self.participant_failed
            + self.session_mismatch
            + self.site_not_operational
            + self.global_abort
            + self.stale_shard_map
    }

    /// `(short label, count)` pairs for non-zero reasons, in enum order.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        [
            ("data-unavail", self.data_unavailable),
            ("copier-failed", self.copier_target_failed),
            ("participant-failed", self.participant_failed),
            ("session-mismatch", self.session_mismatch),
            ("site-down", self.site_not_operational),
            ("global-abort", self.global_abort),
            ("stale-map", self.stale_shard_map),
        ]
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .collect()
    }

    fn slot(&mut self, reason: AbortReason) -> &mut u64 {
        match reason {
            AbortReason::DataUnavailable => &mut self.data_unavailable,
            AbortReason::CopierTargetFailed => &mut self.copier_target_failed,
            AbortReason::ParticipantFailed => &mut self.participant_failed,
            AbortReason::SessionMismatch => &mut self.session_mismatch,
            AbortReason::SiteNotOperational => &mut self.site_not_operational,
            AbortReason::GlobalAbort => &mut self.global_abort,
            AbortReason::StaleShardMap => &mut self.stale_shard_map,
        }
    }
}

/// Cumulative counters maintained by a [`crate::engine::SiteEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Messages sent (all kinds).
    pub msgs_sent: u64,
    /// Messages received and processed.
    pub msgs_received: u64,
    /// Transactions this site coordinated.
    pub txns_coordinated: u64,
    /// ... of which committed.
    pub txns_committed: u64,
    /// ... of which aborted, broken down by reason.
    pub aborts: AbortBreakdown,
    /// Transactions this site participated in (phase one entered).
    pub txns_participated: u64,
    /// Fail-lock bits set by this site's maintenance.
    pub faillocks_set: u64,
    /// Fail-lock bits cleared by this site (maintenance, copier refresh,
    /// or clear-fail-lock messages).
    pub faillocks_cleared: u64,
    /// Copier transactions (copy requests) issued by this site.
    pub copier_requests: u64,
    /// Copy requests served for other sites.
    pub copy_requests_served: u64,
    /// Standalone clear-fail-lock transactions sent (not piggybacked).
    pub clear_messages_sent: u64,
    /// Type-1 control transactions initiated (recoveries attempted).
    pub control_type1: u64,
    /// Type-2 control transactions initiated (failures announced).
    pub control_type2: u64,
    /// Type-3 control transactions initiated (backup copies created).
    pub control_type3: u64,
    /// Highest number of coordinated transactions simultaneously in
    /// flight (admitted and not yet finished) on this site.
    pub inflight_high_water: u64,
    /// Admitted transactions that had to wait for a predeclared lock
    /// held by an earlier in-flight transaction.
    pub lock_waits: u64,
    /// Transactions admitted with every predeclared lock granted
    /// immediately (no conflict with the in-flight set).
    pub lock_grants_immediate: u64,
    /// Transport frames that carried more than one message (threaded
    /// deployments only; the driving loop records these).
    pub batch_frames_sent: u64,
    /// Messages that travelled inside multi-message frames.
    pub batched_messages_sent: u64,
    /// Session-layer retransmissions performed by this site's transport
    /// (folded in by the driving loop via `note_transport`).
    pub transport_retransmits: u64,
    /// Duplicate or stale sequenced frames dropped by the reliable
    /// mailbox before delivery.
    pub transport_dup_drops: u64,
    /// TCP reconnect attempts made after a peer connection died.
    pub transport_reconnects: u64,
    /// Group-commit fsyncs issued by this site's REDO WAL (durable
    /// deployments only; folded in by the driving loop via `note_wal`).
    pub wal_fsyncs: u64,
    /// Commit records appended to the REDO WAL.
    pub wal_commit_records: u64,
    /// REDO WAL records of any kind appended.
    pub wal_records: u64,
}

impl EngineMetrics {
    /// Total transactions aborted (all reasons).
    pub fn txns_aborted(&self) -> u64 {
        self.aborts.total()
    }

    /// Mean messages per multi-message frame, or 0.0 if none were sent.
    pub fn batched_messages_per_frame(&self) -> f64 {
        if self.batch_frames_sent == 0 {
            0.0
        } else {
            self.batched_messages_sent as f64 / self.batch_frames_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = EngineMetrics::default();
        assert_eq!(m.msgs_sent, 0);
        assert_eq!(m.control_type1, 0);
        assert_eq!(m.txns_aborted(), 0);
    }

    #[test]
    fn abort_breakdown_totals() {
        let mut b = AbortBreakdown::default();
        b.record(AbortReason::DataUnavailable);
        b.record(AbortReason::DataUnavailable);
        b.record(AbortReason::SessionMismatch);
        assert_eq!(b.total(), 3);
        assert_eq!(b.get(AbortReason::DataUnavailable), 2);
        assert_eq!(b.get(AbortReason::ParticipantFailed), 0);
        assert_eq!(
            b.nonzero(),
            vec![("data-unavail", 2), ("session-mismatch", 1)]
        );
    }
}
