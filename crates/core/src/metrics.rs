//! Per-site protocol counters, queryable by the experiment harness.

use serde::{Deserialize, Serialize};

/// Cumulative counters maintained by a [`crate::engine::SiteEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Messages sent (all kinds).
    pub msgs_sent: u64,
    /// Messages received and processed.
    pub msgs_received: u64,
    /// Transactions this site coordinated.
    pub txns_coordinated: u64,
    /// ... of which committed.
    pub txns_committed: u64,
    /// ... of which aborted.
    pub txns_aborted: u64,
    /// Transactions this site participated in (phase one entered).
    pub txns_participated: u64,
    /// Fail-lock bits set by this site's maintenance.
    pub faillocks_set: u64,
    /// Fail-lock bits cleared by this site (maintenance, copier refresh,
    /// or clear-fail-lock messages).
    pub faillocks_cleared: u64,
    /// Copier transactions (copy requests) issued by this site.
    pub copier_requests: u64,
    /// Copy requests served for other sites.
    pub copy_requests_served: u64,
    /// Standalone clear-fail-lock transactions sent (not piggybacked).
    pub clear_messages_sent: u64,
    /// Type-1 control transactions initiated (recoveries attempted).
    pub control_type1: u64,
    /// Type-2 control transactions initiated (failures announced).
    pub control_type2: u64,
    /// Type-3 control transactions initiated (backup copies created).
    pub control_type3: u64,
    /// Highest number of coordinated transactions simultaneously in
    /// flight (admitted and not yet finished) on this site.
    pub inflight_high_water: u64,
    /// Admitted transactions that had to wait for a predeclared lock
    /// held by an earlier in-flight transaction.
    pub lock_waits: u64,
    /// Transactions admitted with every predeclared lock granted
    /// immediately (no conflict with the in-flight set).
    pub lock_grants_immediate: u64,
    /// Transport frames that carried more than one message (threaded
    /// deployments only; the driving loop records these).
    pub batch_frames_sent: u64,
    /// Messages that travelled inside multi-message frames.
    pub batched_messages_sent: u64,
}

impl EngineMetrics {
    /// Mean messages per multi-message frame, or 0.0 if none were sent.
    pub fn batched_messages_per_frame(&self) -> f64 {
        if self.batch_frames_sent == 0 {
            0.0
        } else {
            self.batched_messages_sent as f64 / self.batch_frames_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = EngineMetrics::default();
        assert_eq!(m.msgs_sent, 0);
        assert_eq!(m.control_type1, 0);
    }
}
