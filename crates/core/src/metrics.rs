//! Per-site protocol counters, queryable by the experiment harness.

use serde::{Deserialize, Serialize};

/// Cumulative counters maintained by a [`crate::engine::SiteEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Messages sent (all kinds).
    pub msgs_sent: u64,
    /// Messages received and processed.
    pub msgs_received: u64,
    /// Transactions this site coordinated.
    pub txns_coordinated: u64,
    /// ... of which committed.
    pub txns_committed: u64,
    /// ... of which aborted.
    pub txns_aborted: u64,
    /// Transactions this site participated in (phase one entered).
    pub txns_participated: u64,
    /// Fail-lock bits set by this site's maintenance.
    pub faillocks_set: u64,
    /// Fail-lock bits cleared by this site (maintenance, copier refresh,
    /// or clear-fail-lock messages).
    pub faillocks_cleared: u64,
    /// Copier transactions (copy requests) issued by this site.
    pub copier_requests: u64,
    /// Copy requests served for other sites.
    pub copy_requests_served: u64,
    /// Standalone clear-fail-lock transactions sent (not piggybacked).
    pub clear_messages_sent: u64,
    /// Type-1 control transactions initiated (recoveries attempted).
    pub control_type1: u64,
    /// Type-2 control transactions initiated (failures announced).
    pub control_type2: u64,
    /// Type-3 control transactions initiated (backup copies created).
    pub control_type3: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = EngineMetrics::default();
        assert_eq!(m.msgs_sent, 0);
        assert_eq!(m.control_type1, 0);
    }
}
