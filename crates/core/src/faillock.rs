//! Fail-locks (paper §1.1, §1.2).
//!
//! A fail-lock on copy *(x, k)* records that item *x* was updated while
//! site *k* was unavailable, so site *k*'s copy is out of date. Fail-locks
//! are fully replicated: every operational site maintains the complete
//! table on behalf of all sites. The paper implements the table as one
//! bitmap per data item with one bit per site — so do we (`u64` per item,
//! supporting up to 64 sites, which "allowed the fail-lock operations to
//! be performed very quickly").

use serde::{Deserialize, Serialize};

use crate::ids::{ItemId, SiteId};
use crate::session::SessionVector;

/// The replicated fail-lock table of one site.
///
/// ```
/// use miniraid_core::faillock::FailLockTable;
/// use miniraid_core::session::SessionVector;
/// use miniraid_core::{ItemId, SiteId};
///
/// let mut table = FailLockTable::new(50, 4);
/// let mut vector = SessionVector::new(4);
/// vector.mark_down(SiteId(3));
///
/// // A commit of item 7 while site 3 is down marks its copy stale.
/// table.maintain_on_commit(ItemId(7), &vector);
/// assert!(table.is_locked(ItemId(7), SiteId(3)));
/// assert_eq!(table.count_locked_for(SiteId(3)), 1);
///
/// // A copier refresh (or a later commit with site 3 up) clears it.
/// table.clear(ItemId(7), SiteId(3));
/// assert_eq!(table.total_set(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailLockTable {
    /// `bits[item] & (1 << site)` set ⇔ fail-lock set for `site` on `item`.
    bits: Vec<u64>,
    n_sites: u8,
}

/// Counts returned by commit-time fail-lock maintenance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainCounts {
    /// Fail-lock bits newly set (for down sites).
    pub set: u32,
    /// Fail-lock bits actually cleared (for up sites).
    pub cleared: u32,
}

impl FailLockTable {
    /// An all-clear table for `n_items` items and `n_sites` sites.
    ///
    /// # Panics
    /// Panics if `n_sites > 64` (the bitmap width).
    pub fn new(n_items: u32, n_sites: u8) -> Self {
        assert!(
            n_sites as usize <= 64,
            "fail-lock bitmaps support ≤64 sites"
        );
        FailLockTable {
            bits: vec![0; n_items as usize],
            n_sites,
        }
    }

    /// Number of items covered.
    pub fn n_items(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Number of sites covered.
    pub fn n_sites(&self) -> u8 {
        self.n_sites
    }

    /// Set the fail-lock for `site` on `item`. Returns true if the bit
    /// was not already set.
    pub fn set(&mut self, item: ItemId, site: SiteId) -> bool {
        let mask = 1u64 << site.0;
        let slot = &mut self.bits[item.index()];
        let was = *slot & mask != 0;
        *slot |= mask;
        !was
    }

    /// Clear the fail-lock for `site` on `item`. Returns true if the bit
    /// was set.
    pub fn clear(&mut self, item: ItemId, site: SiteId) -> bool {
        let mask = 1u64 << site.0;
        let slot = &mut self.bits[item.index()];
        let was = *slot & mask != 0;
        *slot &= !mask;
        was
    }

    /// Is the fail-lock for `site` set on `item` (i.e. is site's copy of
    /// the item out of date)?
    pub fn is_locked(&self, item: ItemId, site: SiteId) -> bool {
        self.bits[item.index()] & (1u64 << site.0) != 0
    }

    /// Any fail-lock set on `item`?
    pub fn any_locked(&self, item: ItemId) -> bool {
        self.bits[item.index()] != 0
    }

    /// Raw bitmap word of one item (bit per site) — persisted by durable
    /// deployments.
    pub fn word(&self, item: ItemId) -> u64 {
        self.bits[item.index()]
    }

    /// Install one raw bitmap word (durable restart preload).
    pub fn set_word(&mut self, item: ItemId, word: u64) {
        self.bits[item.index()] = word;
    }

    /// Sites whose copy of `item` is out of date.
    pub fn locked_sites(&self, item: ItemId) -> impl Iterator<Item = SiteId> + '_ {
        let word = self.bits[item.index()];
        (0..self.n_sites)
            .filter(move |s| word & (1u64 << s) != 0)
            .map(SiteId)
    }

    /// Items whose copy at `site` is out of date, in id order.
    pub fn items_locked_for(&self, site: SiteId) -> Vec<ItemId> {
        let mask = 1u64 << site.0;
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, w)| **w & mask != 0)
            .map(|(i, _)| ItemId(i as u32))
            .collect()
    }

    /// Number of items fail-locked for `site` — the y-axis of the paper's
    /// Figures 1–3 ("number of fail-locks set").
    pub fn count_locked_for(&self, site: SiteId) -> u32 {
        let mask = 1u64 << site.0;
        self.bits.iter().filter(|w| **w & mask != 0).count() as u32
    }

    /// Total fail-lock bits set across all items and sites.
    pub fn total_set(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Commit-time maintenance for one written item (paper §1.2):
    /// examining the nominal session vector, set the bit of every down
    /// site and clear the bit of every up site. (The paper notes the
    /// unconditional re-clear for operational sites was *more* efficient
    /// than a conditional implementation; with bitmaps it is two masks.)
    pub fn maintain_on_commit(&mut self, item: ItemId, vector: &SessionVector) -> MaintainCounts {
        let all_mask = if self.n_sites == 64 {
            u64::MAX
        } else {
            (1u64 << self.n_sites) - 1
        };
        self.maintain_on_commit_masked(item, vector, all_mask)
    }

    /// Like [`FailLockTable::maintain_on_commit`], restricted to the sites
    /// in `holder_mask` — for partially replicated databases, where a
    /// fail-lock is meaningful only for sites that hold a copy.
    pub fn maintain_on_commit_masked(
        &mut self,
        item: ItemId,
        vector: &SessionVector,
        holder_mask: u64,
    ) -> MaintainCounts {
        let mut up_mask = 0u64;
        for s in 0..self.n_sites {
            if vector.is_up(SiteId(s)) {
                up_mask |= 1u64 << s;
            }
        }
        self.maintain_on_commit_bits(item, up_mask, holder_mask)
    }

    /// Commit-time maintenance from a precomputed operational-site
    /// bitmap — the coordinator's, shipped in the `CopyUpdate`. All
    /// participants of a commit must apply the identical table update
    /// (the fail-lock table is replicated state), so the mask comes
    /// from the one site that chose the participant set, not from each
    /// participant's possibly-divergent local vector.
    pub fn maintain_on_commit_bits(
        &mut self,
        item: ItemId,
        up_mask: u64,
        holder_mask: u64,
    ) -> MaintainCounts {
        let down_mask = holder_mask & !up_mask;
        let clear_mask = holder_mask & up_mask;
        let slot = &mut self.bits[item.index()];
        let before = *slot;
        let after = (before | down_mask) & !clear_mask;
        *slot = after;
        MaintainCounts {
            set: (after & !before).count_ones(),
            cleared: (before & !after).count_ones(),
        }
    }

    /// Raw bitmap snapshot — shipped to a recovering site during a type-1
    /// control transaction (fail-locks are fully replicated).
    pub fn snapshot(&self) -> Vec<u64> {
        self.bits.clone()
    }

    /// Install a snapshot received during recovery, replacing local state.
    ///
    /// Correctness relies on the system invariant that at least one site
    /// was operational at every instant: the operational sites' tables are
    /// then authoritative and identical at quiescent points.
    pub fn install_snapshot(&mut self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), self.bits.len(), "snapshot size mismatch");
        self.bits.copy_from_slice(snapshot);
    }

    /// Merge a snapshot received during recovery into the local table by
    /// set union.
    ///
    /// A recovering site cannot verify that its chosen responder holds
    /// the operational group's authoritative table — the responder may
    /// itself have been falsely excluded and not know it, and its table
    /// may be missing bits the local write-ahead log preserved. The two
    /// error directions are not symmetric: a spurious bit only forces a
    /// redundant copier refresh of a copy that was already fresh, while
    /// a dropped bit lets a stale copy masquerade as current and lose a
    /// committed write. Union is therefore the safe merge.
    pub fn union_snapshot(&mut self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), self.bits.len(), "snapshot size mismatch");
        for (slot, word) in self.bits.iter_mut().zip(snapshot) {
            *slot |= word;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_query_roundtrip() {
        let mut t = FailLockTable::new(10, 4);
        assert!(!t.is_locked(ItemId(3), SiteId(2)));
        assert!(t.set(ItemId(3), SiteId(2)));
        assert!(!t.set(ItemId(3), SiteId(2)), "second set is a no-op");
        assert!(t.is_locked(ItemId(3), SiteId(2)));
        assert!(t.any_locked(ItemId(3)));
        assert!(t.clear(ItemId(3), SiteId(2)));
        assert!(!t.clear(ItemId(3), SiteId(2)), "second clear is a no-op");
        assert!(!t.any_locked(ItemId(3)));
    }

    #[test]
    fn counting_and_listing() {
        let mut t = FailLockTable::new(8, 4);
        t.set(ItemId(0), SiteId(1));
        t.set(ItemId(5), SiteId(1));
        t.set(ItemId(5), SiteId(3));
        assert_eq!(t.count_locked_for(SiteId(1)), 2);
        assert_eq!(t.count_locked_for(SiteId(3)), 1);
        assert_eq!(t.count_locked_for(SiteId(0)), 0);
        assert_eq!(t.items_locked_for(SiteId(1)), vec![ItemId(0), ItemId(5)]);
        assert_eq!(
            t.locked_sites(ItemId(5)).collect::<Vec<_>>(),
            vec![SiteId(1), SiteId(3)]
        );
        assert_eq!(t.total_set(), 3);
    }

    #[test]
    fn maintain_sets_down_and_clears_up() {
        let mut t = FailLockTable::new(4, 4);
        let mut v = SessionVector::new(4);
        v.mark_down(SiteId(0));
        v.mark_down(SiteId(3));
        // Pre-set a stale bit for an up site: must be cleared.
        t.set(ItemId(2), SiteId(1));
        let counts = t.maintain_on_commit(ItemId(2), &v);
        assert_eq!(counts.set, 2); // sites 0 and 3
        assert_eq!(counts.cleared, 1); // site 1
        assert!(t.is_locked(ItemId(2), SiteId(0)));
        assert!(t.is_locked(ItemId(2), SiteId(3)));
        assert!(!t.is_locked(ItemId(2), SiteId(1)));
        assert!(!t.is_locked(ItemId(2), SiteId(2)));
    }

    #[test]
    fn maintain_with_all_up_is_idempotent_clear() {
        let mut t = FailLockTable::new(2, 3);
        let v = SessionVector::new(3);
        let counts = t.maintain_on_commit(ItemId(0), &v);
        assert_eq!(counts, MaintainCounts { set: 0, cleared: 0 });
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = FailLockTable::new(6, 2);
        a.set(ItemId(1), SiteId(0));
        a.set(ItemId(4), SiteId(1));
        let mut b = FailLockTable::new(6, 2);
        b.set(ItemId(0), SiteId(0)); // will be overwritten
        b.install_snapshot(&a.snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn union_keeps_local_bits_and_adds_remote_ones() {
        let mut mine = FailLockTable::new(6, 2);
        mine.set(ItemId(1), SiteId(0)); // e.g. restored from the WAL
        let mut theirs = FailLockTable::new(6, 2);
        theirs.set(ItemId(4), SiteId(1));
        mine.union_snapshot(&theirs.snapshot());
        assert!(mine.is_locked(ItemId(1), SiteId(0)), "local bit destroyed");
        assert!(mine.is_locked(ItemId(4), SiteId(1)), "remote bit missed");
        assert_eq!(mine.total_set(), 2);
    }

    #[test]
    #[should_panic(expected = "≤64 sites")]
    fn more_than_64_sites_panics() {
        let _ = FailLockTable::new(1, 65);
    }

    #[test]
    fn sixty_four_sites_supported() {
        let mut t = FailLockTable::new(1, 64);
        let mut v = SessionVector::new(64);
        for s in 0..63 {
            v.mark_down(SiteId(s));
        }
        let counts = t.maintain_on_commit(ItemId(0), &v);
        assert_eq!(counts.set, 63);
        assert_eq!(t.count_locked_for(SiteId(63)), 0);
        assert!(t.is_locked(ItemId(0), SiteId(62)));
    }
}
