//! Wait-for graph with cycle detection, used by the lock manager.

use std::collections::{HashMap, HashSet};

use crate::ids::TxnId;

/// Directed wait-for graph: an edge `a -> b` means transaction `a` waits
/// for a lock held (or queued earlier) by `b`.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one wait edge.
    pub fn add_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if waiter != holder {
            self.edges.entry(waiter).or_default().insert(holder);
        }
    }

    /// Would making `waiter` wait on all of `holders` close a cycle?
    /// (I.e. is `waiter` reachable from any holder through existing
    /// wait edges?)
    pub fn would_cycle(&self, waiter: TxnId, holders: &[TxnId]) -> bool {
        let mut stack: Vec<TxnId> = holders.iter().copied().filter(|h| *h != waiter).collect();
        if holders.contains(&waiter) {
            // Waiting on yourself is not a deadlock (re-entrant requests
            // are resolved before this point).
        }
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == waiter {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Remove the outgoing edges of a transaction that stopped waiting
    /// (its request was granted).
    pub fn remove_waiter(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
    }

    /// Remove a transaction entirely (committed or aborted): its own
    /// edges and every edge pointing at it.
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for targets in self.edges.values_mut() {
            targets.remove(&txn);
        }
        self.edges.retain(|_, v| !v.is_empty());
    }

    /// Number of transactions with outgoing wait edges.
    pub fn waiter_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_cycle() {
        let mut g = WaitForGraph::new();
        g.add_edge(TxnId(1), TxnId(2));
        assert!(g.would_cycle(TxnId(2), &[TxnId(1)]));
        assert!(!g.would_cycle(TxnId(3), &[TxnId(1)]));
    }

    #[test]
    fn transitive_cycle() {
        let mut g = WaitForGraph::new();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(3));
        assert!(g.would_cycle(TxnId(3), &[TxnId(1)]));
        assert!(!g.would_cycle(TxnId(3), &[TxnId(4)]));
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = WaitForGraph::new();
        g.add_edge(TxnId(1), TxnId(1));
        assert_eq!(g.waiter_count(), 0);
        assert!(!g.would_cycle(TxnId(1), &[TxnId(1)]));
    }

    #[test]
    fn removal_breaks_cycles() {
        let mut g = WaitForGraph::new();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(3));
        g.remove_txn(TxnId(2));
        assert!(!g.would_cycle(TxnId(3), &[TxnId(1)]));
        assert_eq!(g.waiter_count(), 0);
    }

    #[test]
    fn remove_waiter_keeps_incoming_edges() {
        let mut g = WaitForGraph::new();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(3));
        g.remove_waiter(TxnId(2));
        // 1 -> 2 remains; 2 -> 3 gone.
        assert!(g.would_cycle(TxnId(2), &[TxnId(1)]));
        assert!(!g.would_cycle(TxnId(3), &[TxnId(2)]));
    }
}
