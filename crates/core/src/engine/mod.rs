//! The site protocol engine: a pure (sans-IO) state machine.
//!
//! A [`SiteEngine`] holds everything one database site owns in the paper's
//! system — its copy of the database, its nominal session vector, its
//! replicated fail-lock table — and implements every protocol role: 2PC
//! coordinator and participant (Appendix A), copier-transaction client and
//! server, and control transactions of types 1, 2 and 3.
//!
//! The engine performs no I/O and reads no clock: drivers feed it
//! [`Input`]s (delivered messages, timer expiries, management commands)
//! and execute the [`Output`]s it returns (sends, timer arms, reports).
//! The deterministic simulator (`miniraid-sim`) and the threaded cluster
//! (`miniraid-cluster`) drive the *same* engine, so behaviour validated
//! under simulation is the behaviour deployed on real threads and sockets.
//!
//! Timer handling is *stale-safe*: the engine never needs timers
//! cancelled; a fired timer whose condition no longer holds is ignored.

mod control;
mod coordinator;
mod copier;
mod participant;
mod recovery;

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::config::ProtocolConfig;
use crate::faillock::FailLockTable;
use crate::ids::{ItemId, ReqId, SessionNumber, SiteId, TxnId};
use crate::locks::LockManager;
use crate::messages::{Command, Message, TxnReport, TxnStats};
use crate::metrics::EngineMetrics;
use crate::ops::Transaction;
use crate::partial::ReplicationMap;
use crate::session::{SessionVector, SiteStatus};
use crate::trace::{EventKind, Tracer};
use miniraid_storage::{ItemValue, MemStore};

pub use self::coordinator::CoordPhase;

/// How many committed participant decisions are remembered for
/// re-acking redelivered `Commit` messages. Retransmission windows are
/// short (a few round trips), so a small bound suffices.
const RECENT_PART_CAP: usize = 128;

/// An event fed into the engine by its driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// A message delivered from another site.
    Deliver {
        /// The sender.
        from: SiteId,
        /// The message.
        msg: Message,
    },
    /// A previously armed timer fired.
    Timer(TimerId),
    /// A command from the managing site.
    Control(Command),
}

/// Timers the engine arms. Durations are the driver's business
/// (see `TimingConfig` in the drivers); identity is the engine's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerId {
    /// Waiting for phase-one acks of a coordinated transaction.
    AckTimeout(TxnId),
    /// Waiting for phase-two commit acks.
    CommitAckTimeout(TxnId),
    /// Participant waiting for the coordinator's commit/abort.
    ParticipantTimeout(TxnId),
    /// Waiting for a copy response (copier transaction).
    CopierTimeout(ReqId),
    /// Waiting for a remote read response (partial replication).
    ReadTimeout(ReqId),
    /// Waiting for `RecoveryInfo` during a type-1 control transaction;
    /// the payload is the attempt number.
    RecoveryInfoTimeout(u32),
    /// Next batch-copier round (two-step recovery, step two).
    BatchCopier,
}

/// CPU work the engine performed, for the simulator's cost accounting.
/// The threaded cluster ignores these (its CPU cost is real).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Work {
    /// Receiving and setting up a new transaction.
    TxnSetup,
    /// Executing `n` local read operations.
    ReadOps(u32),
    /// Applying `n` writes to the local database copy.
    ApplyWrites(u32),
    /// Commit-time fail-lock maintenance over `n` written items.
    FailLockMaintain(u32),
    /// Clearing fail-lock bits for `n` items on request.
    FailLockClear(u32),
    /// Installing a received fail-lock snapshot of `n` items.
    FailLockInstall(u32),
    /// Installing a received session vector.
    SessionInstall,
    /// Formatting session vector + fail-locks of `n` items for a
    /// recovering site (type-1 control transaction, operational side).
    FormatRecoveryState(u32),
    /// Serving a copy request covering `n` items.
    CopierService(u32),
    /// Buffering `n` tentative writes in phase one.
    BufferWrites(u32),
    /// Local commit bookkeeping.
    CommitLocal,
    /// Updating the session vector for `n` sites marked down (type-2
    /// control transaction processing).
    FailureUpdate(u32),
}

/// An action the driver must carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Send `msg` to site `to`.
    Send {
        /// Destination.
        to: SiteId,
        /// Payload.
        msg: Message,
    },
    /// Arm a timer (durations are configured in the driver).
    SetTimer(TimerId),
    /// Account the given CPU work (simulator cost model).
    Work(Work),
    /// A coordinated transaction finished.
    Report(TxnReport),
    /// This site completed a type-1 control transaction and is
    /// operational again.
    BecameOperational {
        /// The new session.
        session: SessionNumber,
    },
    /// Recovery could not complete (no operational site answered).
    RecoveryFailed,
    /// All of this site's fail-locks are cleared: its database copy is
    /// fully up to date ("completely recovered" in the paper's terms).
    DataRecoveryComplete,
    /// Durably persist these applied writes (emitted only when
    /// [`crate::config::ProtocolConfig::emit_persistence`] is set; the
    /// driver owns the durable store).
    Persist {
        /// The committing transaction (or refresh source).
        txn: TxnId,
        /// Writes applied to the local copy.
        writes: Vec<(ItemId, ItemValue)>,
        /// Post-maintenance fail-lock bitmap words of affected items
        /// (fail-locks are protocol state and must survive restarts).
        faillocks: Vec<(ItemId, u64)>,
    },
}

/// One in-flight coordinated transaction. With the default
/// `max_inflight = 1` exactly one exists at a time (the paper processes
/// transactions serially, assumption 2); larger values pipeline several,
/// keyed by transaction id and serialized through the engine's
/// conservative strict-2PL lock manager.
#[derive(Debug)]
pub(crate) struct CoordTxn {
    pub txn: Transaction,
    pub snapshot: Vec<SessionNumber>,
    /// Operational-site bitmap backing the participant choice, shipped
    /// in `CopyUpdate` so commit-time fail-lock maintenance is identical
    /// at every participant (see `Message::CopyUpdate::up_mask`).
    pub up_mask: u64,
    pub phase: CoordPhase,
    /// Participants of the current 2PC round.
    pub participants: BTreeSet<SiteId>,
    /// Participants we are still waiting on (acks or commit-acks).
    pub waiting: BTreeSet<SiteId>,
    /// Version-stamped effective write set.
    pub writes: Vec<(ItemId, ItemValue)>,
    /// In-flight copy requests: req -> (target, items).
    pub pending_copiers: HashMap<ReqId, (SiteId, Vec<ItemId>)>,
    /// In-flight remote reads (partial replication): req -> (target, items).
    pub pending_reads: HashMap<ReqId, (SiteId, Vec<ItemId>)>,
    /// Items this transaction refreshed via copiers (their fail-locks for
    /// this site must be cleared everywhere).
    pub refreshed: Vec<ItemId>,
    /// Values obtained by remote reads.
    pub remote_values: HashMap<ItemId, ItemValue>,
    /// Read results (local + remote), populated at read execution.
    pub read_results: Vec<(ItemId, ItemValue)>,
    pub stats: TxnStats,
    /// A participant failed during phase two (txn still commits).
    pub phase2_failure: bool,
    /// Quorum reads: peer responses required beyond our own copy
    /// (0 outside majority-quorum mode).
    pub quorum_needed: usize,
    /// Quorum reads: peer responses received so far.
    pub quorum_got: usize,
}

/// Pending participant context: writes buffered in phase one.
#[derive(Debug)]
pub(crate) struct PendingTxn {
    pub coordinator: SiteId,
    pub writes: Vec<(ItemId, ItemValue)>,
    pub clears: Vec<(ItemId, SiteId)>,
    /// Coordinator's operational-site bitmap from the `CopyUpdate`.
    pub up_mask: u64,
}

/// Recovery progress (type-1 control transaction + data refresh phase).
#[derive(Debug)]
pub(crate) struct RecoveryState {
    /// Candidate responders, in ask order.
    pub candidates: Vec<SiteId>,
    /// Current attempt (index into `candidates`).
    pub attempt: u32,
    /// The session being recovered into.
    pub session: SessionNumber,
}

/// Data-refresh progress after becoming operational.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RefreshMode {
    /// Not recovering (no stale copies).
    Idle,
    /// Step one: refresh on demand only (the paper's implementation).
    OnDemand,
    /// Step two: batch copier mode (paper §3.2 proposal).
    Batch {
        /// A batch round is in flight or armed.
        armed: bool,
    },
}

/// One database site's protocol engine. See the module docs.
#[derive(Debug)]
pub struct SiteEngine {
    id: SiteId,
    config: ProtocolConfig,
    vector: SessionVector,
    db: MemStore,
    faillocks: FailLockTable,
    replication: ReplicationMap,
    metrics: EngineMetrics,
    /// Protocol event emission handle (disabled by default).
    pub(crate) tracer: Tracer,

    /// Coordinated transactions in flight, keyed by id
    /// (at most `config.max_inflight`, counting lock waiters).
    pub(crate) coords: HashMap<TxnId, CoordTxn>,
    /// Admitted transactions whose predeclared locks are not all granted
    /// yet; they start as soon as earlier conflicting transactions finish.
    pub(crate) lock_waiting: HashMap<TxnId, Transaction>,
    /// FIFO admission order of the lock waiters.
    pub(crate) lock_wait_order: VecDeque<TxnId>,
    /// Transactions queued for an admission slot.
    pub(crate) queued: VecDeque<Transaction>,
    /// Owning transaction of every in-flight copier / remote-read
    /// request, for routing responses in pipelined mode.
    pub(crate) req_owner: HashMap<ReqId, TxnId>,
    /// Conservative strict-2PL lock table serializing conflicting
    /// in-flight transactions at this coordinator.
    pub(crate) locks: LockManager,
    /// Cross-shard branches this engine coordinates on behalf of a
    /// top-level shard coordinator: txn → where the `ShardVote` goes.
    /// Entries live from `ShardPrepare` until the vote is sent (no) or
    /// the `ShardDecide` resolves the parked branch (yes).
    pub(crate) held: HashMap<TxnId, SiteId>,
    /// Participant contexts keyed by transaction.
    pub(crate) pending: HashMap<TxnId, PendingTxn>,
    /// Recently committed participant decisions, kept so a redelivered
    /// `Commit` is re-acked instead of silently dropped (the coordinator
    /// may be retransmitting because our first `CommitAck` was lost).
    /// Bounded FIFO; see [`RECENT_PART_CAP`].
    pub(crate) recent_part: VecDeque<(TxnId, SiteId)>,
    /// CT1 progress, while status is WaitingToRecover.
    pub(crate) recovery: Option<RecoveryState>,
    /// Candidates asked for state during the last type-1 round whose
    /// `RecoveryInfo` has not arrived yet; late responses are merged in
    /// to cross-check the first responder (see `on_late_recovery_info`).
    pub(crate) late_donors: Vec<SiteId>,
    /// Data refresh mode after recovery.
    pub(crate) refresh: RefreshMode,
    /// In-flight standalone (batch) copiers: req -> (target, items).
    pub(crate) standalone_copiers: HashMap<ReqId, (SiteId, Vec<ItemId>)>,
    /// Next request id.
    pub(crate) next_req: u64,
    /// Not-yet-replayed committed image after an instant restart (see
    /// [`SiteEngine::preload_lazy`]). `None` once replay completes, so
    /// the steady-state cost is one branch per database access.
    lazy: Option<miniraid_storage::LazyImage>,
    /// Reused buffer for predeclared lock plans (admission and waiter
    /// readiness checks allocate nothing in steady state).
    pub(crate) lock_plan_scratch: Vec<(ItemId, crate::locks::LockMode)>,
}

impl SiteEngine {
    /// Create an engine for a fully replicated database.
    pub fn new(id: SiteId, config: ProtocolConfig) -> Self {
        let map = ReplicationMap::full(config.db_size, config.n_sites);
        Self::with_replication(id, config, map)
    }

    /// Create an engine with an explicit replication map (partial
    /// replication; enables type-3 control transactions when configured).
    pub fn with_replication(id: SiteId, config: ProtocolConfig, map: ReplicationMap) -> Self {
        assert!(id.0 < config.n_sites, "site id out of range");
        assert_eq!(map.n_items(), config.db_size);
        assert_eq!(map.n_sites(), config.n_sites);
        SiteEngine {
            id,
            vector: SessionVector::new(config.n_sites as usize),
            db: MemStore::new(config.db_size),
            faillocks: FailLockTable::new(config.db_size, config.n_sites),
            replication: map,
            metrics: EngineMetrics::default(),
            tracer: Tracer::disabled(),
            coords: HashMap::new(),
            lock_waiting: HashMap::new(),
            lock_wait_order: VecDeque::new(),
            queued: VecDeque::new(),
            req_owner: HashMap::new(),
            locks: LockManager::new(),
            held: HashMap::new(),
            pending: HashMap::new(),
            recent_part: VecDeque::new(),
            recovery: None,
            late_donors: Vec::new(),
            refresh: RefreshMode::Idle,
            standalone_copiers: HashMap::new(),
            next_req: 1,
            lazy: None,
            lock_plan_scratch: Vec::new(),
            config,
        }
    }

    /// Preload the local database copy from durably recovered state
    /// (e.g. a WAL-backed store after a process restart). Call before
    /// processing any input. A restarted process is logically a
    /// recovering site — pair this with [`SiteEngine::assume_failed`]
    /// unless the site is the bootstrap authority of a full-cluster
    /// restart; the session vector and fail-locks are then re-learned
    /// through a type-1 control transaction, and copier transactions
    /// refresh whatever the preloaded copy still misses.
    pub fn preload_db(&mut self, items: impl IntoIterator<Item = (ItemId, ItemValue)>) {
        for (item, value) in items {
            self.db
                .put(item.0, value)
                .expect("preloaded item within database universe");
        }
    }

    /// Preload the local database copy *lazily* from a REDO-log image
    /// (instant restart): the engine becomes operational immediately and
    /// replays items on first access, while the driver pumps
    /// [`SiteEngine::hydrate_step`] in the background. The alternative,
    /// [`SiteEngine::preload_db`], applies everything up front.
    pub fn preload_lazy(&mut self, image: miniraid_storage::LazyImage) {
        self.lazy = (image.remaining() > 0).then_some(image);
    }

    /// Items still awaiting background replay (0 = fully hydrated).
    pub fn hydration_remaining(&self) -> u32 {
        self.lazy.as_ref().map(|l| l.remaining()).unwrap_or(0)
    }

    /// Background replay: hydrate up to `max` items from the restart
    /// image, returning how many remain afterwards.
    pub fn hydrate_step(&mut self, max: u32) -> u32 {
        let Some(lazy) = self.lazy.as_mut() else {
            return 0;
        };
        for _ in 0..max {
            match lazy.take_next() {
                Some((item, value)) => {
                    let _ = self.db.put_if_fresher(item, value);
                }
                None => break,
            }
        }
        let remaining = lazy.remaining();
        if remaining == 0 {
            self.lazy = None;
        }
        remaining
    }

    /// On-demand chain replay of one item, called before every database
    /// access. A no-op (single branch) once the restart image is drained.
    #[inline]
    pub(crate) fn hydrate(&mut self, item: ItemId) {
        if let Some(lazy) = self.lazy.as_mut() {
            if let Some(value) = lazy.take(item.0) {
                let _ = self.db.put_if_fresher(item.0, value);
            }
            if lazy.remaining() == 0 {
                self.lazy = None;
            }
        }
    }

    /// Preload fail-lock bitmap words recovered from durable storage.
    pub fn preload_faillocks(&mut self, words: impl IntoIterator<Item = (ItemId, u64)>) {
        for (item, word) in words {
            self.faillocks.set_word(item, word);
        }
    }

    /// Preload this site's own session number from durable storage (so
    /// session numbers stay monotone across process restarts).
    pub fn preload_session(&mut self, session: SessionNumber) {
        let status = self.status();
        self.vector
            .set_record(self.id, crate::session::SiteRecord { session, status });
    }

    /// Mark this site down before any input is processed (a restarted
    /// process must rejoin via a `Recover` command and its type-1
    /// control transaction).
    pub fn assume_failed(&mut self) {
        let session = self.session();
        self.vector.set_record(
            self.id,
            crate::session::SiteRecord {
                session,
                status: SiteStatus::Down,
            },
        );
    }

    // ---- accessors -----------------------------------------------------

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// This site's nominal session vector.
    pub fn vector(&self) -> &SessionVector {
        &self.vector
    }

    /// This site's database copy.
    pub fn db(&self) -> &MemStore {
        &self.db
    }

    /// This site's (replicated) fail-lock table.
    pub fn faillocks(&self) -> &FailLockTable {
        &self.faillocks
    }

    /// The replication map (all-ones when fully replicated).
    pub fn replication(&self) -> &ReplicationMap {
        &self.replication
    }

    /// Cumulative counters.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Bind a protocol-event tracer (see [`crate::trace`]). The default
    /// is [`Tracer::disabled`], which costs one branch per would-be
    /// event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The bound tracer (disabled unless [`SiteEngine::set_tracer`] was
    /// called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Record a multi-message transport frame. The engine is sans-IO and
    /// cannot see coalescing, so the driving loop reports it here.
    pub fn note_batch_frame(&mut self, messages: usize) {
        self.metrics.batch_frames_sent += 1;
        self.metrics.batched_messages_sent += messages as u64;
    }

    /// Fold cumulative transport-layer counters (retransmissions,
    /// duplicate drops, reconnect attempts) into the engine metrics so
    /// they appear in the site's exposition. Values are absolute; the
    /// driving loop calls this before rendering metrics.
    pub fn note_transport(&mut self, retransmits: u64, dup_drops: u64, reconnects: u64) {
        self.metrics.transport_retransmits = retransmits;
        self.metrics.transport_dup_drops = dup_drops;
        self.metrics.transport_reconnects = reconnects;
    }

    /// Fold cumulative REDO-WAL counters (group-commit fsyncs, commit
    /// records, records of any kind) into the engine metrics so they
    /// appear in the site's exposition. Values are absolute; the driving
    /// loop calls this before rendering metrics.
    pub fn note_wal(&mut self, fsyncs: u64, commit_records: u64, records: u64) {
        self.metrics.wal_fsyncs = fsyncs;
        self.metrics.wal_commit_records = commit_records;
        self.metrics.wal_records = records;
    }

    /// Remember a committed participant decision for duplicate-`Commit`
    /// re-acking, evicting the oldest entry beyond the bound.
    pub(crate) fn note_recent_participant(&mut self, txn: TxnId, coordinator: SiteId) {
        if self.recent_part.len() >= RECENT_PART_CAP {
            self.recent_part.pop_front();
        }
        self.recent_part.push_back((txn, coordinator));
    }

    /// This site's own status.
    pub fn status(&self) -> SiteStatus {
        self.vector.status(self.id)
    }

    /// True if this site is operational.
    pub fn is_up(&self) -> bool {
        self.status().is_up()
    }

    /// This site's current session number.
    pub fn session(&self) -> SessionNumber {
        self.vector.session(self.id)
    }

    /// Number of this site's own copies currently fail-locked (stale).
    pub fn own_stale_count(&self) -> u32 {
        self.faillocks.count_locked_for(self.id)
    }

    // ---- main dispatch --------------------------------------------------

    /// Process one input, appending required actions to `out`.
    pub fn handle(&mut self, input: Input, out: &mut Vec<Output>) {
        match input {
            Input::Control(cmd) => self.handle_command(cmd, out),
            // A traced frame is transparent to the protocol: bind the
            // payload's transaction to its causal trace, then handle the
            // payload as if it arrived bare (including the Mgmt
            // intercept below). Codec nesting rules make this one level.
            Input::Deliver {
                from,
                msg: Message::Traced { trace, inner },
            } => {
                if let Some(txn) = inner.txn_id() {
                    self.tracer.register_trace(txn, trace);
                }
                self.handle(Input::Deliver { from, msg: *inner }, out);
            }
            // Management commands reach a site in any state (the managing
            // site is how failures and recoveries are injected at all).
            Input::Deliver {
                msg: Message::Mgmt(cmd),
                ..
            } => self.handle_command(cmd, out),
            Input::Deliver { from, msg } => {
                // A down site does not participate in any system action
                // (paper §1.2); a terminating site neither.
                match self.status() {
                    SiteStatus::Down | SiteStatus::Terminating => return,
                    SiteStatus::WaitingToRecover => {
                        // Only recovery traffic is processed before the
                        // type-1 control transaction completes.
                        self.metrics.msgs_received += 1;
                        self.handle_while_recovering(from, msg, out);
                        return;
                    }
                    SiteStatus::Up => {}
                }
                self.metrics.msgs_received += 1;
                self.handle_message(from, msg, out);
            }
            Input::Timer(id) => {
                if !matches!(self.status(), SiteStatus::Up | SiteStatus::WaitingToRecover) {
                    return;
                }
                self.handle_timer(id, out);
            }
        }
    }

    /// Convenience wrapper returning a fresh output vector.
    pub fn handle_owned(&mut self, input: Input) -> Vec<Output> {
        let mut out = Vec::new();
        self.handle(input, &mut out);
        out
    }

    /// Freeze: drop all protocol state; keep db, vector, fail-locks as
    /// they stood (they survive in "stable storage" across the failure).
    /// In-flight coordinated transactions simply vanish with us;
    /// participants time out and announce our failure. Invoked by the
    /// managing site's `Fail` command, and by the engine itself when it
    /// learns the operational sites excluded it under its current
    /// session (a false failure detection — see `on_failure_announce`).
    pub(crate) fn step_down(&mut self, out: &mut Vec<Output>) {
        self.vector.mark_down(self.id);
        self.tracer.emit(
            None,
            EventKind::SessionChange {
                site: self.id,
                session: self.session(),
                up: false,
            },
        );
        // In-flight coordinated transactions still before the commit
        // decision abort with a report — their clients must not wait
        // forever for an answer this site can no longer produce. A
        // transaction already past the decision stays unreported (in
        // doubt): its outcome is fixed, and claiming "aborted" could
        // contradict a commit the participants already applied.
        let undecided: Vec<TxnId> = self
            .coords
            .iter()
            .filter(|(_, s)| s.phase != CoordPhase::WaitCommitAcks)
            .map(|(id, _)| *id)
            .collect();
        for id in undecided {
            let stats = self.coords.remove(&id).expect("listed above").stats;
            self.report_stepdown_abort(id, stats, out);
        }
        // Transactions that never started (waiting on locks or the
        // serial admission queue) abort the same way.
        let waiting: Vec<TxnId> = self.lock_wait_order.iter().copied().collect();
        for id in waiting {
            if self.lock_waiting.remove(&id).is_some() {
                self.report_stepdown_abort(id, TxnStats::default(), out);
            }
        }
        let queued: Vec<TxnId> = self.queued.iter().map(|t| t.id).collect();
        for id in queued {
            self.report_stepdown_abort(id, TxnStats::default(), out);
        }
        // Prepared participant entries are about to be discarded, and a
        // down site processes no timers, so the participant-timeout
        // in-doubt handling will never run for them. Their commit
        // decisions may still land elsewhere: mark our copies of their
        // write sets suspect first (and tell the peers), exactly as the
        // timeout path would. If the transaction aborted, the refresh
        // this forces is merely redundant.
        if self.config.fail_locks_enabled && !self.pending.is_empty() {
            let me = self.id;
            let mut items: Vec<ItemId> = self
                .pending
                .values()
                .flat_map(|p| p.writes.iter().map(|(item, _)| *item))
                .filter(|item| self.replication.holds(*item, me))
                .collect();
            items.sort_unstable_by_key(|i| i.0);
            items.dedup();
            if !items.is_empty() {
                self.on_set_faillocks(me, items.clone(), out);
                for peer in self.vector.operational_peers(me) {
                    self.send_unattributed(
                        peer,
                        Message::SetFailLocks {
                            site: me,
                            items: items.clone(),
                        },
                        out,
                    );
                }
            }
        }
        self.coords.clear();
        self.lock_waiting.clear();
        self.lock_wait_order.clear();
        self.queued.clear();
        self.req_owner.clear();
        self.locks = LockManager::new();
        self.held.clear();
        self.pending.clear();
        self.recent_part.clear();
        self.recovery = None;
        self.late_donors.clear();
        self.refresh = RefreshMode::Idle;
        self.standalone_copiers.clear();
    }

    fn report_stepdown_abort(&mut self, id: TxnId, stats: TxnStats, out: &mut Vec<Output>) {
        self.vote_no_if_held(id, out);
        let reason = crate::error::AbortReason::SiteNotOperational;
        self.metrics.aborts.record(reason);
        self.tracer.emit(Some(id), EventKind::Abort { reason });
        out.push(Output::Report(TxnReport {
            txn: id,
            coordinator: self.id,
            outcome: crate::messages::TxnOutcome::Aborted(reason),
            stats,
            read_results: Vec::new(),
        }));
    }

    fn handle_command(&mut self, cmd: Command, out: &mut Vec<Output>) {
        match cmd {
            Command::Fail => self.step_down(out),
            Command::Recover => self.begin_recovery(out),
            Command::Bootstrap => self.bootstrap_recovery(out),
            Command::Begin(txn) => self.begin_transaction(txn, out),
            Command::Terminate => {
                self.vector.set_record(
                    self.id,
                    crate::session::SiteRecord {
                        session: self.session(),
                        status: SiteStatus::Terminating,
                    },
                );
                self.coords.clear();
                self.lock_waiting.clear();
                self.lock_wait_order.clear();
                self.queued.clear();
                self.req_owner.clear();
                self.locks = LockManager::new();
                self.held.clear();
                self.pending.clear();
                self.recent_part.clear();
            }
        }
    }

    fn handle_message(&mut self, from: SiteId, msg: Message, out: &mut Vec<Output>) {
        match msg {
            // 2PC participant side
            Message::CopyUpdate {
                txn,
                writes,
                snapshot,
                clears,
                up_mask,
            } => self.on_copy_update(from, txn, writes, snapshot, clears, up_mask, out),
            Message::Commit { txn } => self.on_commit(from, txn, out),
            Message::AbortTxn { txn } => self.on_abort(txn),
            // 2PC coordinator side
            Message::UpdateAck { txn, ok } => self.on_update_ack(from, txn, ok, out),
            Message::CommitAck { txn } => self.on_commit_ack(from, txn, out),
            // copier traffic
            Message::CopyRequest { req, items } => self.serve_copy_request(from, req, items, out),
            Message::CopyResponse { req, ok, copies } => {
                self.on_copy_response(from, req, ok, copies, out)
            }
            Message::ClearFailLocks { site, items } => self.on_clear_faillocks(site, items, out),
            Message::SetFailLocks { site, items } => self.on_set_faillocks(site, items, out),
            // control transactions
            Message::RecoveryAnnounce {
                session,
                want_state,
            } => self.on_recovery_announce(from, session, want_state, out),
            Message::RecoveryInfo {
                vector, faillocks, ..
            } => {
                // The type-1 round already completed on the first
                // response; merge the other asked candidates' answers.
                self.on_late_recovery_info(from, vector, faillocks, out);
            }
            Message::FailureAnnounce { failed } => self.on_failure_announce(failed, out),
            // partial replication
            Message::ReadRequest { req, items } => self.serve_read_request(from, req, items, out),
            Message::ReadResponse { req, ok, values } => {
                self.on_read_response(from, req, ok, values, out)
            }
            Message::CreateBackup { item, value } => self.on_create_backup(from, item, value, out),
            Message::BackupCreated { item, site } => {
                self.replication.add_holder(item, site, true);
            }
            Message::BackupDropped { item, site } => {
                self.replication.remove_holder(item, site);
            }
            // cross-shard two-phase commit (crates/shard)
            Message::ShardPrepare { txn } => self.on_shard_prepare(from, txn, out),
            Message::ShardDecide { txn, commit } => self.on_shard_decide(txn, commit, out),
            // Votes are consumed by the top-level shard coordinator (the
            // router), never by an engine; a shard envelope is unwrapped
            // by the sharded site host before delivery. Decision-log
            // traffic is served by the site loop (the log replica lives
            // beside the engine, like metrics serving), not the engine.
            // Live-reshard map frames are likewise site-loop business:
            // the map store answers them even while the engine is down.
            Message::ShardVote { .. }
            | Message::ShardEnv { .. }
            | Message::XLogAppend { .. }
            | Message::XLogAck { .. }
            | Message::XLogQuery { .. }
            | Message::XLogReply { .. }
            | Message::XLogRetire { .. }
            | Message::MapChange { .. }
            | Message::MapChangeAck { .. }
            | Message::MapQuery
            | Message::MapReply { .. }
            | Message::WrongEpoch { .. } => {}
            // `Mgmt` is intercepted in `handle`; reports and metrics
            // scrapes are driver business
            Message::Mgmt(_)
            | Message::MgmtReport(_)
            | Message::MgmtRecovered { .. }
            | Message::MgmtDataRecovered { .. }
            | Message::MetricsRequest
            | Message::MetricsResponse { .. } => {}
            // Session-layer frames are transport business: the reliable
            // mailbox unwraps `Seq` and consumes `SeqAck` before delivery.
            // Reaching the engine means no reliable layer is installed —
            // deliver the payload as-is rather than losing it.
            Message::Seq { inner, .. } => self.handle_message(from, *inner, out),
            Message::SeqAck { .. } => {}
            // Normally unwrapped in `handle`; reached only via a `Seq`
            // payload — same treatment: register and unwrap.
            Message::Traced { trace, inner } => {
                if let Some(txn) = inner.txn_id() {
                    self.tracer.register_trace(txn, trace);
                }
                self.handle_message(from, *inner, out);
            }
        }
    }

    /// Traffic accepted while a type-1 control transaction is in flight.
    fn handle_while_recovering(&mut self, from: SiteId, msg: Message, out: &mut Vec<Output>) {
        match msg {
            Message::RecoveryInfo {
                vector,
                faillocks,
                holders,
                backups,
            } => self.on_recovery_info(from, vector, faillocks, holders, backups, out),
            Message::CopyUpdate { txn, .. } => {
                // Not ready: reject so the coordinator aborts rather than
                // committing without us (we are already marked Up in its
                // vector once it processed our announcement).
                self.send(from, Message::UpdateAck { txn, ok: false }, out);
            }
            Message::FailureAnnounce { failed } => {
                for (site, session) in failed {
                    if site != self.id {
                        self.vector.apply_failure_announcement(site, session);
                    }
                }
            }
            Message::RecoveryAnnounce {
                session,
                want_state,
            } => {
                // Another site recovering concurrently: note its session,
                // but we cannot serve state while not operational.
                let _ = want_state;
                if from != self.id {
                    self.vector.apply_recovery_announcement(from, session);
                }
            }
            _ => {}
        }
    }

    fn handle_timer(&mut self, id: TimerId, out: &mut Vec<Output>) {
        match id {
            TimerId::AckTimeout(txn) => self.on_ack_timeout(txn, out),
            TimerId::CommitAckTimeout(txn) => self.on_commit_ack_timeout(txn, out),
            TimerId::ParticipantTimeout(txn) => self.on_participant_timeout(txn, out),
            TimerId::CopierTimeout(req) => self.on_copier_timeout(req, out),
            TimerId::ReadTimeout(req) => self.on_read_timeout(req, out),
            TimerId::RecoveryInfoTimeout(attempt) => self.on_recovery_timeout(attempt, out),
            TimerId::BatchCopier => self.on_batch_copier(out),
        }
    }

    // ---- shared helpers --------------------------------------------------

    pub(crate) fn send(&mut self, to: SiteId, msg: Message, out: &mut Vec<Output>) {
        self.metrics.msgs_sent += 1;
        // With one transaction in flight (serial mode) every send is
        // attributed to it, as in the paper's measurements. In pipelined
        // mode the sender is ambiguous here; owned sends go through
        // `send_for`.
        if self.coords.len() == 1 {
            if let Some(coord) = self.coords.values_mut().next() {
                coord.stats.messages_sent += 1;
            }
        }
        out.push(Output::Send { to, msg });
    }

    /// Send a message on behalf of coordinated transaction `owner`.
    pub(crate) fn send_for(
        &mut self,
        owner: TxnId,
        to: SiteId,
        msg: Message,
        out: &mut Vec<Output>,
    ) {
        self.metrics.msgs_sent += 1;
        if let Some(coord) = self.coords.get_mut(&owner) {
            coord.stats.messages_sent += 1;
        } else if self.coords.len() == 1 {
            if let Some(coord) = self.coords.values_mut().next() {
                coord.stats.messages_sent += 1;
            }
        }
        out.push(Output::Send { to, msg });
    }

    /// Send without attributing the message to the active transaction.
    pub(crate) fn send_unattributed(&mut self, to: SiteId, msg: Message, out: &mut Vec<Output>) {
        self.metrics.msgs_sent += 1;
        out.push(Output::Send { to, msg });
    }

    pub(crate) fn fresh_req(&mut self) -> ReqId {
        let id = ReqId(self.next_req);
        self.next_req += 1;
        id
    }

    /// Protocol traffic arrived from a site our vector marks Down. Under
    /// fail-stop that cannot happen; in practice it means the sender was
    /// excluded by a timeout it never learned about (message loss or a
    /// partition made the cluster give up on it while it kept running).
    /// Tell it directly: a failure announcement naming the sender under
    /// the session we have on record. If that session is still the
    /// sender's current one it steps down and re-integrates through a
    /// type-1 recovery; if the sender has since recovered to a newer
    /// session it ignores the stale notice.
    pub(crate) fn notify_excluded_sender(&mut self, from: SiteId, out: &mut Vec<Output>) {
        let session = self.vector.session(from);
        self.send_unattributed(
            from,
            Message::FailureAnnounce {
                failed: vec![(from, session)],
            },
            out,
        );
    }

    /// Apply a committed write set locally: database writes plus
    /// commit-time fail-lock maintenance (paper §1.2).
    pub(crate) fn apply_commit(
        &mut self,
        writes: &[(ItemId, ItemValue)],
        clears: &[(ItemId, SiteId)],
        up_mask: u64,
        out: &mut Vec<Output>,
    ) -> crate::faillock::MaintainCounts {
        let mut applied = 0u32;
        let mut persisted = Vec::new();
        for (item, value) in writes {
            if self.replication.holds(*item, self.id) {
                self.hydrate(*item);
                // Version-ordered apply (versions are transaction ids):
                // identical to an unconditional write under serial
                // processing, and makes copies converge to the freshest
                // version when pipelined commits from different
                // coordinators reach sites in different orders.
                let fresher = self
                    .db
                    .put_if_fresher(item.0, *value)
                    .expect("write set item within database universe");
                if fresher && self.config.emit_persistence {
                    persisted.push((*item, *value));
                }
                applied += 1;
            }
        }
        out.push(Output::Work(Work::ApplyWrites(applied)));

        let mut counts = crate::faillock::MaintainCounts::default();
        let mut lock_words = Vec::new();
        if self.faillocks_active() {
            for (item, _) in writes {
                let mask = self.replication.holder_mask(*item);
                // Use the coordinator's operational bitmap, not our own
                // vector: the fail-lock table is replicated state, and every
                // participant of this commit must apply the identical update
                // even if membership views diverge mid-transaction.
                let c = self.faillocks.maintain_on_commit_bits(*item, up_mask, mask);
                counts.set += c.set;
                counts.cleared += c.cleared;
            }
            for (item, site) in clears {
                if self.faillocks.clear(*item, *site) {
                    counts.cleared += 1;
                }
            }
            if self.config.emit_persistence {
                for (item, _) in writes {
                    lock_words.push((*item, self.faillocks.word(*item)));
                }
                for (item, _) in clears {
                    if !lock_words.iter().any(|(i, _)| i == item) {
                        lock_words.push((*item, self.faillocks.word(*item)));
                    }
                }
            }
            out.push(Output::Work(Work::FailLockMaintain(writes.len() as u32)));
            self.metrics.faillocks_set += counts.set as u64;
            self.metrics.faillocks_cleared += counts.cleared as u64;
            if counts.set > 0 {
                self.tracer
                    .emit(None, EventKind::FailLocksSet { count: counts.set });
            }
            if counts.cleared > 0 {
                self.tracer.emit(
                    None,
                    EventKind::FailLocksCleared {
                        count: counts.cleared,
                    },
                );
            }
            // A commit reaching every healthy holder may make our backup
            // copy of an item redundant (type-3 retirement, §3.2).
            let written: Vec<ItemId> = writes.iter().map(|(item, _)| *item).collect();
            self.maybe_retire_backups(&written, out);
        }
        if !persisted.is_empty() || !lock_words.is_empty() {
            // Writes of one commit share their version (the txn id); a
            // refresh batch may mix versions — take the max for the log.
            let txn = TxnId(persisted.iter().map(|(_, v)| v.version).max().unwrap_or(0));
            out.push(Output::Persist {
                txn,
                writes: persisted,
                faillocks: lock_words,
            });
        }
        out.push(Output::Work(Work::CommitLocal));
        self.after_own_locks_changed(out);
        counts
    }

    /// Fail-lock bookkeeping is live only under the paper's ROWAA
    /// strategy (plain ROWA never creates stale copies; majority quorum
    /// masks them with version comparison).
    pub(crate) fn faillocks_active(&self) -> bool {
        self.config.fail_locks_enabled
            && self.config.strategy == crate::config::ReplicationStrategy::RowaAvailable
    }

    /// Pick the lowest-id operational site (other than us) holding an
    /// up-to-date copy of `item`.
    pub(crate) fn up_to_date_source(&self, item: ItemId) -> Option<SiteId> {
        self.replication
            .holders_of(item)
            .find(|&s| s != self.id && self.vector.is_up(s) && !self.faillocks.is_locked(item, s))
    }

    /// React to changes in our own fail-lock bits: completion of data
    /// recovery, or transition to batch copier mode (two-step recovery).
    pub(crate) fn after_own_locks_changed(&mut self, out: &mut Vec<Output>) {
        if self.refresh == RefreshMode::Idle {
            return;
        }
        let stale = self.own_stale_count();
        if stale == 0 {
            self.refresh = RefreshMode::Idle;
            out.push(Output::DataRecoveryComplete);
            return;
        }
        if let Some(two_step) = self.config.two_step_recovery {
            let frac = stale as f64 / self.config.db_size as f64;
            if frac <= two_step.threshold {
                if let RefreshMode::OnDemand = self.refresh {
                    self.refresh = RefreshMode::Batch { armed: true };
                    out.push(Output::SetTimer(TimerId::BatchCopier));
                }
            }
        }
    }
}
