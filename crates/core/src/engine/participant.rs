//! Participating-site logic: Appendix A.2 of the paper.

use crate::ids::{ItemId, SessionNumber, SiteId, TxnId};
use crate::messages::Message;
use crate::trace::EventKind;
use miniraid_storage::ItemValue;

use super::{Output, PendingTxn, SiteEngine, TimerId, Work};

impl SiteEngine {
    /// Phase one: the coordinator ships the transaction's write set.
    pub(super) fn on_copy_update(
        &mut self,
        from: SiteId,
        txn: TxnId,
        writes: Vec<(ItemId, ItemValue)>,
        snapshot: Vec<SessionNumber>,
        clears: Vec<(ItemId, SiteId)>,
        out: &mut Vec<Output>,
    ) {
        // The session-number consistency check (paper §1.1): if the
        // coordinator's view of us, or our view of the coordinator, is
        // from a different session, the system status changed during the
        // transaction — reject, forcing an abort.
        let me = self.id();
        let consistent = snapshot.len() == self.vector.len()
            && snapshot[me.index()] == self.vector.session(me)
            && snapshot[from.index()] == self.vector.session(from);
        if !consistent {
            self.send(from, Message::UpdateAck { txn, ok: false }, out);
            return;
        }
        out.push(Output::Work(Work::BufferWrites(writes.len() as u32)));
        self.metrics.txns_participated += 1;
        self.tracer.emit(
            Some(txn),
            EventKind::ParticipantPrepared { coordinator: from },
        );
        self.pending.insert(
            txn,
            PendingTxn {
                coordinator: from,
                writes,
                clears,
            },
        );
        self.send(from, Message::UpdateAck { txn, ok: true }, out);
        out.push(Output::SetTimer(TimerId::ParticipantTimeout(txn)));
    }

    /// Phase two: commit indication — apply buffered writes, run
    /// fail-lock maintenance, acknowledge.
    pub(super) fn on_commit(&mut self, from: SiteId, txn: TxnId, out: &mut Vec<Output>) {
        let Some(pending) = self.pending.remove(&txn) else {
            return; // duplicate or post-abort commit; ignore
        };
        self.tracer.emit(Some(txn), EventKind::ParticipantCommitted);
        self.apply_commit(&pending.writes, &pending.clears, out);
        let _ = from;
        self.send(pending.coordinator, Message::CommitAck { txn }, out);
    }

    /// Abort indication — discard the buffered updates.
    pub(super) fn on_abort(&mut self, txn: TxnId) {
        self.pending.remove(&txn);
    }

    /// Neither commit nor abort arrived: the coordinating site has failed
    /// (paper Appendix A.2 final branch) — discard and announce.
    pub(super) fn on_participant_timeout(&mut self, txn: TxnId, out: &mut Vec<Output>) {
        let Some(pending) = self.pending.remove(&txn) else {
            return; // resolved in time; stale timer
        };
        let coordinator = pending.coordinator;
        self.announce_failures(&[coordinator], out);
    }
}
