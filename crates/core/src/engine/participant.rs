//! Participating-site logic: Appendix A.2 of the paper.

use crate::ids::{ItemId, SessionNumber, SiteId, TxnId};
use crate::messages::Message;
use crate::trace::EventKind;
use miniraid_storage::ItemValue;

use super::{Output, PendingTxn, SiteEngine, TimerId, Work};

impl SiteEngine {
    /// Phase one: the coordinator ships the transaction's write set.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_copy_update(
        &mut self,
        from: SiteId,
        txn: TxnId,
        writes: Vec<(ItemId, ItemValue)>,
        snapshot: Vec<SessionNumber>,
        clears: Vec<(ItemId, SiteId)>,
        up_mask: u64,
        out: &mut Vec<Output>,
    ) {
        // The session-number consistency check (paper §1.1): if the
        // coordinator's view of us, or our view of the coordinator, is
        // from a different session, the system status changed during the
        // transaction — reject, forcing an abort. A coordinator we have
        // on record as Down is rejected even when the session numbers
        // match: its number never advanced because it never actually
        // crashed — it was excluded by a timeout it hasn't learned about
        // yet — and the fail-stop model requires it to step down, not
        // keep committing against a membership view the rest of the
        // system has already revoked.
        let me = self.id();
        let coordinator_up = self.vector.is_up(from);
        let consistent = coordinator_up
            && snapshot.len() == self.vector.len()
            && snapshot[me.index()] == self.vector.session(me)
            && snapshot[from.index()] == self.vector.session(from);
        if !consistent {
            self.send(from, Message::UpdateAck { txn, ok: false }, out);
            if !coordinator_up {
                self.notify_excluded_sender(from, out);
            }
            return;
        }
        // Redelivered CopyUpdate (retransmission, or duplication below the
        // reliable layer): re-ack without buffering or counting twice, and
        // push the participant timeout out again.
        if self.pending.contains_key(&txn) {
            self.send(from, Message::UpdateAck { txn, ok: true }, out);
            out.push(Output::SetTimer(TimerId::ParticipantTimeout(txn)));
            return;
        }
        // Redelivered after we already committed: the coordinator missed
        // our CommitAck, not our UpdateAck — re-acking the commit is
        // handled in `on_commit`; here just re-confirm phase one.
        if self.recent_part.iter().any(|(t, _)| *t == txn) {
            self.send(from, Message::UpdateAck { txn, ok: true }, out);
            return;
        }
        out.push(Output::Work(Work::BufferWrites(writes.len() as u32)));
        self.metrics.txns_participated += 1;
        self.tracer.emit(
            Some(txn),
            EventKind::ParticipantPrepared { coordinator: from },
        );
        self.pending.insert(
            txn,
            PendingTxn {
                coordinator: from,
                writes,
                clears,
                up_mask,
            },
        );
        self.send(from, Message::UpdateAck { txn, ok: true }, out);
        out.push(Output::SetTimer(TimerId::ParticipantTimeout(txn)));
    }

    /// Phase two: commit indication — apply buffered writes, run
    /// fail-lock maintenance, acknowledge.
    pub(super) fn on_commit(&mut self, from: SiteId, txn: TxnId, out: &mut Vec<Output>) {
        let Some(pending) = self.pending.remove(&txn) else {
            // Redelivered commit for an already-applied transaction: the
            // coordinator is retransmitting because our CommitAck was
            // lost — re-ack idempotently. Post-abort commits (impossible
            // from a correct coordinator) still fall through to ignore.
            if let Some((_, coordinator)) =
                self.recent_part.iter().find(|(t, _)| *t == txn).copied()
            {
                self.send(coordinator, Message::CommitAck { txn }, out);
            }
            return;
        };
        self.tracer.emit(Some(txn), EventKind::ParticipantCommitted);
        self.apply_commit(&pending.writes, &pending.clears, pending.up_mask, out);
        let _ = from;
        self.note_recent_participant(txn, pending.coordinator);
        self.send(pending.coordinator, Message::CommitAck { txn }, out);
    }

    /// Abort indication — discard the buffered updates.
    pub(super) fn on_abort(&mut self, txn: TxnId) {
        self.pending.remove(&txn);
    }

    /// Neither commit nor abort arrived: the coordinating site has failed
    /// (paper Appendix A.2 final branch) — discard and announce.
    ///
    /// Discarding alone is not enough: the decision may have been COMMIT.
    /// The coordinator can decide, report to its client, and crash before
    /// our Commit indication is (re)delivered — then our copies of the
    /// write set are stale with no fail-lock bit anywhere to say so. Mark
    /// our own bits on the write set and tell the survivors, so whichever
    /// way the decision went a copier or recovery refresh brings us back
    /// in line. If the transaction actually aborted, the refresh copies
    /// an identical value and clears the bits — harmless.
    pub(super) fn on_participant_timeout(&mut self, txn: TxnId, out: &mut Vec<Output>) {
        let Some(pending) = self.pending.remove(&txn) else {
            return; // resolved in time; stale timer
        };
        let coordinator = pending.coordinator;
        self.announce_failures(&[coordinator], out);
        if self.config.fail_locks_enabled {
            let me = self.id();
            let items: Vec<ItemId> = pending
                .writes
                .iter()
                .map(|(item, _)| *item)
                .filter(|item| self.replication.holds(*item, me))
                .collect();
            if !items.is_empty() {
                self.on_set_faillocks(me, items.clone(), out);
                for peer in self.vector.operational_peers(me) {
                    self.send_unattributed(
                        peer,
                        Message::SetFailLocks {
                            site: me,
                            items: items.clone(),
                        },
                        out,
                    );
                }
            }
        }
    }
}
