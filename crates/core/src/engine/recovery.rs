//! Batch copier mode — step two of the two-step recovery the paper
//! proposes in §3.2.
//!
//! "In the second step the recovering site begins to issue copier
//! transactions in a 'batch' mode. Copier transactions are generated even
//! though no transactions have arrived on the recovering site with a read
//! request for any of the remaining out-of-date copies."

use std::collections::HashMap;

use crate::ids::{ItemId, SiteId};
use crate::messages::Message;
use crate::trace::EventKind;

use super::{Output, RefreshMode, SiteEngine, TimerId};

impl SiteEngine {
    /// A batch-copier round fires: proactively refresh up to
    /// `batch_size` stale items.
    pub(super) fn on_batch_copier(&mut self, out: &mut Vec<Output>) {
        let RefreshMode::Batch { .. } = self.refresh else {
            return; // stale timer
        };
        self.refresh = RefreshMode::Batch { armed: false };
        if !self.standalone_copiers.is_empty() {
            return; // a round is already in flight
        }

        let me = self.id();
        let batch_size = self
            .config
            .two_step_recovery
            .map(|t| t.batch_size)
            .unwrap_or(0) as usize;
        let stale = self.faillocks.items_locked_for(me);

        // Group sourceable items by their refresh source.
        let mut groups: HashMap<SiteId, Vec<ItemId>> = HashMap::new();
        let mut taken = 0usize;
        for item in stale {
            if taken >= batch_size {
                break;
            }
            if let Some(src) = self.up_to_date_source(item) {
                groups.entry(src).or_default().push(item);
                taken += 1;
            }
        }

        if groups.is_empty() {
            // Stalled: nothing refreshable right now (e.g. every source
            // is down). Do not re-arm; `maybe_rearm_batch` fires when the
            // vector changes.
            return;
        }
        for (target, items) in groups {
            let req = self.fresh_req();
            self.standalone_copiers.insert(req, (target, items.clone()));
            self.metrics.copier_requests += 1;
            self.tracer.emit(None, EventKind::CopierRequest { target });
            self.send_unattributed(target, Message::CopyRequest { req, items }, out);
            out.push(Output::SetTimer(TimerId::CopierTimeout(req)));
        }
    }

    /// A standalone copier finished (successfully or not): schedule the
    /// next round if stale items remain.
    pub(super) fn continue_batch_recovery(&mut self, out: &mut Vec<Output>) {
        if !self.standalone_copiers.is_empty() {
            return; // wait for the rest of this round
        }
        match self.refresh {
            RefreshMode::Batch { armed: false } if self.own_stale_count() > 0 => {
                self.refresh = RefreshMode::Batch { armed: true };
                out.push(Output::SetTimer(TimerId::BatchCopier));
            }
            _ => {}
        }
    }

    /// The session vector changed (a site recovered): a stalled batch
    /// round may be able to make progress again.
    pub(super) fn maybe_rearm_batch(&mut self, out: &mut Vec<Output>) {
        if let RefreshMode::Batch { armed: false } = self.refresh {
            if self.standalone_copiers.is_empty() && self.own_stale_count() > 0 {
                self.refresh = RefreshMode::Batch { armed: true };
                out.push(Output::SetTimer(TimerId::BatchCopier));
            }
        }
    }
}
