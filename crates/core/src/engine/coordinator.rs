//! Coordinating-site logic: Appendix A.1 of the paper.
//!
//! The coordinator receives a database transaction from the managing
//! site, refreshes any fail-locked copies it must read (copier
//! transactions), executes reads against its own copy ("read one"),
//! then drives two-phase commit over every operational site
//! ("write all available").
//!
//! ## Pipelining
//!
//! The paper processed transactions strictly serially (assumption 2);
//! `max_inflight = 1` (the default) reproduces that. With a larger
//! window, up to `max_inflight` transactions are admitted concurrently.
//! Admission is *conservative* strict 2PL: a transaction's read and
//! write sets are predeclared ([`crate::ops::Transaction`] carries the
//! full operation list), so every lock is requested at admission —
//! exclusive for written items, shared for read-only items. A
//! transaction whose locks are all granted starts immediately; one that
//! must wait parks until the conflicting earlier transactions finish.
//! Because a transaction only ever waits for transactions admitted
//! before it (all of whose requests were issued earlier), the wait-for
//! graph is ordered by admission time and local deadlock is impossible.

use std::collections::{BTreeSet, HashMap};

use crate::config::ReplicationStrategy;
use crate::error::AbortReason;
use crate::ids::{ItemId, SiteId, TxnId};
use crate::locks::{LockMode, LockResult};
use crate::messages::{Message, TxnOutcome, TxnReport, TxnStats};
use crate::ops::Transaction;
use crate::trace::EventKind;
use miniraid_storage::ItemValue;

use super::{CoordTxn, Output, SiteEngine, TimerId, Work};

/// Phase of a coordinated transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordPhase {
    /// Refreshing fail-locked copies / fetching remote reads.
    Refresh,
    /// Phase one: waiting for update acks.
    WaitAcks,
    /// Cross-shard branch, locally prepared: every participant buffered
    /// the write set and we voted yes — parked until the top-level shard
    /// coordinator's `ShardDecide`. The local commit point has *not*
    /// been passed, so a step-down in this phase aborts (with a no vote)
    /// exactly like `WaitAcks`.
    WaitGlobalDecision,
    /// Phase two: waiting for commit acks.
    WaitCommitAcks,
}

/// Compute the predeclared lock set of a transaction into a reused
/// buffer: exclusive on written items, shared on read-only items. The
/// engine keeps one scratch buffer so admission (and every waiter
/// readiness check) allocates nothing in steady state.
fn lock_plan_into(txn: &Transaction, plan: &mut Vec<(ItemId, LockMode)>) {
    plan.clear();
    for op in &txn.ops {
        match op {
            crate::ops::Operation::Write(item, _) => plan.push((*item, LockMode::Exclusive)),
            op => plan.push((op.item(), LockMode::Shared)),
        }
    }
    // Item order, exclusive first within an item; dedup keeps the first
    // entry, so a read of a written item folds into the exclusive lock.
    plan.sort_unstable_by_key(|(item, mode)| (item.0, matches!(mode, LockMode::Shared) as u8));
    plan.dedup_by_key(|(item, _)| *item);
}

impl SiteEngine {
    /// Entry point: the managing site handed us a database transaction.
    pub(super) fn begin_transaction(&mut self, txn: Transaction, out: &mut Vec<Output>) {
        // Duplicate submissions under an in-flight id are dropped
        // silently: cross-shard re-drives re-submit a branch's write
        // residue with the original id until some coordinator confirms,
        // and a re-drive that lands where the branch is still active
        // must not start a second coordination of it.
        if self.coords.contains_key(&txn.id)
            || self.lock_waiting.contains_key(&txn.id)
            || self.queued.iter().any(|t| t.id == txn.id)
        {
            return;
        }
        if !self.is_up() {
            self.vote_no_if_held(txn.id, out);
            out.push(Output::Report(TxnReport {
                txn: txn.id,
                coordinator: self.id(),
                outcome: TxnOutcome::Aborted(AbortReason::SiteNotOperational),
                stats: TxnStats::default(),
                read_results: Vec::new(),
            }));
            return;
        }
        if self.inflight_count() >= self.config.max_inflight.max(1) {
            // No admission slot: queue behind the in-flight window
            // (serial processing, paper assumption 2, when the window
            // is 1).
            self.queued.push_back(txn);
            return;
        }
        self.admit_transaction(txn, out);
    }

    /// Coordinated transactions currently admitted (running or waiting
    /// for locks).
    pub(crate) fn inflight_count(&self) -> usize {
        self.coords.len() + self.lock_waiting.len()
    }

    /// Acquire the predeclared locks and either start the transaction or
    /// park it until earlier conflicting transactions release.
    fn admit_transaction(&mut self, txn: Transaction, out: &mut Vec<Output>) {
        let inflight = (self.inflight_count() + 1) as u64;
        self.metrics.inflight_high_water = self.metrics.inflight_high_water.max(inflight);
        self.tracer.emit(Some(txn.id), EventKind::TxnAdmit);

        let mut all_granted = true;
        let mut plan = std::mem::take(&mut self.lock_plan_scratch);
        lock_plan_into(&txn, &mut plan);
        for (item, mode) in plan.drain(..) {
            match self.locks.acquire(txn.id, item, mode) {
                LockResult::Granted => {}
                LockResult::Waiting => all_granted = false,
                LockResult::Deadlock => {
                    // Unreachable with conservative admission-ordered
                    // acquisition (waits only ever point at
                    // earlier-admitted transactions); park defensively —
                    // the blocking transactions' release wakes us.
                    debug_assert!(false, "conservative admission cannot deadlock");
                    all_granted = false;
                }
            }
        }
        self.lock_plan_scratch = plan;
        if all_granted {
            self.metrics.lock_grants_immediate += 1;
            self.start_transaction(txn, out);
        } else {
            self.metrics.lock_waits += 1;
            self.tracer.emit(Some(txn.id), EventKind::LockWait);
            self.lock_wait_order.push_back(txn.id);
            self.lock_waiting.insert(txn.id, txn);
        }
    }

    fn start_transaction(&mut self, txn: Transaction, out: &mut Vec<Output>) {
        out.push(Output::Work(Work::TxnSetup));
        self.metrics.txns_coordinated += 1;
        self.tracer.emit(Some(txn.id), EventKind::LockGrant);
        self.tracer.emit(Some(txn.id), EventKind::TxnStart);

        let id = self.id();
        let txn_id = txn.id;
        let writes: Vec<(ItemId, ItemValue)> = txn
            .write_set()
            .into_iter()
            .map(|(item, value)| (item, ItemValue::new(value, txn_id.0)))
            .collect();
        let mut stats = TxnStats {
            reads: txn.read_op_count() as u32,
            writes: writes.len() as u32,
            ..TxnStats::default()
        };

        // Strategy gates (availability ablation X6): plain ROWA blocks
        // writes unless *every* site is up; majority quorum blocks both
        // reads and writes without a majority.
        let majority = self.config.n_sites as usize / 2 + 1;
        match self.config.strategy {
            ReplicationStrategy::Rowa => {
                if !writes.is_empty() && self.vector.up_count() < self.config.n_sites as usize {
                    self.report_abort_new(txn_id, stats, AbortReason::DataUnavailable, out);
                    return;
                }
            }
            ReplicationStrategy::MajorityQuorum => {
                if self.vector.up_count() < majority {
                    self.report_abort_new(txn_id, stats, AbortReason::DataUnavailable, out);
                    return;
                }
            }
            ReplicationStrategy::RowaAvailable => {}
        }

        // Identify copies we must refresh before reading (paper: "if
        // transaction contains read operation for a fail-locked copy then
        // run copier transaction"), and reads we hold no copy of at all
        // (partial replication; ROWAA only).
        let mut stale_local: Vec<ItemId> = Vec::new();
        let mut remote: Vec<ItemId> = Vec::new();
        if self.config.strategy == ReplicationStrategy::RowaAvailable {
            for item in txn.read_items() {
                if self.replication.holds(item, id) {
                    if self.config.fail_locks_enabled && self.faillocks.is_locked(item, id) {
                        stale_local.push(item);
                    }
                } else {
                    remote.push(item);
                }
            }
        }

        // Group refresh work by source site; abort if any item has no
        // operational up-to-date copy anywhere (the paper's data
        // unavailability abort, Experiment 3 scenario 1).
        let mut copier_groups: HashMap<SiteId, Vec<ItemId>> = HashMap::new();
        for item in &stale_local {
            match self.up_to_date_source(*item) {
                Some(src) => copier_groups.entry(src).or_default().push(*item),
                None => {
                    self.report_abort_new(txn_id, stats, AbortReason::DataUnavailable, out);
                    return;
                }
            }
        }
        let mut read_groups: HashMap<SiteId, Vec<ItemId>> = HashMap::new();
        for item in &remote {
            match self.up_to_date_source(*item) {
                Some(src) => read_groups.entry(src).or_default().push(*item),
                None => {
                    self.report_abort_new(txn_id, stats, AbortReason::DataUnavailable, out);
                    return;
                }
            }
        }

        stats.copier_requests = copier_groups.len() as u32;
        self.metrics.copier_requests += copier_groups.len() as u64;

        let mut state = CoordTxn {
            txn,
            snapshot: self.vector.session_snapshot(),
            up_mask: self.vector.up_mask(),
            phase: CoordPhase::Refresh,
            participants: BTreeSet::new(),
            waiting: BTreeSet::new(),
            writes,
            pending_copiers: HashMap::new(),
            pending_reads: HashMap::new(),
            refreshed: Vec::new(),
            remote_values: HashMap::new(),
            read_results: Vec::new(),
            stats,
            phase2_failure: false,
            quorum_needed: 0,
            quorum_got: 0,
        };

        // Issue copier transactions and remote reads (ROWAA)...
        let mut sends = Vec::new();
        for (target, items) in copier_groups {
            let req = self.fresh_req();
            state.pending_copiers.insert(req, (target, items.clone()));
            self.req_owner.insert(req, txn_id);
            self.tracer
                .emit(Some(txn_id), EventKind::CopierRequest { target });
            sends.push((target, Message::CopyRequest { req, items }));
            out.push(Output::SetTimer(TimerId::CopierTimeout(req)));
        }
        for (target, items) in read_groups {
            let req = self.fresh_req();
            state.pending_reads.insert(req, (target, items.clone()));
            self.req_owner.insert(req, txn_id);
            sends.push((target, Message::ReadRequest { req, items }));
            out.push(Output::SetTimer(TimerId::ReadTimeout(req)));
        }

        // ... or a quorum read round (majority quorum): every read is
        // answered by a majority of copies; the freshest version wins.
        let read_items = state.txn.read_items();
        if self.config.strategy == ReplicationStrategy::MajorityQuorum && !read_items.is_empty() {
            // Seed with our own copies; peer responses merge over them.
            for item in &read_items {
                self.hydrate(*item);
                let own = self.db.get(item.0).expect("item in universe");
                state.remote_values.insert(*item, own);
            }
            state.quorum_needed = majority - 1;
            if state.quorum_needed > 0 {
                let peers = self.vector.operational_peers(id);
                for peer in peers {
                    let req = self.fresh_req();
                    state.pending_reads.insert(req, (peer, read_items.clone()));
                    self.req_owner.insert(req, txn_id);
                    sends.push((
                        peer,
                        Message::ReadRequest {
                            req,
                            items: read_items.clone(),
                        },
                    ));
                    out.push(Output::SetTimer(TimerId::ReadTimeout(req)));
                }
            }
        }

        let refresh_done = state.pending_copiers.is_empty() && state.pending_reads.is_empty();
        self.coords.insert(txn_id, state);
        for (to, msg) in sends {
            self.send_for(txn_id, to, msg, out);
        }
        if refresh_done {
            self.proceed_after_refresh(txn_id, out);
        }
    }

    /// Copier/remote-read phase finished: clear fail-locks at other
    /// sites, execute reads, then start phase one.
    pub(super) fn proceed_after_refresh(&mut self, txn_id: TxnId, out: &mut Vec<Output>) {
        let id = self.id();
        let Some(state) = self.coords.get_mut(&txn_id) else {
            return;
        };
        debug_assert_eq!(state.phase, CoordPhase::Refresh);

        // Fail-locks cleared by copier transactions were already
        // propagated per copy response (the paper's "special
        // transaction"); in piggyback mode they ride the CopyUpdate
        // below instead.
        let refreshed = state.refreshed.clone();

        // Execute reads: own copy for held items ("read one"), fetched
        // values for remote items. Hydrate restart-image items before
        // borrowing the transaction state (instant restart; no-op
        // otherwise).
        if self.hydration_remaining() > 0 {
            let items = self
                .coords
                .get(&txn_id)
                .expect("transaction in flight")
                .txn
                .read_items();
            for item in items {
                self.hydrate(item);
            }
        }
        let quorum = self.config.strategy == ReplicationStrategy::MajorityQuorum;
        let state = self.coords.get_mut(&txn_id).expect("transaction in flight");
        let read_items = state.txn.read_items();
        out.push(Output::Work(Work::ReadOps(read_items.len() as u32)));
        for item in read_items {
            let value = if quorum {
                // Freshest version among the read quorum (own copy was
                // seeded before the round).
                *state
                    .remote_values
                    .get(&item)
                    .expect("quorum read merged during refresh")
            } else if self.replication.holds(item, id) {
                self.db.get(item.0).expect("read item within universe")
            } else {
                *state
                    .remote_values
                    .get(&item)
                    .expect("remote read fetched during refresh")
            };
            state.read_results.push((item, value));
        }

        // Read-only transactions commit locally by default (an empty
        // write-all round is vacuous). A cross-shard branch parks
        // instead: even with nothing left to do locally, its fate is the
        // global decision's.
        if state.writes.is_empty() && !self.config.two_phase_read_only {
            if self.park_if_held(txn_id, out) {
                return;
            }
            self.finish_commit(txn_id, out);
            return;
        }

        // Phase one: copy update to every operational site (paper
        // Appendix A.1). Fail-locks are fully replicated, so all
        // operational sites participate even under partial replication.
        let participants: BTreeSet<SiteId> =
            self.vector.operational_peers(id).into_iter().collect();
        if participants.is_empty() {
            if self.park_if_held(txn_id, out) {
                return;
            }
            self.finish_commit(txn_id, out);
            return;
        }
        self.tracer.emit(
            Some(txn_id),
            EventKind::PreparePhase {
                participants: participants.len().min(u8::MAX as usize) as u8,
            },
        );
        let up_mask = self.vector.up_mask();
        let state = self.coords.get_mut(&txn_id).expect("transaction in flight");
        state.participants = participants.clone();
        state.waiting = participants.clone();
        state.phase = CoordPhase::WaitAcks;
        // Refresh the operational bitmap alongside the participant set: the
        // mask shipped in the CopyUpdate must describe exactly the view that
        // chose the participants, so every site's commit-time fail-lock
        // maintenance is identical.
        state.up_mask = up_mask;
        let writes = state.writes.clone();
        let snapshot = state.snapshot.clone();
        let clears: Vec<(ItemId, SiteId)> = if self.config.piggyback_clears {
            refreshed.iter().map(|i| (*i, id)).collect()
        } else {
            Vec::new()
        };
        for peer in participants {
            self.send_for(
                txn_id,
                peer,
                Message::CopyUpdate {
                    txn: txn_id,
                    writes: writes.clone(),
                    snapshot: snapshot.clone(),
                    clears: clears.clone(),
                    up_mask,
                },
                out,
            );
        }
        out.push(Output::SetTimer(TimerId::AckTimeout(txn_id)));
    }

    /// Phase-one acknowledgement from a participant.
    pub(super) fn on_update_ack(
        &mut self,
        from: SiteId,
        txn: TxnId,
        ok: bool,
        out: &mut Vec<Output>,
    ) {
        let Some(state) = self.coords.get_mut(&txn) else {
            return;
        };
        if state.phase != CoordPhase::WaitAcks {
            return;
        }
        self.tracer.emit(Some(txn), EventKind::Vote { from, ok });
        let state = self.coords.get_mut(&txn).expect("checked above");
        if !ok {
            // Session mismatch (or a not-yet-operational recovering site):
            // abort everywhere.
            let participants: Vec<SiteId> = state.participants.iter().copied().collect();
            for peer in participants {
                self.send_for(txn, peer, Message::AbortTxn { txn }, out);
            }
            self.report_abort_active(txn, AbortReason::SessionMismatch, out);
            return;
        }
        state.waiting.remove(&from);
        if state.waiting.is_empty() {
            // Cross-shard branch: locally prepared — park and vote yes
            // instead of committing; `ShardDecide` resumes phase two.
            if self.park_if_held(txn, out) {
                return;
            }
            // Phase two: commit indication to all participants.
            let state = self.coords.get_mut(&txn).expect("checked above");
            state.phase = CoordPhase::WaitCommitAcks;
            state.waiting = state.participants.clone();
            let participants: Vec<SiteId> = state.participants.iter().copied().collect();
            self.tracer.emit(Some(txn), EventKind::Decide);
            for peer in participants {
                self.send_for(txn, peer, Message::Commit { txn }, out);
            }
            out.push(Output::SetTimer(TimerId::CommitAckTimeout(txn)));
        }
    }

    /// Phase-two acknowledgement from a participant.
    pub(super) fn on_commit_ack(&mut self, from: SiteId, txn: TxnId, out: &mut Vec<Output>) {
        let Some(state) = self.coords.get_mut(&txn) else {
            return;
        };
        if state.phase != CoordPhase::WaitCommitAcks {
            return;
        }
        state.waiting.remove(&from);
        if state.waiting.is_empty() {
            self.finish_commit(txn, out);
        }
    }

    /// Some participant never acknowledged phase one: announce its
    /// failure and abort (paper Appendix A.1, phase-one else branch).
    pub(super) fn on_ack_timeout(&mut self, txn: TxnId, out: &mut Vec<Output>) {
        let Some(state) = self.coords.get(&txn) else {
            return;
        };
        if state.phase != CoordPhase::WaitAcks || state.waiting.is_empty() {
            return;
        }
        let failed: Vec<SiteId> = state.waiting.iter().copied().collect();
        let acked: Vec<SiteId> = state
            .participants
            .iter()
            .filter(|p| !state.waiting.contains(p))
            .copied()
            .collect();
        self.announce_failures(&failed, out);
        for peer in acked {
            self.send_for(txn, peer, Message::AbortTxn { txn }, out);
        }
        self.report_abort_active(txn, AbortReason::ParticipantFailed, out);
    }

    /// Some participant never acknowledged commit: announce the failure
    /// but still commit (paper Appendix A.1: "if commit ack not received
    /// from all participating sites then run control type 2 transaction
    /// ... commit database data items").
    pub(super) fn on_commit_ack_timeout(&mut self, txn: TxnId, out: &mut Vec<Output>) {
        let Some(state) = self.coords.get_mut(&txn) else {
            return;
        };
        if state.phase != CoordPhase::WaitCommitAcks || state.waiting.is_empty() {
            return;
        }
        state.phase2_failure = true;
        let failed: Vec<SiteId> = state.waiting.iter().copied().collect();
        // The CopyUpdate's up_mask still shows the failed sites up, so
        // commit-time maintenance would *clear* their fail-lock bits on
        // the very items they just missed. Correct our own mask before
        // finish_commit runs it (the paper sequences the type-2 control
        // transaction before the commit for this reason), and send the
        // corrective set to the participants that already committed with
        // the optimistic mask.
        let mut failed_mask = 0u64;
        for site in &failed {
            failed_mask |= 1u64 << site.0;
        }
        state.up_mask &= !failed_mask;
        let items: Vec<ItemId> = state.writes.iter().map(|(i, _)| *i).collect();
        let acked: Vec<SiteId> = state
            .participants
            .iter()
            .filter(|p| !state.waiting.contains(p))
            .copied()
            .collect();
        self.announce_failures(&failed, out);
        for peer in &acked {
            for site in &failed {
                self.send_unattributed(
                    *peer,
                    Message::SetFailLocks {
                        site: *site,
                        items: items.clone(),
                    },
                    out,
                );
            }
        }
        self.finish_commit(txn, out);
    }

    /// Commit locally and report the outcome: apply the write set, run
    /// commit-time fail-lock maintenance, surface statistics.
    pub(super) fn finish_commit(&mut self, txn_id: TxnId, out: &mut Vec<Output>) {
        let state = self.retire(txn_id).expect("transaction in flight");
        let counts = self.apply_commit(&state.writes, &[], state.up_mask, out);
        let mut stats = state.stats;
        stats.faillocks_set += counts.set;
        stats.faillocks_cleared += counts.cleared;
        stats.participant_failed_phase_two = state.phase2_failure;
        self.metrics.txns_committed += 1;
        self.tracer.emit(Some(txn_id), EventKind::Commit);
        out.push(Output::Report(TxnReport {
            txn: state.txn.id,
            coordinator: self.id(),
            outcome: TxnOutcome::Committed,
            stats,
            read_results: state.read_results,
        }));
        self.after_transaction_finished(txn_id, out);
    }

    /// Abort an in-flight transaction and report.
    pub(super) fn report_abort_active(
        &mut self,
        txn_id: TxnId,
        reason: AbortReason,
        out: &mut Vec<Output>,
    ) {
        self.vote_no_if_held(txn_id, out);
        let state = self.retire(txn_id).expect("transaction in flight");
        self.metrics.aborts.record(reason);
        self.tracer.emit(Some(txn_id), EventKind::Abort { reason });
        out.push(Output::Report(TxnReport {
            txn: state.txn.id,
            coordinator: self.id(),
            outcome: TxnOutcome::Aborted(reason),
            stats: state.stats,
            read_results: Vec::new(),
        }));
        self.after_transaction_finished(txn_id, out);
    }

    /// Abort during startup, before coordinator state was installed.
    fn report_abort_new(
        &mut self,
        txn: TxnId,
        stats: TxnStats,
        reason: AbortReason,
        out: &mut Vec<Output>,
    ) {
        self.vote_no_if_held(txn, out);
        self.metrics.aborts.record(reason);
        self.tracer.emit(Some(txn), EventKind::Abort { reason });
        out.push(Output::Report(TxnReport {
            txn,
            coordinator: self.id(),
            outcome: TxnOutcome::Aborted(reason),
            stats,
            read_results: Vec::new(),
        }));
        self.after_transaction_finished(txn, out);
    }

    /// Remove a transaction's coordinator state and its request routes.
    fn retire(&mut self, txn_id: TxnId) -> Option<CoordTxn> {
        let state = self.coords.remove(&txn_id)?;
        for req in state
            .pending_copiers
            .keys()
            .chain(state.pending_reads.keys())
        {
            self.req_owner.remove(req);
        }
        Some(state)
    }

    /// A transaction left the in-flight window: release its locks, start
    /// any waiters whose lock sets completed, and refill admission slots
    /// from the queue.
    fn after_transaction_finished(&mut self, txn_id: TxnId, out: &mut Vec<Output>) {
        self.locks.release_all(txn_id);
        self.start_ready_lock_waiters(out);
        self.fill_admission_slots(out);
    }

    /// Start lock waiters (in admission order) whose predeclared locks
    /// are now all held.
    fn start_ready_lock_waiters(&mut self, out: &mut Vec<Output>) {
        let mut i = 0;
        while i < self.lock_wait_order.len() {
            let id = self.lock_wait_order[i];
            let mut plan = std::mem::take(&mut self.lock_plan_scratch);
            let ready = match self.lock_waiting.get(&id) {
                Some(txn) => {
                    lock_plan_into(txn, &mut plan);
                    plan.iter()
                        .all(|(item, mode)| self.locks.holds(id, *item, *mode))
                }
                None => false,
            };
            self.lock_plan_scratch = plan;
            if ready {
                self.lock_wait_order.remove(i);
                let txn = self.lock_waiting.remove(&id).expect("waiter present");
                self.start_transaction(txn, out);
                // An immediate abort inside start_transaction re-enters
                // this function and may mutate the queue; rescan from the
                // front. Terminates: each start consumes one waiter.
                i = 0;
            } else {
                i += 1;
            }
        }
    }

    /// Admit queued transactions while the in-flight window has room.
    fn fill_admission_slots(&mut self, out: &mut Vec<Output>) {
        while self.inflight_count() < self.config.max_inflight.max(1) {
            let Some(txn) = self.queued.pop_front() else {
                break;
            };
            self.admit_transaction(txn, out);
        }
    }

    // ---- Cross-shard branch coordination (crates/shard) -----------------
    //
    // A multi-shard transaction is split by the shard router into one
    // branch per replication group. Each branch runs the ordinary ROWAA
    // protocol here up to the local commit point, then *parks* in
    // `CoordPhase::WaitGlobalDecision` and votes to the top-level
    // coordinator instead of committing. `ShardDecide` resumes phase two
    // (commit) or aborts the branch. The top-level coordinator plays the
    // paper's managing-site role — outside the site failure model — so
    // no timer guards the parked state: the router's own vote timeout
    // plus the participants' `ParticipantTimeout` bound every wait.

    /// `ShardPrepare`: run `txn` as a held cross-shard branch. The vote
    /// goes back to `from` (the router's local alias).
    pub(super) fn on_shard_prepare(
        &mut self,
        from: SiteId,
        txn: Transaction,
        out: &mut Vec<Output>,
    ) {
        let id = txn.id;
        if self.held.contains_key(&id)
            || self.coords.contains_key(&id)
            || self.lock_waiting.contains_key(&id)
            || self.queued.iter().any(|t| t.id == id)
        {
            return; // duplicate prepare
        }
        self.held.insert(id, from);
        self.begin_transaction(txn, out);
    }

    /// `ShardDecide`: the top-level coordinator resolved the branch.
    pub(super) fn on_shard_decide(&mut self, txn: TxnId, commit: bool, out: &mut Vec<Output>) {
        if commit {
            let parked = self
                .coords
                .get(&txn)
                .is_some_and(|s| s.phase == CoordPhase::WaitGlobalDecision);
            if !parked {
                // We never voted yes under this incarnation (stepped down
                // after voting, or the prepare never ran): the router's
                // re-drive path resubmits the branch as an ordinary
                // transaction instead.
                self.held.remove(&txn);
                return;
            }
            self.held.remove(&txn);
            let state = self.coords.get_mut(&txn).expect("parked above");
            if state.participants.is_empty() {
                self.finish_commit(txn, out);
                return;
            }
            state.phase = CoordPhase::WaitCommitAcks;
            state.waiting = state.participants.clone();
            let peers: Vec<SiteId> = state.participants.iter().copied().collect();
            self.tracer.emit(Some(txn), EventKind::Decide);
            for peer in peers {
                self.send_for(txn, peer, Message::Commit { txn }, out);
            }
            out.push(Output::SetTimer(TimerId::CommitAckTimeout(txn)));
            return;
        }
        // Global abort. The branch may be parked, still in refresh or
        // phase one (the router aborts on its vote timeout without
        // waiting for stragglers), or not yet admitted — all of which are
        // before the local commit point, so aborting is always safe.
        self.held.remove(&txn);
        if let Some(state) = self.coords.get(&txn) {
            if state.phase == CoordPhase::WaitCommitAcks {
                return; // decision already applied; never undo a commit
            }
            let peers: Vec<SiteId> = state.participants.iter().copied().collect();
            for peer in peers {
                self.send_for(txn, peer, Message::AbortTxn { txn }, out);
            }
            self.report_abort_active(txn, AbortReason::GlobalAbort, out);
            return;
        }
        if self.lock_waiting.remove(&txn).is_some() {
            self.lock_wait_order.retain(|t| *t != txn);
            self.abort_unstarted(txn, out);
            return;
        }
        if let Some(pos) = self.queued.iter().position(|t| t.id == txn) {
            self.queued.remove(pos);
            self.abort_unstarted(txn, out);
        }
    }

    /// Park a held branch at its local commit point and vote yes.
    fn park_if_held(&mut self, txn: TxnId, out: &mut Vec<Output>) -> bool {
        let Some(&home) = self.held.get(&txn) else {
            return false;
        };
        let state = self.coords.get_mut(&txn).expect("transaction in flight");
        state.phase = CoordPhase::WaitGlobalDecision;
        state.waiting.clear();
        self.send_unattributed(home, Message::ShardVote { txn, ok: true }, out);
        true
    }

    /// If `txn` is a held branch, tell the top-level coordinator it
    /// failed locally (any local abort path lands here).
    pub(super) fn vote_no_if_held(&mut self, txn: TxnId, out: &mut Vec<Output>) {
        if let Some(home) = self.held.remove(&txn) {
            self.send_unattributed(home, Message::ShardVote { txn, ok: false }, out);
        }
    }

    /// Abort a branch that was aborted globally before it even started
    /// (it sat in the lock-wait set or the admission queue).
    fn abort_unstarted(&mut self, txn: TxnId, out: &mut Vec<Output>) {
        let reason = AbortReason::GlobalAbort;
        self.metrics.aborts.record(reason);
        self.tracer.emit(Some(txn), EventKind::Abort { reason });
        out.push(Output::Report(TxnReport {
            txn,
            coordinator: self.id(),
            outcome: TxnOutcome::Aborted(reason),
            stats: TxnStats::default(),
            read_results: Vec::new(),
        }));
        self.after_transaction_finished(txn, out);
    }
}
