//! Control transactions (paper §1.1 and §3.2).
//!
//! Type 1: issued by a recovering site — announces its new session to the
//! operational sites and obtains a session vector and fail-lock table
//! from one of them. Type 2: issued by any site that determines another
//! site has failed — updates the nominal session vectors of the remaining
//! operational sites. Type 3 (proposed in §3.2, implemented here): a site
//! holding the last operational up-to-date copy of an item creates a
//! backup copy on a site holding none.

use crate::ids::{ItemId, SessionNumber, SiteId};
use crate::messages::Message;
use crate::session::{SiteRecord, SiteStatus};
use crate::trace::EventKind;
use miniraid_storage::ItemValue;

use super::{Output, RecoveryState, RefreshMode, SiteEngine, TimerId, Work};

impl SiteEngine {
    // ---- type 1: recovery ------------------------------------------------

    /// Begin a type-1 control transaction (managing site said `Recover`).
    pub(super) fn begin_recovery(&mut self, out: &mut Vec<Output>) {
        if self.status() != SiteStatus::Down {
            return; // already up or already recovering
        }
        let me = self.id();
        let session = self.session().next();
        self.vector.set_record(
            me,
            SiteRecord {
                session,
                status: SiteStatus::WaitingToRecover,
            },
        );
        self.metrics.control_type1 += 1;
        self.tracer.emit(None, EventKind::ControlTxn { ctype: 1 });

        // Candidate responders: sites we last believed operational first,
        // then the rest — our vector may be stale after our down period.
        let mut candidates: Vec<SiteId> = self.vector.operational_peers(me);
        for s in 0..self.config.n_sites {
            let site = SiteId(s);
            if site != me && !candidates.contains(&site) {
                candidates.push(site);
            }
        }

        if candidates.is_empty() {
            // Single-site system: trivially operational again.
            self.vector.set_record(
                me,
                SiteRecord {
                    session,
                    status: SiteStatus::Up,
                },
            );
            self.tracer.emit(
                None,
                EventKind::SessionChange {
                    site: me,
                    session,
                    up: true,
                },
            );
            out.push(Output::BecameOperational { session });
            self.init_data_refresh(out);
            return;
        }

        // With `recovery_cross_check`, ask EVERY candidate for state,
        // not just a designated donor. Any single responder may itself
        // be stale — a falsely excluded site does not know it was
        // excluded and will happily serve a table missing bits the real
        // operational group holds. The first response completes the
        // control transaction (latency unchanged); the rest are merged
        // in as they arrive (`on_late_recovery_info`). Without the flag,
        // only `candidates[0]` formats state — the paper's protocol and
        // its measured type-1 cost.
        let designated = candidates[0];
        let cross_check = self.config.recovery_cross_check;
        self.recovery = Some(RecoveryState {
            candidates: candidates.clone(),
            attempt: 0,
            session,
        });
        for site in candidates {
            self.send_unattributed(
                site,
                Message::RecoveryAnnounce {
                    session,
                    want_state: cross_check || site == designated,
                },
                out,
            );
        }
        out.push(Output::SetTimer(TimerId::RecoveryInfoTimeout(0)));
    }

    /// Recover without a donor (managing site said `Bootstrap`): total
    /// failure left no operational site to run a type-1 against, and the
    /// managing site certifies we were in the last operational set — our
    /// fail-lock table and session vector are as complete as any. Come up
    /// in a fresh session with every peer marked down; they rejoin via
    /// ordinary type-1 recovery with us as the donor. Items our table
    /// shows stale at us stay fail-locked until their fresh holders are
    /// back, so no stale copy is ever served.
    pub(super) fn bootstrap_recovery(&mut self, out: &mut Vec<Output>) {
        if self.is_up() {
            return;
        }
        let me = self.id();
        let session = self.session().next();
        self.recovery = None;
        for s in 0..self.config.n_sites {
            let site = SiteId(s);
            if site != me {
                self.vector.mark_down(site);
            }
        }
        self.vector.set_record(
            me,
            SiteRecord {
                session,
                status: SiteStatus::Up,
            },
        );
        self.metrics.control_type1 += 1;
        self.tracer.emit(None, EventKind::ControlTxn { ctype: 1 });
        self.tracer.emit(
            None,
            EventKind::SessionChange {
                site: me,
                session,
                up: true,
            },
        );
        out.push(Output::BecameOperational { session });
        self.init_data_refresh(out);
    }

    /// An operational site processes a recovery announcement: update the
    /// vector and, if designated, ship session vector + fail-locks.
    pub(super) fn on_recovery_announce(
        &mut self,
        from: SiteId,
        session: SessionNumber,
        want_state: bool,
        out: &mut Vec<Output>,
    ) {
        self.vector.apply_recovery_announcement(from, session);
        self.tracer.emit(
            None,
            EventKind::SessionChange {
                site: from,
                session,
                up: true,
            },
        );
        if want_state {
            // The paper measured this at 50 ms on the operational site:
            // formatting and sending session vector and fail-locks; the
            // cost grows with database size.
            self.tracer
                .emit(None, EventKind::RecoveryServe { site: from });
            out.push(Output::Work(Work::FormatRecoveryState(self.config.db_size)));
            let vector: Vec<SiteRecord> = (0..self.config.n_sites)
                .map(|s| self.vector.record(SiteId(s)))
                .collect();
            let faillocks = self.faillocks.snapshot();
            let (holders, backups) = self.replication.snapshot();
            self.send_unattributed(
                from,
                Message::RecoveryInfo {
                    vector,
                    faillocks,
                    holders,
                    backups,
                },
                out,
            );
        }
        // A newly announced recovery may unblock a stalled batch round.
        self.maybe_rearm_batch(out);
    }

    /// The recovering site installs the received state and becomes
    /// operational.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_recovery_info(
        &mut self,
        from: SiteId,
        vector: Vec<SiteRecord>,
        faillocks: Vec<u64>,
        holders: Vec<u64>,
        backups: Vec<u64>,
        out: &mut Vec<Output>,
    ) {
        let Some(recovery) = self.recovery.take() else {
            self.tracer.emit(
                None,
                EventKind::RecoveryMerge {
                    from,
                    merged: false,
                },
            );
            return; // stale (e.g. second responder after a retry)
        };
        self.tracer
            .emit(None, EventKind::RecoveryMerge { from, merged: true });
        // The remaining candidates were also asked for state; their
        // responses cross-check this one when they arrive.
        self.late_donors = recovery
            .candidates
            .iter()
            .copied()
            .filter(|&s| s != from)
            .collect();
        let me = self.id();
        out.push(Output::Work(Work::SessionInstall));
        out.push(Output::Work(Work::FailLockInstall(self.config.db_size)));

        // Adopt the donor's vector wholesale (paper §3.2): whatever we
        // believed before failing — or accumulated while partitioned away —
        // is obsolete. Only the late cross-check responses merge by
        // dominance, so a stale first responder cannot silently resurrect
        // a legitimately excluded site (see `on_late_recovery_info`).
        for (i, rec) in vector.iter().enumerate() {
            self.vector.set_record(SiteId(i as u8), *rec);
        }
        self.vector.set_record(
            me,
            SiteRecord {
                session: recovery.session,
                status: SiteStatus::Up,
            },
        );
        if self.config.fail_locks_enabled {
            // The installed snapshot replaces our (stale) table wholesale;
            // account the net bit delta so the cumulative counters keep
            // satisfying `faillocks_set − faillocks_cleared == bits set`.
            // If this responder was itself stale, the other candidates'
            // responses union the missing bits back in (see
            // `on_late_recovery_info`).
            let before = self.faillocks.total_set() as u64;
            self.faillocks.install_snapshot(&faillocks);
            let after = self.faillocks.total_set() as u64;
            if after > before {
                let delta = after - before;
                self.metrics.faillocks_set += delta;
                self.tracer.emit(
                    None,
                    EventKind::FailLocksSet {
                        count: delta.min(u32::MAX as u64) as u32,
                    },
                );
            } else if before > after {
                let delta = before - after;
                self.metrics.faillocks_cleared += delta;
                self.tracer.emit(
                    None,
                    EventKind::FailLocksCleared {
                        count: delta.min(u32::MAX as u64) as u32,
                    },
                );
            }
        }
        // The replication map is replicated state too: adopt the
        // responder's (we missed any type-3 backup creations/retirements
        // while down).
        self.replication.install_snapshot(&holders, &backups);
        self.tracer.emit(
            None,
            EventKind::SessionChange {
                site: me,
                session: recovery.session,
                up: true,
            },
        );
        out.push(Output::BecameOperational {
            session: recovery.session,
        });
        self.init_data_refresh(out);
    }

    /// A `RecoveryInfo` from one of the other candidates asked during the
    /// type-1 control transaction, arriving after the first response
    /// already completed it.
    ///
    /// The first responder is not guaranteed authoritative: it may have
    /// been falsely excluded from the operational group without knowing
    /// it, and its table may be missing fail-lock bits that protect
    /// committed writes we missed. Merging every answered snapshot makes
    /// one honest responder sufficient. Fail-locks merge by union (a
    /// spurious bit costs a redundant refresh; a lost bit loses a
    /// committed write) and the vector merges by session dominance, so
    /// in the failure-free case — identical responses — this is a no-op.
    pub(super) fn on_late_recovery_info(
        &mut self,
        from: SiteId,
        vector: Vec<SiteRecord>,
        faillocks: Vec<u64>,
        out: &mut Vec<Output>,
    ) {
        let Some(pos) = self.late_donors.iter().position(|&s| s == from) else {
            self.tracer.emit(
                None,
                EventKind::RecoveryMerge {
                    from,
                    merged: false,
                },
            );
            return; // not a response to our current recovery round
        };
        self.late_donors.swap_remove(pos);
        self.tracer
            .emit(None, EventKind::RecoveryMerge { from, merged: true });
        let me = self.id();
        let mut received = crate::session::SessionVector::new(vector.len());
        for (i, rec) in vector.iter().enumerate() {
            received.set_record(SiteId(i as u8), *rec);
        }
        self.vector.install_from(&received, me);
        if self.config.fail_locks_enabled {
            let before = self.faillocks.total_set() as u64;
            self.faillocks.union_snapshot(&faillocks);
            let after = self.faillocks.total_set() as u64;
            if after > before {
                let delta = after - before;
                self.metrics.faillocks_set += delta;
                self.tracer.emit(
                    None,
                    EventKind::FailLocksSet {
                        count: delta.min(u32::MAX as u64) as u32,
                    },
                );
                out.push(Output::Work(Work::FailLockInstall(self.config.db_size)));
            }
        }
    }

    /// No `RecoveryInfo` arrived: ask the next candidate, or give up.
    pub(super) fn on_recovery_timeout(&mut self, attempt: u32, out: &mut Vec<Output>) {
        let Some(recovery) = self.recovery.as_ref() else {
            return;
        };
        if recovery.attempt != attempt {
            return; // stale timer from an earlier attempt
        }
        let next = attempt + 1;
        if (next as usize) < recovery.candidates.len() {
            let target = recovery.candidates[next as usize];
            let session = recovery.session;
            self.recovery.as_mut().expect("recovery active").attempt = next;
            self.send_unattributed(
                target,
                Message::RecoveryAnnounce {
                    session,
                    want_state: true,
                },
                out,
            );
            out.push(Output::SetTimer(TimerId::RecoveryInfoTimeout(next)));
        } else {
            // No operational site exists to recover from. Stay down; a
            // later `Recover` command can retry.
            let me = self.id();
            let session = recovery.session;
            self.recovery = None;
            self.vector.set_record(
                me,
                SiteRecord {
                    session,
                    status: SiteStatus::Down,
                },
            );
            out.push(Output::RecoveryFailed);
        }
    }

    /// Enter the data-refresh phase after becoming operational: decide
    /// between on-demand copiers (the paper's implementation) and the
    /// two-step scheme (§3.2).
    pub(super) fn init_data_refresh(&mut self, out: &mut Vec<Output>) {
        let stale = self.own_stale_count();
        if stale == 0 {
            self.refresh = RefreshMode::Idle;
            out.push(Output::DataRecoveryComplete);
            return;
        }
        match self.config.two_step_recovery {
            Some(two_step) if (stale as f64 / self.config.db_size as f64) <= two_step.threshold => {
                self.refresh = RefreshMode::Batch { armed: true };
                out.push(Output::SetTimer(TimerId::BatchCopier));
            }
            _ => {
                self.refresh = RefreshMode::OnDemand;
            }
        }
    }

    // ---- type 2: failure announcement -------------------------------------

    /// This site determined that `failed` sites are down: update the local
    /// vector and announce to the remaining operational sites.
    pub(super) fn announce_failures(&mut self, failed: &[SiteId], out: &mut Vec<Output>) {
        let mut newly_down: Vec<(SiteId, SessionNumber)> = Vec::new();
        for site in failed {
            let session = self.vector.session(*site);
            if self.vector.mark_down(*site) {
                newly_down.push((*site, session));
            }
        }
        if newly_down.is_empty() {
            return;
        }
        out.push(Output::Work(Work::FailureUpdate(newly_down.len() as u32)));
        self.metrics.control_type2 += 1;
        self.tracer.emit(None, EventKind::ControlTxn { ctype: 2 });
        for (site, session) in &newly_down {
            self.tracer.emit(
                None,
                EventKind::SessionChange {
                    site: *site,
                    session: *session,
                    up: false,
                },
            );
        }
        let me = self.id();
        let peers = self.vector.operational_peers(me);
        for peer in peers {
            self.send_unattributed(
                peer,
                Message::FailureAnnounce {
                    failed: newly_down.clone(),
                },
                out,
            );
        }
        self.check_endangered_items(out);
    }

    /// Another site announced failures: adopt (unless our perceived
    /// session for the site is newer — it must have recovered since).
    pub(super) fn on_failure_announce(
        &mut self,
        failed: Vec<(SiteId, SessionNumber)>,
        out: &mut Vec<Output>,
    ) {
        let me = self.id();
        let mut changed = 0u32;
        for (site, session) in failed {
            if site == me {
                // The cluster excluded *us* under our current session:
                // a timeout fired somewhere while we kept running (false
                // detection under message loss, or a partition). Our
                // session is dead — no operational site will accept our
                // transactions, and every write committed without us set
                // fail-locks against our copies. Honour the fail-stop
                // model by actually stepping down; a later `Recover`
                // re-integrates us under a fresh session number. A
                // notice for an older session is stale — we already
                // recovered past it — and is ignored.
                if session == self.session() && self.is_up() {
                    self.step_down(out);
                }
                continue;
            }
            if self.vector.apply_failure_announcement(site, session) {
                changed += 1;
                self.tracer.emit(
                    None,
                    EventKind::SessionChange {
                        site,
                        session,
                        up: false,
                    },
                );
            }
        }
        if changed > 0 {
            out.push(Output::Work(Work::FailureUpdate(changed)));
            self.check_endangered_items(out);
        }
    }

    // ---- type 3: backup copies (partial replication) ----------------------

    /// After a failure, look for items whose only operational up-to-date
    /// copy is ours and create a backup copy elsewhere (paper §3.2).
    pub(super) fn check_endangered_items(&mut self, out: &mut Vec<Output>) {
        if !self.config.backup_on_last_copy || !self.is_up() {
            return;
        }
        let me = self.id();
        let mut actions: Vec<(ItemId, SiteId, ItemValue)> = Vec::new();
        for raw in 0..self.config.db_size {
            let item = ItemId(raw);
            if !self.replication.holds(item, me) || self.faillocks.is_locked(item, me) {
                continue;
            }
            let up_to_date_holders = self
                .replication
                .holders_of(item)
                .filter(|&s| self.vector.is_up(s) && !self.faillocks.is_locked(item, s))
                .count();
            if up_to_date_holders != 1 {
                continue; // not endangered (or we are not the survivor)
            }
            // Choose the lowest operational non-holder as the backup site.
            let backup = (0..self.config.n_sites)
                .map(SiteId)
                .find(|&s| self.vector.is_up(s) && !self.replication.holds(item, s));
            if let Some(backup) = backup {
                self.hydrate(item);
                let value = self.db.get(item.0).expect("item in universe");
                actions.push((item, backup, value));
            }
        }
        for (item, backup, value) in actions {
            self.metrics.control_type3 += 1;
            self.tracer.emit(None, EventKind::ControlTxn { ctype: 3 });
            self.replication.add_holder(item, backup, true);
            self.send_unattributed(backup, Message::CreateBackup { item, value }, out);
            let me = self.id();
            let peers: Vec<SiteId> = self
                .vector
                .operational_peers(me)
                .into_iter()
                .filter(|&s| s != backup)
                .collect();
            for peer in peers {
                self.send_unattributed(peer, Message::BackupCreated { item, site: backup }, out);
            }
        }
    }

    /// We were asked to host a backup copy.
    pub(super) fn on_create_backup(
        &mut self,
        _from: SiteId,
        item: ItemId,
        value: ItemValue,
        out: &mut Vec<Output>,
    ) {
        self.hydrate(item);
        self.db
            .put_if_fresher(item.0, value)
            .expect("item in universe");
        self.replication.add_holder(item, self.id(), true);
        // Our new copy is up to date by construction.
        let me = self.id();
        if self.faillocks.clear(item, me) {
            self.metrics.faillocks_cleared += 1;
            self.tracer
                .emit(None, EventKind::FailLocksCleared { count: 1 });
        }
        out.push(Output::Work(Work::ApplyWrites(1)));
    }

    /// Retire our backup copies of `items` once enough original holders
    /// are healthy again (§3.2: "the cost of removing copies ... once
    /// these additional copies were not needed any more").
    pub(super) fn maybe_retire_backups(&mut self, items: &[ItemId], out: &mut Vec<Output>) {
        if !self.config.backup_on_last_copy || !self.is_up() {
            return;
        }
        let me = self.id();
        for item in items {
            if !self.replication.is_backup(*item, me) {
                continue;
            }
            let healthy_originals = self
                .replication
                .holders_of(*item)
                .filter(|&s| {
                    s != me
                        && !self.replication.is_backup(*item, s)
                        && self.vector.is_up(s)
                        && !self.faillocks.is_locked(*item, s)
                })
                .count();
            if healthy_originals >= 2 {
                self.replication.remove_holder(*item, me);
                let peers = self.vector.operational_peers(me);
                for peer in peers {
                    self.send_unattributed(
                        peer,
                        Message::BackupDropped {
                            item: *item,
                            site: me,
                        },
                        out,
                    );
                }
            }
        }
    }
}
