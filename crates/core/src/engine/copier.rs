//! Copier transactions and fail-lock clearing (paper §1.2), plus remote
//! reads for partially replicated databases.
//!
//! "A copier transaction causes a read from a good data item on another
//! operational site and a write to the data item on the recovering site."
//! Copiers run in two contexts: on demand, before phase one of a database
//! transaction that reads a fail-locked copy (Appendix A.1), and in batch
//! mode during step two of the two-step recovery the paper proposes
//! (§3.2).

use crate::config::ReplicationStrategy;
use crate::error::AbortReason;
use crate::ids::{ItemId, ReqId, SiteId};
use crate::messages::Message;
use crate::trace::EventKind;
use miniraid_storage::ItemValue;

use crate::ids::TxnId;

use super::{CoordPhase, Output, SiteEngine, Work};

/// Log id for a refresh batch: the freshest version it carries.
fn refresh_log_txn(writes: &[(ItemId, ItemValue)]) -> TxnId {
    TxnId(writes.iter().map(|(_, v)| v.version).max().unwrap_or(0))
}

impl SiteEngine {
    /// Serve a copy request: ship up-to-date copies of the requested
    /// items. The paper measured this service cost at 25 ms.
    pub(super) fn serve_copy_request(
        &mut self,
        from: SiteId,
        req: ReqId,
        items: Vec<ItemId>,
        out: &mut Vec<Output>,
    ) {
        let me = self.id();
        // A requester our vector marks Down was excluded without knowing
        // it; refuse (its fail-lock view is stale) and tell it directly.
        if !self.vector.is_up(from) {
            self.notify_excluded_sender(from, out);
            self.send(
                from,
                Message::CopyResponse {
                    req,
                    ok: false,
                    copies: Vec::new(),
                },
                out,
            );
            return;
        }
        let mut copies = Vec::with_capacity(items.len());
        let mut ok = true;
        for item in &items {
            // We can serve only copies we hold and that are up to date.
            if self.replication.holds(*item, me) && !self.faillocks.is_locked(*item, me) {
                self.hydrate(*item);
                copies.push((*item, self.db.get(item.0).expect("item in universe")));
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            copies.clear();
        }
        out.push(Output::Work(Work::CopierService(items.len() as u32)));
        self.metrics.copy_requests_served += 1;
        self.tracer
            .emit(None, EventKind::CopierServe { site: from });
        self.send(from, Message::CopyResponse { req, ok, copies }, out);
    }

    /// A copy response arrived — for the active transaction's refresh
    /// phase, or for a standalone (batch recovery) copier.
    pub(super) fn on_copy_response(
        &mut self,
        _from: SiteId,
        req: ReqId,
        ok: bool,
        copies: Vec<(ItemId, ItemValue)>,
        out: &mut Vec<Output>,
    ) {
        // Transaction-scoped copier? Responses are routed to the owning
        // transaction (several may refresh concurrently when pipelined).
        if let Some(owner) = self.req_owner.get(&req).copied() {
            let removed = self
                .coords
                .get_mut(&owner)
                .and_then(|state| state.pending_copiers.remove(&req).map(|e| (e, state.phase)));
            if let Some(((_target, items), phase)) = removed {
                self.req_owner.remove(&req);
                if phase != CoordPhase::Refresh {
                    return; // stale response
                }
                if !ok {
                    // The source lost its up-to-date copy: the paper
                    // aborts the database transaction.
                    self.report_abort_active(owner, AbortReason::DataUnavailable, out);
                    return;
                }
                let cleared = self.apply_refresh(&copies, out);
                let state = self.coords.get_mut(&owner).expect("transaction in flight");
                state.stats.faillocks_cleared += cleared;
                state.refreshed.extend(items.iter().copied());
                // Propagate the clears for THIS refresh immediately (one
                // special transaction per copier): if a later copier of
                // the same transaction fails and aborts it, the applied
                // refresh is still real and peers must learn its
                // fail-locks are gone. (Piggyback mode instead rides the
                // eventual CopyUpdate.)
                if !self.config.piggyback_clears {
                    let me = self.id();
                    let peers = self.vector.operational_peers(me);
                    for peer in peers {
                        self.send_for(
                            owner,
                            peer,
                            Message::ClearFailLocks {
                                site: me,
                                items: items.clone(),
                            },
                            out,
                        );
                        self.metrics.clear_messages_sent += 1;
                    }
                }
                let state = self.coords.get_mut(&owner).expect("transaction in flight");
                if state.pending_copiers.is_empty() && state.pending_reads.is_empty() {
                    self.proceed_after_refresh(owner, out);
                } else {
                    self.after_own_locks_changed(out);
                }
            }
            return;
        }
        // Standalone (batch recovery) copier?
        if let Some((_target, items)) = self.standalone_copiers.remove(&req) {
            if ok {
                self.apply_refresh(&copies, out);
                // Inform the other operational sites (the "special
                // transaction" clearing fail-locks for copier refreshes).
                let me = self.id();
                let peers = self.vector.operational_peers(me);
                for peer in peers {
                    self.send(
                        peer,
                        Message::ClearFailLocks {
                            site: me,
                            items: items.clone(),
                        },
                        out,
                    );
                    self.metrics.clear_messages_sent += 1;
                }
            }
            self.continue_batch_recovery(out);
        }
    }

    /// Apply fetched copies locally and clear our own fail-locks for
    /// them. Returns the number of bits cleared.
    pub(super) fn apply_refresh(
        &mut self,
        copies: &[(ItemId, ItemValue)],
        out: &mut Vec<Output>,
    ) -> u32 {
        let me = self.id();
        let mut cleared = 0u32;
        let mut persisted = Vec::new();
        for (item, value) in copies {
            self.hydrate(*item);
            let applied = self
                .db
                .put_if_fresher(item.0, *value)
                .expect("item in universe");
            if applied && self.config().emit_persistence {
                persisted.push((*item, *value));
            }
            if self.faillocks.clear(*item, me) {
                cleared += 1;
            }
        }
        if !persisted.is_empty() {
            let txn = refresh_log_txn(&persisted);
            let faillocks = persisted
                .iter()
                .map(|(item, _)| (*item, self.faillocks().word(*item)))
                .collect();
            out.push(Output::Persist {
                txn,
                writes: persisted,
                faillocks,
            });
        }
        out.push(Output::Work(Work::ApplyWrites(copies.len() as u32)));
        out.push(Output::Work(Work::FailLockClear(cleared)));
        self.metrics.faillocks_cleared += cleared as u64;
        if cleared > 0 {
            self.tracer
                .emit(None, EventKind::FailLocksCleared { count: cleared });
        }
        self.after_own_locks_changed(out);
        cleared
    }

    /// The copier's target never answered: it has failed. Announce and —
    /// for a transaction copier — abort (paper Appendix A.1).
    pub(super) fn on_copier_timeout(&mut self, req: ReqId, out: &mut Vec<Output>) {
        if let Some(owner) = self.req_owner.get(&req).copied() {
            let removed = self
                .coords
                .get_mut(&owner)
                .and_then(|state| state.pending_copiers.remove(&req));
            if let Some((target, _items)) = removed {
                self.req_owner.remove(&req);
                self.announce_failures(&[target], out);
                self.report_abort_active(owner, AbortReason::CopierTargetFailed, out);
            }
            return;
        }
        if let Some((target, _items)) = self.standalone_copiers.remove(&req) {
            self.announce_failures(&[target], out);
            self.continue_batch_recovery(out);
        }
    }

    /// Clear fail-lock bits on behalf of `site`, which refreshed `items`
    /// via copier transactions. The paper measured this at 20 ms per site.
    pub(super) fn on_clear_faillocks(
        &mut self,
        site: SiteId,
        items: Vec<ItemId>,
        out: &mut Vec<Output>,
    ) {
        if !self.config.fail_locks_enabled {
            return;
        }
        let mut cleared = 0u32;
        for item in &items {
            if self.faillocks.clear(*item, site) {
                cleared += 1;
            }
        }
        out.push(Output::Work(Work::FailLockClear(items.len() as u32)));
        self.metrics.faillocks_cleared += cleared as u64;
        if cleared > 0 {
            self.tracer
                .emit(None, EventKind::FailLocksCleared { count: cleared });
        }
        if cleared > 0 && self.config().emit_persistence {
            let faillocks = items
                .iter()
                .map(|item| (*item, self.faillocks().word(*item)))
                .collect();
            out.push(Output::Persist {
                txn: TxnId(0),
                writes: Vec::new(),
                faillocks,
            });
        }
        if site == self.id() {
            self.after_own_locks_changed(out);
        }
        self.maybe_retire_backups(&items, out);
    }

    /// Set fail-lock bits on behalf of `site`, which a coordinator
    /// determined missed a commit after phase one (its CommitAck never
    /// arrived): our own commit-time maintenance ran with an `up_mask`
    /// still showing `site` operational and *cleared* these bits — undo
    /// that so the replicated table records the stale copies.
    pub(super) fn on_set_faillocks(
        &mut self,
        site: SiteId,
        items: Vec<ItemId>,
        out: &mut Vec<Output>,
    ) {
        if !self.config.fail_locks_enabled {
            return;
        }
        let mut set = 0u32;
        for item in &items {
            if self.replication.holds(*item, site) && self.faillocks.set(*item, site) {
                set += 1;
            }
        }
        out.push(Output::Work(Work::FailureUpdate(items.len() as u32)));
        self.metrics.faillocks_set += set as u64;
        if set > 0 {
            self.tracer
                .emit(None, EventKind::FailLocksSet { count: set });
        }
        if set > 0 && self.config().emit_persistence {
            let faillocks = items
                .iter()
                .map(|item| (*item, self.faillocks().word(*item)))
                .collect();
            out.push(Output::Persist {
                txn: TxnId(0),
                writes: Vec::new(),
                faillocks,
            });
        }
    }

    // ---- remote reads (partial replication) ---------------------------

    /// Serve a read request for items the requester holds no copy of.
    pub(super) fn serve_read_request(
        &mut self,
        from: SiteId,
        req: ReqId,
        items: Vec<ItemId>,
        out: &mut Vec<Output>,
    ) {
        let me = self.id();
        // Same exclusion notice as `serve_copy_request`: a reader our
        // vector marks Down would hand stale values to its clients.
        if !self.vector.is_up(from) {
            self.notify_excluded_sender(from, out);
            self.send(
                from,
                Message::ReadResponse {
                    req,
                    ok: false,
                    values: Vec::new(),
                },
                out,
            );
            return;
        }
        let quorum = self.config().strategy == ReplicationStrategy::MajorityQuorum;
        let mut values = Vec::with_capacity(items.len());
        let mut ok = true;
        for item in &items {
            self.hydrate(*item);
            if quorum {
                // Quorum reads want every copy's version; the merger at
                // the coordinator discards stale ones.
                values.push((*item, self.db.get(item.0).expect("item in universe")));
            } else if self.replication.holds(*item, me) && !self.faillocks.is_locked(*item, me) {
                values.push((*item, self.db.get(item.0).expect("item in universe")));
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            values.clear();
        }
        out.push(Output::Work(Work::ReadOps(items.len() as u32)));
        self.send(from, Message::ReadResponse { req, ok, values }, out);
    }

    /// A remote-read response for the active transaction: a quorum-read
    /// vote (majority quorum) or a fetched remote value (ROWAA partial
    /// replication).
    pub(super) fn on_read_response(
        &mut self,
        _from: SiteId,
        req: ReqId,
        ok: bool,
        values: Vec<(ItemId, ItemValue)>,
        out: &mut Vec<Output>,
    ) {
        let quorum = self.config().strategy == ReplicationStrategy::MajorityQuorum;
        let Some(owner) = self.req_owner.get(&req).copied() else {
            return;
        };
        let Some(state) = self.coords.get_mut(&owner) else {
            return;
        };
        let Some((_target, _items)) = state.pending_reads.remove(&req) else {
            return;
        };
        self.req_owner.remove(&req);
        if state.phase != CoordPhase::Refresh {
            return;
        }
        if quorum {
            // Merge: freshest version per item wins.
            for (item, value) in values {
                let slot = state.remote_values.entry(item).or_insert(value);
                if value.version > slot.version {
                    *slot = value;
                }
            }
            state.quorum_got += 1;
            if state.quorum_got >= state.quorum_needed {
                // Quorum reached; stragglers are ignored (stale-safe).
                let stragglers: Vec<ReqId> = state.pending_reads.drain().map(|(r, _)| r).collect();
                let copiers_done = state.pending_copiers.is_empty();
                for r in stragglers {
                    self.req_owner.remove(&r);
                }
                if copiers_done {
                    self.proceed_after_refresh(owner, out);
                }
            }
            return;
        }
        if !ok {
            self.report_abort_active(owner, AbortReason::DataUnavailable, out);
            return;
        }
        let state = self.coords.get_mut(&owner).expect("transaction in flight");
        for (item, value) in values {
            state.remote_values.insert(item, value);
        }
        if state.pending_copiers.is_empty() && state.pending_reads.is_empty() {
            self.proceed_after_refresh(owner, out);
        }
    }

    /// The remote-read target failed: announce, and abort unless a read
    /// quorum is still reachable.
    pub(super) fn on_read_timeout(&mut self, req: ReqId, out: &mut Vec<Output>) {
        let quorum = self.config().strategy == ReplicationStrategy::MajorityQuorum;
        let Some(owner) = self.req_owner.get(&req).copied() else {
            return;
        };
        let Some(state) = self.coords.get_mut(&owner) else {
            return;
        };
        let Some((target, _items)) = state.pending_reads.remove(&req) else {
            return;
        };
        self.req_owner.remove(&req);
        if quorum {
            let got = state.quorum_got;
            let needed = state.quorum_needed;
            let still_possible = got + state.pending_reads.len() >= needed;
            self.announce_failures(&[target], out);
            if !still_possible {
                self.report_abort_active(owner, AbortReason::DataUnavailable, out);
            }
            return;
        }
        self.announce_failures(&[target], out);
        self.report_abort_active(owner, AbortReason::DataUnavailable, out);
    }
}
