//! # miniraid-core — replicated copy control
//!
//! A faithful, production-quality implementation of the replicated copy
//! control protocol studied in:
//!
//! > B. Bhargava, P. Noll, D. Sabo. *An Experimental Analysis of
//! > Replicated Copy Control During Site Failure and Recovery.*
//! > Purdue CSD-TR-692 (1987) / ICDE 1988.
//!
//! The protocol keeps replicated copies consistent across site failures
//! and recoveries using four mechanisms:
//!
//! * **Session numbers** ([`ids::SessionNumber`]) identify each
//!   operational period of a site and detect status changes during a
//!   transaction's execution.
//! * **Nominal session vectors** ([`session::SessionVector`]) record each
//!   site's perceived session number and status of every other site; only
//!   sites shown operational participate in the protocol.
//! * **Fail-locks** ([`faillock::FailLockTable`]) mark copies that missed
//!   an update while their site was down, letting a recovering site
//!   distinguish up-to-date from out-of-date items and serve the former
//!   immediately.
//! * **Control transactions** ([`engine`]) propagate status changes:
//!   type 1 announces a recovery and transfers state to the recovering
//!   site, type 2 announces detected failures, and type 3 (proposed in
//!   the paper's §3.2, implemented here) creates backup copies in
//!   partially replicated databases.
//!
//! Transactions follow the **read-one/write-all-available** (ROWAA)
//! strategy with two-phase commit, exactly as in the paper's Appendix A;
//! a recovering site refreshes out-of-date copies with **copier
//! transactions**, on demand or — with
//! [`config::TwoStepRecovery`] — in proactive batches.
//!
//! The whole protocol lives in a sans-IO state machine,
//! [`engine::SiteEngine`]: drivers deliver [`engine::Input`]s and execute
//! [`engine::Output`]s. The `miniraid-sim` crate drives it under a
//! deterministic virtual clock (reproducing the paper's experiments);
//! `miniraid-cluster` drives it on real threads over real transports.
//!
//! ## Quick example
//!
//! ```
//! use miniraid_core::config::ProtocolConfig;
//! use miniraid_core::engine::{Input, Output, SiteEngine};
//! use miniraid_core::ids::{ItemId, SiteId, TxnId};
//! use miniraid_core::messages::Command;
//! use miniraid_core::ops::{Operation, Transaction};
//!
//! // A 1-site "cluster" commits locally without messages.
//! let config = ProtocolConfig { n_sites: 1, db_size: 8, ..Default::default() };
//! let mut site = SiteEngine::new(SiteId(0), config);
//! let txn = Transaction::new(TxnId(1), vec![Operation::Write(ItemId(3), 42)]);
//! let outputs = site.handle_owned(Input::Control(Command::Begin(txn)));
//! assert!(outputs.iter().any(|o| matches!(o, Output::Report(r) if r.outcome.is_committed())));
//! assert_eq!(site.db().get(3).unwrap().data, 42);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod deadlock;
pub mod engine;
pub mod error;
pub mod faillock;
pub mod ids;
pub mod locks;
pub mod messages;
pub mod metrics;
pub mod ops;
pub mod partial;
pub mod session;
pub mod trace;

pub use config::ProtocolConfig;
pub use engine::SiteEngine;
pub use ids::{ItemId, SessionNumber, SiteId, TxnId};
pub use messages::{Command, Message, TxnOutcome, TxnReport};
pub use ops::{Operation, Transaction};

/// Re-export of the storage value type used across the protocol.
pub use miniraid_storage::ItemValue;
