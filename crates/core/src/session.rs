//! Nominal session vectors (paper §1.1, §1.2).
//!
//! A *session number* identifies one continuous operational period of a
//! site. A *nominal session vector* held by site *i* records, for every
//! site, the session number *i* currently perceives and the site's
//! perceived state. Only sites the vector shows as operational participate
//! in the ROWAA protocol.

use serde::{Deserialize, Serialize};

use crate::ids::{SessionNumber, SiteId};

/// Perceived state of a site (paper §1.2: "site is up, site is down, site
/// is waiting to recover, and site is terminating").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteStatus {
    /// Operational: processing transactions.
    Up,
    /// Failed: not participating in any system action.
    Down,
    /// Running a type-1 control transaction; not yet serving transactions.
    WaitingToRecover,
    /// Shutting down permanently.
    Terminating,
}

impl SiteStatus {
    /// True only for [`SiteStatus::Up`].
    pub fn is_up(self) -> bool {
        matches!(self, SiteStatus::Up)
    }
}

/// One per-site record within a nominal session vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteRecord {
    /// Perceived session number.
    pub session: SessionNumber,
    /// Perceived status.
    pub status: SiteStatus,
}

/// A nominal session vector: one [`SiteRecord`] per site in the system.
///
/// ```
/// use miniraid_core::session::SessionVector;
/// use miniraid_core::{SessionNumber, SiteId};
///
/// let mut vector = SessionVector::new(3);
/// assert_eq!(vector.up_count(), 3);
///
/// // A type-2 control transaction marks a failed site down ...
/// vector.apply_failure_announcement(SiteId(1), SessionNumber(1));
/// assert_eq!(vector.operational_peers(SiteId(0)), vec![SiteId(2)]);
///
/// // ... and a type-1 recovery announcement brings it back in a new
/// // session; stale failure announcements are then ignored.
/// vector.apply_recovery_announcement(SiteId(1), SessionNumber(2));
/// assert!(!vector.apply_failure_announcement(SiteId(1), SessionNumber(1)));
/// assert!(vector.is_up(SiteId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionVector {
    records: Vec<SiteRecord>,
}

impl SessionVector {
    /// A fresh vector: every site up, in its first session.
    pub fn new(n_sites: usize) -> Self {
        SessionVector {
            records: vec![
                SiteRecord {
                    session: SessionNumber::FIRST,
                    status: SiteStatus::Up,
                };
                n_sites
            ],
        }
    }

    /// Number of sites covered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the vector covers no sites (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for one site.
    pub fn record(&self, site: SiteId) -> SiteRecord {
        self.records[site.index()]
    }

    /// Perceived session number of a site.
    pub fn session(&self, site: SiteId) -> SessionNumber {
        self.records[site.index()].session
    }

    /// Perceived status of a site.
    pub fn status(&self, site: SiteId) -> SiteStatus {
        self.records[site.index()].status
    }

    /// True if the vector shows `site` operational.
    pub fn is_up(&self, site: SiteId) -> bool {
        self.status(site).is_up()
    }

    /// Sites currently perceived operational, in id order.
    pub fn operational_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.status.is_up())
            .map(|(i, _)| SiteId(i as u8))
    }

    /// Sites perceived operational, excluding `me` (the 2PC participant
    /// set of a coordinating site).
    pub fn operational_peers(&self, me: SiteId) -> Vec<SiteId> {
        self.operational_sites().filter(|s| *s != me).collect()
    }

    /// Number of operational sites.
    pub fn up_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_up()).count()
    }

    /// Mark `site` down, keeping its session number (the session during
    /// which it was last seen operational). Returns true if the status
    /// actually changed.
    pub fn mark_down(&mut self, site: SiteId) -> bool {
        let rec = &mut self.records[site.index()];
        if rec.status != SiteStatus::Down {
            rec.status = SiteStatus::Down;
            true
        } else {
            false
        }
    }

    /// Process a type-2 failure announcement for `site` observed at
    /// `session`. The announcement is ignored if we already perceive a
    /// *newer* session for the site — it must have recovered since the
    /// announcer saw it fail (this is the staleness check session numbers
    /// exist for).
    pub fn apply_failure_announcement(&mut self, site: SiteId, session: SessionNumber) -> bool {
        let rec = &mut self.records[site.index()];
        if rec.session > session {
            return false;
        }
        if rec.status != SiteStatus::Down {
            rec.status = SiteStatus::Down;
            true
        } else {
            false
        }
    }

    /// Process a type-1 recovery announcement: `site` is entering
    /// `session`. Only moves forward (newer sessions win).
    pub fn apply_recovery_announcement(&mut self, site: SiteId, session: SessionNumber) -> bool {
        let rec = &mut self.records[site.index()];
        if session >= rec.session {
            rec.session = session;
            rec.status = SiteStatus::Up;
            true
        } else {
            false
        }
    }

    /// Set one record outright (used when installing state during CT1).
    pub fn set_record(&mut self, site: SiteId, record: SiteRecord) {
        self.records[site.index()] = record;
    }

    /// Merge a vector received during recovery: adopt the received record
    /// for every site whose received session is newer than ours, except
    /// `me`, whose record the recovering site owns.
    ///
    /// At an *equal* session the received record wins only if it moves
    /// the site away from `Up`: within one session the only legal
    /// transition is up → down, so "down under session s" is strictly
    /// newer knowledge than "up under session s". The reverse adoption
    /// would let a stale responder — e.g. one that was falsely excluded
    /// and does not know it — resurrect an excluded site in the
    /// recovering site's vector.
    pub fn install_from(&mut self, received: &SessionVector, me: SiteId) {
        for i in 0..self.records.len() {
            if i == me.index() {
                continue;
            }
            let (ours, theirs) = (self.records[i], received.records[i]);
            let newer = theirs.session > ours.session
                || (theirs.session == ours.session
                    && ours.status == SiteStatus::Up
                    && theirs.status != SiteStatus::Up);
            if newer {
                self.records[i] = theirs;
            }
        }
    }

    /// Snapshot of perceived session numbers, carried by transactions so
    /// participants can detect status changes mid-execution.
    pub fn session_snapshot(&self) -> Vec<SessionNumber> {
        self.records.iter().map(|r| r.session).collect()
    }

    /// Bitmap of operational sites (bit `s` = site `s` up), carried by
    /// `CopyUpdate` so all participants of a commit run the identical
    /// fail-lock maintenance regardless of their own vectors' state.
    pub fn up_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (i, r) in self.records.iter().enumerate() {
            if r.status == SiteStatus::Up {
                mask |= 1u64 << i;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vector_is_all_up_first_session() {
        let v = SessionVector::new(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.up_count(), 4);
        for i in 0..4 {
            assert_eq!(v.session(SiteId(i)), SessionNumber::FIRST);
            assert!(v.is_up(SiteId(i)));
        }
    }

    #[test]
    fn mark_down_and_peers() {
        let mut v = SessionVector::new(4);
        assert!(v.mark_down(SiteId(2)));
        assert!(!v.mark_down(SiteId(2)));
        assert_eq!(v.up_count(), 3);
        assert_eq!(v.operational_peers(SiteId(0)), vec![SiteId(1), SiteId(3)]);
        assert_eq!(
            v.operational_sites().collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(1), SiteId(3)]
        );
    }

    #[test]
    fn stale_failure_announcement_is_ignored() {
        let mut v = SessionVector::new(2);
        // Site 1 recovers into session 2.
        assert!(v.apply_recovery_announcement(SiteId(1), SessionNumber(2)));
        // An old failure announcement from session 1 must not mark it down.
        assert!(!v.apply_failure_announcement(SiteId(1), SessionNumber(1)));
        assert!(v.is_up(SiteId(1)));
        // A current one does.
        assert!(v.apply_failure_announcement(SiteId(1), SessionNumber(2)));
        assert!(!v.is_up(SiteId(1)));
    }

    #[test]
    fn stale_recovery_announcement_is_ignored() {
        let mut v = SessionVector::new(2);
        v.apply_recovery_announcement(SiteId(1), SessionNumber(5));
        assert!(!v.apply_recovery_announcement(SiteId(1), SessionNumber(3)));
        assert_eq!(v.session(SiteId(1)), SessionNumber(5));
    }

    #[test]
    fn install_from_takes_newer_records_but_preserves_self() {
        let mut mine = SessionVector::new(3);
        mine.mark_down(SiteId(1));
        mine.set_record(
            SiteId(0),
            SiteRecord {
                session: SessionNumber(7),
                status: SiteStatus::WaitingToRecover,
            },
        );
        let mut theirs = SessionVector::new(3);
        theirs.apply_recovery_announcement(SiteId(1), SessionNumber(4));
        theirs.set_record(
            SiteId(0),
            SiteRecord {
                session: SessionNumber(6),
                status: SiteStatus::Up,
            },
        );
        mine.install_from(&theirs, SiteId(0));
        // Self record untouched.
        assert_eq!(mine.session(SiteId(0)), SessionNumber(7));
        assert_eq!(mine.status(SiteId(0)), SiteStatus::WaitingToRecover);
        // Site 1 adopted (newer session).
        assert_eq!(mine.session(SiteId(1)), SessionNumber(4));
        assert!(mine.is_up(SiteId(1)));
    }

    #[test]
    fn install_from_same_session_down_dominates_up() {
        // We know site 1 was excluded under session 1; a responder that
        // still believes it is up (it may BE that falsely excluded site)
        // must not resurrect it.
        let mut mine = SessionVector::new(3);
        mine.mark_down(SiteId(1));
        let theirs = SessionVector::new(3); // all up under session 1
        mine.install_from(&theirs, SiteId(0));
        assert!(!mine.is_up(SiteId(1)), "stale responder resurrected site 1");

        // The reverse direction is real knowledge: the responder saw a
        // failure under the session we still believe is up.
        let mut mine = SessionVector::new(3);
        let mut theirs = SessionVector::new(3);
        theirs.mark_down(SiteId(2));
        mine.install_from(&theirs, SiteId(0));
        assert!(!mine.is_up(SiteId(2)), "same-session failure not adopted");
    }

    #[test]
    fn snapshot_lists_sessions_in_order() {
        let mut v = SessionVector::new(3);
        v.apply_recovery_announcement(SiteId(2), SessionNumber(9));
        assert_eq!(
            v.session_snapshot(),
            vec![SessionNumber(1), SessionNumber(1), SessionNumber(9)]
        );
    }
}
