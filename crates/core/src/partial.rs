//! Partial replication and the type-3 control transaction (paper §3.2).
//!
//! The paper's experiments use a fully replicated database, but §3.2
//! proposes: "In a partially replicated database system using the ROWAA
//! protocol, data availability could be increased by creating a control
//! transaction of type 3. Using this control transaction, a site having
//! the last up-to-date copy of a data item would create a copy on a
//! back-up site that has no copy of that data item."
//!
//! [`ReplicationMap`] tracks which sites hold a copy of each item. Copies
//! created by type-3 control transactions are flagged so they can be
//! retired ("the cost of removing copies of data items from sites once
//! these additional copies were not needed any more") when enough original
//! holders are healthy again.

use serde::{Deserialize, Serialize};

use crate::ids::{ItemId, SiteId};

/// Which sites hold a copy of each item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationMap {
    /// `holders[item] & (1 << site)` — site holds a copy of item.
    holders: Vec<u64>,
    /// Bits for copies created by type-3 control transactions (backups),
    /// eligible for retirement.
    backups: Vec<u64>,
    n_sites: u8,
}

impl ReplicationMap {
    /// Fully replicated map: every site holds every item.
    pub fn full(n_items: u32, n_sites: u8) -> Self {
        assert!(n_sites as usize <= 64);
        let all = Self::all_mask(n_sites);
        ReplicationMap {
            holders: vec![all; n_items as usize],
            backups: vec![0; n_items as usize],
            n_sites,
        }
    }

    /// Empty map (no holders); populate with [`ReplicationMap::add_holder`].
    pub fn empty(n_items: u32, n_sites: u8) -> Self {
        assert!(n_sites as usize <= 64);
        ReplicationMap {
            holders: vec![0; n_items as usize],
            backups: vec![0; n_items as usize],
            n_sites,
        }
    }

    /// A map where item `i` is held by `degree` sites starting at
    /// `i % n_sites` (round-robin placement, the usual synthetic layout).
    pub fn round_robin(n_items: u32, n_sites: u8, degree: u8) -> Self {
        let mut map = Self::empty(n_items, n_sites);
        for item in 0..n_items {
            for d in 0..degree.min(n_sites) {
                let site = ((item as u64 + d as u64) % n_sites as u64) as u8;
                map.add_holder(ItemId(item), SiteId(site), false);
            }
        }
        map
    }

    fn all_mask(n_sites: u8) -> u64 {
        if n_sites == 64 {
            u64::MAX
        } else {
            (1u64 << n_sites) - 1
        }
    }

    /// Number of items covered.
    pub fn n_items(&self) -> u32 {
        self.holders.len() as u32
    }

    /// Number of sites covered.
    pub fn n_sites(&self) -> u8 {
        self.n_sites
    }

    /// Does `site` hold a copy of `item`?
    pub fn holds(&self, item: ItemId, site: SiteId) -> bool {
        self.holders[item.index()] & (1u64 << site.0) != 0
    }

    /// Is `site`'s copy of `item` a type-3 backup?
    pub fn is_backup(&self, item: ItemId, site: SiteId) -> bool {
        self.backups[item.index()] & (1u64 << site.0) != 0
    }

    /// Holder sites of `item`, in id order.
    pub fn holders_of(&self, item: ItemId) -> impl Iterator<Item = SiteId> + '_ {
        let word = self.holders[item.index()];
        (0..self.n_sites)
            .filter(move |s| word & (1u64 << s) != 0)
            .map(SiteId)
    }

    /// Raw holder mask of `item` (bit per site).
    pub fn holder_mask(&self, item: ItemId) -> u64 {
        self.holders[item.index()]
    }

    /// Number of holders of `item`.
    pub fn degree(&self, item: ItemId) -> u32 {
        self.holders[item.index()].count_ones()
    }

    /// Register `site` as a holder of `item`. Returns true if new.
    pub fn add_holder(&mut self, item: ItemId, site: SiteId, backup: bool) -> bool {
        let mask = 1u64 << site.0;
        let was = self.holders[item.index()] & mask != 0;
        self.holders[item.index()] |= mask;
        if backup {
            self.backups[item.index()] |= mask;
        }
        !was
    }

    /// Remove `site` as a holder of `item`. Returns true if it was one.
    pub fn remove_holder(&mut self, item: ItemId, site: SiteId) -> bool {
        let mask = 1u64 << site.0;
        let was = self.holders[item.index()] & mask != 0;
        self.holders[item.index()] &= !mask;
        self.backups[item.index()] &= !mask;
        was
    }

    /// True when every site holds every item.
    pub fn is_fully_replicated(&self) -> bool {
        let all = Self::all_mask(self.n_sites);
        self.holders.iter().all(|w| *w == all)
    }

    /// Raw snapshot `(holders, backups)` — shipped to a recovering site
    /// during a type-1 control transaction (the map, like the fail-lock
    /// table, is replicated state that down sites miss updates to).
    pub fn snapshot(&self) -> (Vec<u64>, Vec<u64>) {
        (self.holders.clone(), self.backups.clone())
    }

    /// Install a snapshot received during recovery, replacing local
    /// state (the operational sites' maps are authoritative).
    pub fn install_snapshot(&mut self, holders: &[u64], backups: &[u64]) {
        assert_eq!(holders.len(), self.holders.len(), "map size mismatch");
        assert_eq!(backups.len(), self.backups.len(), "map size mismatch");
        self.holders.copy_from_slice(holders);
        self.backups.copy_from_slice(backups);
    }

    /// Items `site` holds, in id order.
    pub fn items_held_by(&self, site: SiteId) -> Vec<ItemId> {
        let mask = 1u64 << site.0;
        self.holders
            .iter()
            .enumerate()
            .filter(|(_, w)| **w & mask != 0)
            .map(|(i, _)| ItemId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_map_holds_everything() {
        let m = ReplicationMap::full(10, 4);
        assert!(m.is_fully_replicated());
        assert!(m.holds(ItemId(9), SiteId(3)));
        assert_eq!(m.degree(ItemId(0)), 4);
    }

    #[test]
    fn round_robin_layout() {
        let m = ReplicationMap::round_robin(6, 3, 2);
        assert!(!m.is_fully_replicated());
        // Item 0 held by sites 0 and 1; item 2 by sites 2 and 0.
        assert_eq!(
            m.holders_of(ItemId(0)).collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(1)]
        );
        assert!(m.holds(ItemId(2), SiteId(2)));
        assert!(m.holds(ItemId(2), SiteId(0)));
        assert!(!m.holds(ItemId(2), SiteId(1)));
        for i in 0..6 {
            assert_eq!(m.degree(ItemId(i)), 2);
        }
    }

    #[test]
    fn add_remove_holder_and_backup_flag() {
        let mut m = ReplicationMap::round_robin(4, 4, 1);
        assert!(!m.holds(ItemId(0), SiteId(2)));
        assert!(m.add_holder(ItemId(0), SiteId(2), true));
        assert!(!m.add_holder(ItemId(0), SiteId(2), true), "idempotent");
        assert!(m.holds(ItemId(0), SiteId(2)));
        assert!(m.is_backup(ItemId(0), SiteId(2)));
        assert!(!m.is_backup(ItemId(0), SiteId(0)));
        assert!(m.remove_holder(ItemId(0), SiteId(2)));
        assert!(!m.holds(ItemId(0), SiteId(2)));
        assert!(!m.is_backup(ItemId(0), SiteId(2)));
        assert!(!m.remove_holder(ItemId(0), SiteId(2)));
    }

    #[test]
    fn items_held_by_lists_in_order() {
        let m = ReplicationMap::round_robin(5, 2, 1);
        // Sites alternate: item 0 -> site 0, item 1 -> site 1, ...
        assert_eq!(
            m.items_held_by(SiteId(0)),
            vec![ItemId(0), ItemId(2), ItemId(4)]
        );
        assert_eq!(m.items_held_by(SiteId(1)), vec![ItemId(1), ItemId(3)]);
    }

    #[test]
    fn degree_clamped_to_n_sites() {
        let m = ReplicationMap::round_robin(3, 2, 5);
        assert!(m.is_fully_replicated());
    }

    #[test]
    fn retirement_distinguishes_originals_from_backups() {
        // Item 0 starts with originals at sites 0 and 1; a type-3
        // control transaction adds a backup at site 3.
        let mut m = ReplicationMap::round_robin(2, 4, 2);
        assert!(m.add_holder(ItemId(0), SiteId(3), true));
        assert_eq!(m.degree(ItemId(0)), 3, "backups count toward degree");

        // The retirement decision counts healthy *original* holders —
        // the backup bit is what separates them.
        let originals: Vec<SiteId> = m
            .holders_of(ItemId(0))
            .filter(|&s| !m.is_backup(ItemId(0), s))
            .collect();
        assert_eq!(originals, vec![SiteId(0), SiteId(1)]);

        // Retiring the backup removes the copy and its flag, leaving
        // the originals untouched.
        assert!(m.remove_holder(ItemId(0), SiteId(3)));
        assert_eq!(m.degree(ItemId(0)), 2);
        assert!(!m.is_backup(ItemId(0), SiteId(3)));
        assert_eq!(
            m.holders_of(ItemId(0)).collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(1)]
        );
    }

    #[test]
    fn retiring_one_backup_leaves_others() {
        let mut m = ReplicationMap::round_robin(1, 4, 1);
        m.add_holder(ItemId(0), SiteId(2), true);
        m.add_holder(ItemId(0), SiteId(3), true);
        assert!(m.remove_holder(ItemId(0), SiteId(3)));
        assert!(m.is_backup(ItemId(0), SiteId(2)), "site 2's backup stays");
        assert!(m.holds(ItemId(0), SiteId(2)));
        assert!(!m.holds(ItemId(0), SiteId(3)));
    }

    #[test]
    fn snapshot_preserves_backup_flags_for_recovery() {
        // A recovering site installs the operational sites' map; the
        // backup bits must survive the trip, or it could never retire
        // copies created while it was down.
        let mut m = ReplicationMap::round_robin(3, 4, 2);
        m.add_holder(ItemId(1), SiteId(3), true);
        let (holders, backups) = m.snapshot();

        let mut recovered = ReplicationMap::empty(3, 4);
        recovered.install_snapshot(&holders, &backups);
        assert_eq!(recovered, m);
        assert!(recovered.is_backup(ItemId(1), SiteId(3)));
        assert!(!recovered.is_backup(ItemId(1), SiteId(1)));

        // Retirement on the recovered map behaves identically.
        assert!(recovered.remove_holder(ItemId(1), SiteId(3)));
        assert!(!recovered.is_backup(ItemId(1), SiteId(3)));
    }

    #[test]
    fn readding_retired_backup_restarts_clean() {
        // Retire a backup, then have a later type-3 round re-create it:
        // the add must report "new" again and re-set the flag.
        let mut m = ReplicationMap::round_robin(1, 3, 1);
        m.add_holder(ItemId(0), SiteId(2), true);
        assert!(m.remove_holder(ItemId(0), SiteId(2)));
        assert!(m.add_holder(ItemId(0), SiteId(2), true), "re-add is new");
        assert!(m.is_backup(ItemId(0), SiteId(2)));
    }
}
