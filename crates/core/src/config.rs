//! Protocol configuration.
//!
//! The flags mirror the paper's experimental knobs: fail-lock maintenance
//! can be compiled out (Experiment 1 measured "with" vs. "without"),
//! clear-fail-lock information can be piggybacked on two-phase commit
//! (the optimization §2.2.3 estimates would remove ~30 % of copier
//! overhead), and recovery can run the two-step batch-copier scheme the
//! paper proposes in §3.2.

use serde::{Deserialize, Serialize};

/// Two-step recovery parameters (paper §3.2 proposal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoStepRecovery {
    /// Fraction of the database fail-locked below which the recovering
    /// site switches to batch copier mode ("step two").
    pub threshold: f64,
    /// Stale items refreshed per batch copier round.
    pub batch_size: u32,
}

impl Default for TwoStepRecovery {
    fn default() -> Self {
        TwoStepRecovery {
            threshold: 0.2,
            batch_size: 5,
        }
    }
}

/// The replicated-copy control strategy a coordinator follows.
///
/// The paper's contribution is [`ReplicationStrategy::RowaAvailable`];
/// the other two are the classic baselines it is measured against in
/// this repository's availability ablation (X6): plain
/// read-one/write-*all* (blocks whenever any site is down, but needs no
/// fail-locks or copiers) and majority quorum (partition-safe, but pays
/// quorum reads and loses minority-side availability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationStrategy {
    /// Read-one/write-all-available with session vectors, fail-locks,
    /// copier and control transactions (the paper's protocol).
    RowaAvailable,
    /// Read-one/write-all: a transaction with writes aborts unless every
    /// site in the system is operational.
    Rowa,
    /// Majority quorum: writes require a majority of sites operational
    /// (and reach all of them); reads consult a majority of copies and
    /// take the freshest version, so no fail-locks are needed.
    MajorityQuorum,
}

/// Static configuration of one site's protocol engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Number of data items in the (frequently referenced) database.
    pub db_size: u32,
    /// Number of database sites (excluding the managing site).
    pub n_sites: u8,
    /// Maintain fail-locks at commit time. Disabling reproduces the
    /// "without fail-locks code" rows of Experiment 1; recovery then
    /// cannot identify stale copies, so only use it in failure-free runs.
    pub fail_locks_enabled: bool,
    /// Embed fail-lock clearing information in the two-phase commit
    /// messages instead of running standalone clear-fail-lock
    /// transactions after each copier (paper §2.2.3's suggested
    /// optimization; ablation X2).
    pub piggyback_clears: bool,
    /// Two-step recovery (paper §3.2). `None` reproduces the paper's
    /// implementation: copiers are issued on demand only.
    pub two_step_recovery: Option<TwoStepRecovery>,
    /// Run read-only transactions through two-phase commit as well.
    /// The paper's pseudo-code always runs the protocol; with an empty
    /// write set the commit is vacuous, so the default commits read-only
    /// transactions locally.
    pub two_phase_read_only: bool,
    /// Issue type-3 control transactions (paper §3.2): when a site finds
    /// it holds the last operational up-to-date copy of an item, it
    /// creates a backup copy on a site that holds none. Only meaningful
    /// with a partially replicated database.
    pub backup_on_last_copy: bool,
    /// Emit [`crate::engine::Output::Persist`] for every locally applied
    /// write set, letting the driver maintain a durable store. Off by
    /// default (the paper keeps copies in memory and factors I/O out).
    pub emit_persistence: bool,
    /// The copy-control strategy (default: the paper's ROWAA).
    pub strategy: ReplicationStrategy,
    /// Maximum coordinated transactions this site runs concurrently.
    /// `1` (the default) reproduces the paper's serial processing
    /// (assumption 2) exactly; larger values pipeline independent
    /// transactions, serializing conflicting ones through a conservative
    /// strict-2PL lock manager whose read/write sets are predeclared at
    /// admission.
    pub max_inflight: usize,
    /// During a type-1 control transaction, request state from EVERY
    /// operational candidate and merge the late responses into the first
    /// (fail-locks by union, session vector by dominance), instead of
    /// the paper's single designated donor. One honest responder then
    /// suffices even if the first responder was itself falsely excluded
    /// and serving a stale table. On (the default) everywhere except the
    /// paper-reproduction scenarios, whose measured type-1 cost assumes
    /// a single responder formats state.
    pub recovery_cross_check: bool,
    /// Group-commit batch size: the durable site loop fsyncs its REDO
    /// log as soon as this many commit records await one (`1` reproduces
    /// one-fsync-per-commit). Only meaningful with `emit_persistence`;
    /// commits from all pipelined in-flight transactions share the sync.
    #[serde(default = "default_group_commit_batch")]
    pub group_commit_batch: u32,
    /// Group-commit linger: maximum microseconds a commit record may
    /// wait for companions before the site loop fsyncs a partial batch.
    /// `0` syncs at the end of every event-loop drain.
    #[serde(default = "default_group_commit_linger_us")]
    pub group_commit_linger_us: u64,
    /// Cross-shard 2PC: how long the top-level coordinator (the sharded
    /// client) waits for branch votes before counting stragglers as no,
    /// in milliseconds. Must stay below the engines' participant
    /// timeout, so a parked branch's participants never declare its
    /// coordinator failed while the global decision is still pending
    /// under healthy links.
    #[serde(default = "default_shard_vote_timeout_ms")]
    pub shard_vote_timeout_ms: u64,
    /// Cross-shard 2PC: interval between re-drive rounds for
    /// committed-but-unconfirmed branches, in milliseconds. Longer than
    /// a healthy commit round-trip, so re-drives only fire when
    /// something actually failed.
    #[serde(default = "default_shard_redrive_interval_ms")]
    pub shard_redrive_interval_ms: u64,
}

fn default_group_commit_batch() -> u32 {
    8
}

fn default_group_commit_linger_us() -> u64 {
    150
}

fn default_shard_vote_timeout_ms() -> u64 {
    400
}

fn default_shard_redrive_interval_ms() -> u64 {
    700
}

impl ProtocolConfig {
    /// The configuration of the paper's Experiment 1 (db = 50 items,
    /// 4 sites); transaction size is a workload property, not an engine one.
    pub fn paper_experiment_1() -> Self {
        ProtocolConfig {
            db_size: 50,
            n_sites: 4,
            ..ProtocolConfig::default()
        }
    }

    /// The configuration of Experiments 2 and 3 scenario 1 (db = 50,
    /// 2 sites).
    pub fn paper_two_sites() -> Self {
        ProtocolConfig {
            db_size: 50,
            n_sites: 2,
            ..ProtocolConfig::default()
        }
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            db_size: 50,
            n_sites: 4,
            fail_locks_enabled: true,
            piggyback_clears: false,
            two_step_recovery: None,
            two_phase_read_only: false,
            backup_on_last_copy: false,
            emit_persistence: false,
            strategy: ReplicationStrategy::RowaAvailable,
            max_inflight: 1,
            recovery_cross_check: true,
            group_commit_batch: default_group_commit_batch(),
            group_commit_linger_us: default_group_commit_linger_us(),
            shard_vote_timeout_ms: default_shard_vote_timeout_ms(),
            shard_redrive_interval_ms: default_shard_redrive_interval_ms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_implementation_choices() {
        let c = ProtocolConfig::default();
        assert!(c.fail_locks_enabled);
        assert!(
            !c.piggyback_clears,
            "paper ran standalone clear transactions"
        );
        assert!(
            c.two_step_recovery.is_none(),
            "paper used on-demand copiers only"
        );
        assert_eq!(c.max_inflight, 1, "paper processed transactions serially");
    }

    #[test]
    fn shard_timer_defaults_respect_participant_timeout() {
        let c = ProtocolConfig::default();
        assert_eq!(c.shard_vote_timeout_ms, 400);
        assert_eq!(c.shard_redrive_interval_ms, 700);
        assert!(
            c.shard_vote_timeout_ms < 500,
            "vote timeout must undercut the 500 ms participant timeout"
        );
        assert!(c.shard_redrive_interval_ms > c.shard_vote_timeout_ms);
    }

    #[test]
    fn default_strategy_is_the_papers() {
        assert_eq!(
            ProtocolConfig::default().strategy,
            ReplicationStrategy::RowaAvailable
        );
    }

    #[test]
    fn paper_presets() {
        assert_eq!(ProtocolConfig::paper_experiment_1().n_sites, 4);
        assert_eq!(ProtocolConfig::paper_two_sites().n_sites, 2);
        assert_eq!(ProtocolConfig::paper_two_sites().db_size, 50);
    }
}
