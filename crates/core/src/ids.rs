//! Strongly-typed identifiers used throughout the protocol.

use serde::{Deserialize, Serialize};

/// Identifier of a database site. The paper's systems have 2 or 4 sites;
/// the fail-lock bitmap representation supports up to 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u8);

impl SiteId {
    /// Index into per-site arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site {}", self.0)
    }
}

/// Identifier of a logical data item (dense, `0..database_size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Index into per-item arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Globally unique, monotonically increasing transaction identifier,
/// assigned by the managing site. Doubles as the version stamp of the
/// values the transaction writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A session number identifies one continuous period during which a site
/// is operational (paper §1.1). It is incremented each time the site
/// initiates recovery, so comparing session numbers detects status changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionNumber(pub u64);

impl SessionNumber {
    /// The session every site starts in.
    pub const FIRST: SessionNumber = SessionNumber(1);

    /// The next session (used when a site begins recovery).
    pub fn next(self) -> SessionNumber {
        SessionNumber(self.0 + 1)
    }
}

impl std::fmt::Display for SessionNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier for an in-flight copy request (copier transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_numbers_advance() {
        assert_eq!(SessionNumber::FIRST.next(), SessionNumber(2));
        assert!(SessionNumber(3) > SessionNumber(2));
    }

    #[test]
    fn ids_order_and_display() {
        assert!(SiteId(0) < SiteId(1));
        assert_eq!(SiteId(2).to_string(), "site 2");
        assert_eq!(ItemId(7).to_string(), "x7");
        assert_eq!(TxnId(12).to_string(), "T12");
        assert_eq!(SessionNumber(4).to_string(), "s4");
        assert_eq!(ItemId(3).index(), 3);
        assert_eq!(SiteId(3).index(), 3);
    }
}
