//! Strict two-phase locking.
//!
//! The paper factored concurrency control out of its measurements
//! (assumption 2: transactions processed serially) but names it as the
//! next integration step. This lock manager provides shared/exclusive
//! item locks with FIFO queuing, lock upgrades, and deadlock handling via
//! wait-for-graph cycle detection (the requester whose wait would close a
//! cycle is chosen as the victim).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::deadlock::WaitForGraph;
use crate::ids::{ItemId, TxnId};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared locks.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

/// Outcome of an acquire request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockResult {
    /// The lock is held; proceed.
    Granted,
    /// Enqueued; the transaction must block until granted.
    Waiting,
    /// Granting would deadlock; the requester must abort.
    Deadlock,
}

#[derive(Debug)]
struct WaitEntry {
    txn: TxnId,
    mode: LockMode,
}

#[derive(Debug, Default)]
struct ItemLock {
    /// Current holders. Multiple ⇒ all shared; single may be either mode.
    holders: HashMap<TxnId, LockMode>,
    queue: VecDeque<WaitEntry>,
}

impl ItemLock {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|t| *t == txn),
        }
    }
}

/// A strict-2PL lock manager over the item universe.
///
/// ```
/// use miniraid_core::ids::{ItemId, TxnId};
/// use miniraid_core::locks::{LockManager, LockMode, LockResult};
///
/// let mut lm = LockManager::new();
/// assert_eq!(lm.acquire(TxnId(1), ItemId(0), LockMode::Exclusive), LockResult::Granted);
/// assert_eq!(lm.acquire(TxnId(2), ItemId(0), LockMode::Shared), LockResult::Waiting);
/// // Commit of T1 wakes the queued request.
/// assert_eq!(lm.release_all(TxnId(1)), vec![TxnId(2)]);
/// assert!(lm.holds(TxnId(2), ItemId(0), LockMode::Shared));
/// ```
#[derive(Debug, Default)]
pub struct LockManager {
    items: HashMap<ItemId, ItemLock>,
    /// Items each transaction holds or waits on (for release).
    footprint: HashMap<TxnId, HashSet<ItemId>>,
    waits: WaitForGraph,
}

impl LockManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `mode` on `item` for `txn`.
    pub fn acquire(&mut self, txn: TxnId, item: ItemId, mode: LockMode) -> LockResult {
        let lock = self.items.entry(item).or_default();

        // Re-entrant / upgrade handling.
        if let Some(held) = lock.holders.get(&txn).copied() {
            if held == LockMode::Exclusive || mode == LockMode::Shared {
                return LockResult::Granted;
            }
            // Shared -> Exclusive upgrade.
            if lock.holders.len() == 1 {
                lock.holders.insert(txn, LockMode::Exclusive);
                return LockResult::Granted;
            }
        }

        if lock.queue.is_empty() && lock.compatible(txn, mode) {
            lock.holders.insert(txn, mode);
            self.footprint.entry(txn).or_default().insert(item);
            return LockResult::Granted;
        }

        // Would wait: check for a deadlock first. We wait on every current
        // holder (except ourselves) and on earlier queued requests.
        let blockers: Vec<TxnId> = lock
            .holders
            .keys()
            .copied()
            .filter(|t| *t != txn)
            .chain(lock.queue.iter().map(|e| e.txn))
            .collect();
        if self.waits.would_cycle(txn, &blockers) {
            return LockResult::Deadlock;
        }
        for b in &blockers {
            self.waits.add_edge(txn, *b);
        }
        lock.queue.push_back(WaitEntry { txn, mode });
        self.footprint.entry(txn).or_default().insert(item);
        LockResult::Waiting
    }

    /// Release everything `txn` holds or waits for (commit or abort under
    /// strict 2PL). Returns the transactions whose queued requests became
    /// granted and are now runnable.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut woken = Vec::new();
        let items = self.footprint.remove(&txn).unwrap_or_default();
        for item in items {
            let Some(lock) = self.items.get_mut(&item) else {
                continue;
            };
            lock.holders.remove(&txn);
            lock.queue.retain(|e| e.txn != txn);
            // Grant from the queue head while compatible.
            while let Some(head) = lock.queue.front() {
                if lock.compatible(head.txn, head.mode) {
                    let entry = lock.queue.pop_front().expect("head exists");
                    lock.holders.insert(entry.txn, entry.mode);
                    self.waits.remove_waiter(entry.txn);
                    woken.push(entry.txn);
                } else {
                    break;
                }
            }
            if lock.holders.is_empty() && lock.queue.is_empty() {
                self.items.remove(&item);
            }
        }
        self.waits.remove_txn(txn);
        woken.sort_unstable();
        woken.dedup();
        woken
    }

    /// Does `txn` currently hold `item` in at least `mode`?
    pub fn holds(&self, txn: TxnId, item: ItemId, mode: LockMode) -> bool {
        self.items
            .get(&item)
            .and_then(|l| l.holders.get(&txn))
            .map(|held| *held == LockMode::Exclusive || mode == LockMode::Shared)
            .unwrap_or(false)
    }

    /// Number of items with any lock state (for tests/diagnostics).
    pub fn locked_items(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: LockMode = LockMode::Exclusive;
    const S: LockMode = LockMode::Shared;

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(TxnId(1), ItemId(0), S), LockResult::Granted);
        assert_eq!(lm.acquire(TxnId(2), ItemId(0), S), LockResult::Granted);
        assert_eq!(lm.acquire(TxnId(3), ItemId(0), X), LockResult::Waiting);
        assert!(lm.holds(TxnId(1), ItemId(0), S));
        assert!(!lm.holds(TxnId(3), ItemId(0), X));
    }

    #[test]
    fn release_grants_queued_requests_fifo() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), ItemId(0), X);
        assert_eq!(lm.acquire(TxnId(2), ItemId(0), X), LockResult::Waiting);
        assert_eq!(lm.acquire(TxnId(3), ItemId(0), S), LockResult::Waiting);
        let woken = lm.release_all(TxnId(1));
        assert_eq!(woken, vec![TxnId(2)], "exclusive head granted alone");
        assert!(lm.holds(TxnId(2), ItemId(0), X));
        let woken = lm.release_all(TxnId(2));
        assert_eq!(woken, vec![TxnId(3)]);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(TxnId(1), ItemId(0), S), LockResult::Granted);
        assert_eq!(lm.acquire(TxnId(1), ItemId(0), S), LockResult::Granted);
        // Sole holder: upgrade succeeds.
        assert_eq!(lm.acquire(TxnId(1), ItemId(0), X), LockResult::Granted);
        assert!(lm.holds(TxnId(1), ItemId(0), X));
        // Exclusive holder re-requesting shared is fine.
        assert_eq!(lm.acquire(TxnId(1), ItemId(0), S), LockResult::Granted);
    }

    #[test]
    fn two_txn_deadlock_is_detected() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), ItemId(0), X);
        lm.acquire(TxnId(2), ItemId(1), X);
        assert_eq!(lm.acquire(TxnId(1), ItemId(1), X), LockResult::Waiting);
        assert_eq!(lm.acquire(TxnId(2), ItemId(0), X), LockResult::Deadlock);
        // Victim aborts; survivor proceeds.
        let woken = lm.release_all(TxnId(2));
        assert_eq!(woken, vec![TxnId(1)]);
        assert!(lm.holds(TxnId(1), ItemId(1), X));
    }

    #[test]
    fn three_txn_cycle_is_detected() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), ItemId(0), X);
        lm.acquire(TxnId(2), ItemId(1), X);
        lm.acquire(TxnId(3), ItemId(2), X);
        assert_eq!(lm.acquire(TxnId(1), ItemId(1), X), LockResult::Waiting);
        assert_eq!(lm.acquire(TxnId(2), ItemId(2), X), LockResult::Waiting);
        assert_eq!(lm.acquire(TxnId(3), ItemId(0), X), LockResult::Deadlock);
    }

    #[test]
    fn state_is_cleaned_up_after_release() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), ItemId(0), X);
        lm.acquire(TxnId(1), ItemId(1), S);
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_items(), 0);
    }
}
