//! Structured protocol tracing: typed events emitted by the engine.
//!
//! The paper's contribution is *experimental analysis* — it measures
//! fail-lock accumulation, copier work, and per-transaction commit
//! behaviour across failure/recovery schedules. Cumulative counters
//! ([`crate::metrics::EngineMetrics`]) cannot answer questions like
//! "which 2PC phase stalls during recovery?", so the engine additionally
//! emits a stream of typed [`TraceEvent`]s at every protocol milestone.
//!
//! The engine stays sans-IO: it holds a [`Tracer`] handle whose clock
//! and sink are both injected by the driver. The simulator injects a
//! virtual clock (traces are bit-deterministic across runs); the
//! threaded cluster injects the system clock. The default tracer is
//! disabled — a single branch on an `Option` — so untraced deployments
//! pay essentially nothing.
//!
//! Sinks (ring buffers, JSONL writers, histogram hubs) live in the
//! `miniraid-obs` crate; only the minimal emission contract lives here
//! so the engine crate has no new dependencies.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::AbortReason;
use crate::ids::{SessionNumber, SiteId, TxnId};

/// A globally unique causal trace identifier assigned to a
/// client-submitted transaction when it enters the system. Zero means
/// "no trace": untraced deployments never allocate one, and a
/// [`TraceEvent`] with `trace == 0` serializes without the field, so
/// tracing-off output is bit-identical to the pre-trace-id format.
pub type TraceId = u64;

/// Deterministic [`TraceId`] allocator: the high 16 bits identify the
/// origin (a client or managing process), the low 48 bits count
/// submissions. Under the simulator the origin is fixed, so trace ids —
/// like everything else — are a pure function of the schedule.
#[derive(Debug, Clone)]
pub struct TraceIdGen {
    origin: u64,
    next: u64,
}

impl TraceIdGen {
    /// An allocator for `origin` (only the low 16 bits are used).
    pub fn new(origin: u64) -> Self {
        TraceIdGen {
            origin: origin & 0xFFFF,
            next: 1,
        }
    }

    /// Allocate the next trace id (never zero).
    pub fn next_id(&mut self) -> TraceId {
        let id = (self.origin << 48) | (self.next & 0xFFFF_FFFF_FFFF);
        self.next += 1;
        if id == 0 {
            self.next_id()
        } else {
            id
        }
    }
}

/// A point in time as seen by the injected [`TraceClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stamp {
    /// Strictly increasing per-clock sequence number: a total order over
    /// the events of one site even when wall time ties.
    pub logical: u64,
    /// Wall-clock microseconds. Virtual time under the simulator
    /// (deterministic); microseconds since the UNIX epoch on a live
    /// cluster.
    pub wall_micros: u64,
}

/// Source of [`Stamp`]s, injected by the driver.
pub trait TraceClock: Send + Sync {
    /// Produce the stamp for an event being emitted now.
    fn stamp(&self) -> Stamp;
}

/// A [`TraceClock`] whose wall reading is set manually by the driver —
/// the simulator points it at virtual time before each engine step, so
/// traces are identical across runs of the same seed.
#[derive(Debug, Default)]
pub struct ManualClock {
    wall: AtomicU64,
    seq: AtomicU64,
}

impl ManualClock {
    /// A clock starting at wall reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the wall reading (virtual microseconds) for subsequent stamps.
    pub fn set_wall(&self, micros: u64) {
        self.wall.store(micros, Ordering::Relaxed);
    }
}

impl TraceClock for ManualClock {
    fn stamp(&self) -> Stamp {
        Stamp {
            logical: self.seq.fetch_add(1, Ordering::Relaxed),
            wall_micros: self.wall.load(Ordering::Relaxed),
        }
    }
}

/// A [`TraceClock`] reading the real system clock (microseconds since
/// the UNIX epoch), for threaded cluster deployments.
#[derive(Debug, Default)]
pub struct SystemClock {
    seq: AtomicU64,
}

impl SystemClock {
    /// A fresh system clock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceClock for SystemClock {
    fn stamp(&self) -> Stamp {
        let wall_micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Stamp {
            logical: self.seq.fetch_add(1, Ordering::Relaxed),
            wall_micros,
        }
    }
}

/// What happened. Every variant has a fixed-size payload so
/// [`TraceEvent`] is `Copy` and fits a lock-free ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction entered the in-flight window (predeclared lock
    /// acquisition begins).
    TxnAdmit,
    /// Admission found a predeclared lock held by an earlier in-flight
    /// transaction; the transaction parks.
    LockWait,
    /// Every predeclared lock is held; execution begins.
    LockGrant,
    /// Coordinator setup complete (counted in `txns_coordinated`).
    TxnStart,
    /// Phase one begun: `CopyUpdate` sent to `participants` sites.
    PreparePhase {
        /// Number of participating sites.
        participants: u8,
    },
    /// A phase-one vote (`UpdateAck`) arrived.
    Vote {
        /// The voting participant.
        from: SiteId,
        /// Its verdict.
        ok: bool,
    },
    /// All votes in: the coordinator decided commit and entered phase
    /// two.
    Decide,
    /// The transaction committed (local apply done, report emitted).
    Commit,
    /// The transaction aborted.
    Abort {
        /// Why.
        reason: AbortReason,
    },
    /// Participant buffered phase-one writes and voted yes.
    ParticipantPrepared {
        /// The coordinating site.
        coordinator: SiteId,
    },
    /// Participant applied the commit.
    ParticipantCommitted,
    /// A copier transaction (copy request) was issued to `target`.
    CopierRequest {
        /// The site asked for up-to-date copies.
        target: SiteId,
    },
    /// A copy request from `site` was served.
    CopierServe {
        /// The recovering requester.
        site: SiteId,
    },
    /// Commit-time maintenance or a snapshot install set fail-lock bits.
    FailLocksSet {
        /// Bits newly set.
        count: u32,
    },
    /// Refresh, clear messages, or maintenance cleared fail-lock bits.
    FailLocksCleared {
        /// Bits cleared.
        count: u32,
    },
    /// A control transaction was initiated by this site.
    ControlTxn {
        /// 1 = recovery announce, 2 = failure announce, 3 = backup copy.
        ctype: u8,
    },
    /// This site formatted and sent recovery state (session vector +
    /// fail-lock table) to a recovering site's type-1 announce.
    RecoveryServe {
        /// The recovering site asking for state.
        site: SiteId,
    },
    /// The recovering site processed a `RecoveryInfo` response.
    RecoveryMerge {
        /// The responding donor.
        from: SiteId,
        /// True for the first response (installed wholesale) or a
        /// cross-check response merged in; false for a response that was
        /// ignored (unknown donor or no recovery in flight).
        merged: bool,
    },
    /// The local session vector changed for `site`.
    SessionChange {
        /// The site whose record changed.
        site: SiteId,
        /// Its (perceived) session number.
        session: SessionNumber,
        /// Whether the site is now considered operational.
        up: bool,
    },
    /// Cross-shard 2PC begun at the top-level coordinator (client side).
    XBegin {
        /// Number of branch (per-group) transactions.
        branches: u8,
    },
    /// Cross-shard phase one: `ShardPrepare` sent to a group's branch
    /// coordinator.
    XPrepare {
        /// The replication group being prepared.
        shard: u8,
    },
    /// A branch coordinator's `ShardVote` arrived at the top level.
    XVote {
        /// The voting replication group.
        shard: u8,
        /// Its verdict.
        ok: bool,
    },
    /// Cross-shard phase two: the global decision.
    XDecide {
        /// Commit (`true`) or global abort.
        commit: bool,
    },
    /// The acting coordinator's decision record for this transaction
    /// reached a quorum of log replicas (`XDecisionLog` protocol): the
    /// point after which prepares (begin record) or decides (commit
    /// record) may leave the coordinator.
    XLogReplicate {
        /// Replicas that acknowledged, at the moment quorum was reached.
        replicas: u8,
        /// True for the commit record, false for the begin record.
        decided: bool,
    },
    /// A successor coordinator adopted this in-doubt transaction from
    /// the replicated decision log after the original coordinator died.
    XTakeover {
        /// The outcome the successor derived: re-driven commit (`true`)
        /// or presumed abort (`false`).
        commit: bool,
    },
    /// The group-commit fsync covering this transaction's commit record
    /// durably retired it (PR 6's WAL): the point after which the
    /// commit's outbound messages may leave the site.
    WalFsync {
        /// Pending commits retired by the same fsync.
        retired: u32,
    },
    /// A chaos-schedule annotation injected into the trace stream by the
    /// harness, so failures are visible in the traces they perturb.
    Chaos {
        /// What the schedule did.
        action: ChaosAction,
        /// The site it did it to.
        target: SiteId,
    },
    /// The resharder announced a migration: shard map `epoch` installed
    /// with ranges in the `Migrating` state (copying begins).
    MigrateStart {
        /// The announced map epoch.
        epoch: u64,
    },
    /// A copier transaction streamed one migrating item's committed
    /// state from donor to recipient.
    MigrateCopy {
        /// The copied item (global id).
        item: u32,
    },
    /// The resharder installed the cutover map: the recipients own
    /// their ranges alone from `epoch` on.
    MigrateCutover {
        /// The cutover map epoch.
        epoch: u64,
    },
}

/// What a chaos-schedule entry did to a site (see [`EventKind::Chaos`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// The site was killed (failed without announcement).
    Kill,
    /// The site was told to recover.
    Recover,
    /// The site's links were isolated (all traffic blocked).
    Isolate,
    /// The site's links were healed.
    Heal,
    /// The site was bootstrapped after total group failure.
    Bootstrap,
}

impl ChaosAction {
    /// Stable short name, used as the `action` field of JSONL traces.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosAction::Kill => "kill",
            ChaosAction::Recover => "recover",
            ChaosAction::Isolate => "isolate",
            ChaosAction::Heal => "heal",
            ChaosAction::Bootstrap => "bootstrap",
        }
    }

    /// Inverse of [`ChaosAction::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "kill" => ChaosAction::Kill,
            "recover" => ChaosAction::Recover,
            "isolate" => ChaosAction::Isolate,
            "heal" => ChaosAction::Heal,
            "bootstrap" => ChaosAction::Bootstrap,
            _ => return None,
        })
    }
}

impl EventKind {
    /// Stable short name, used as the `t` field of JSONL traces.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxnAdmit => "txn_admit",
            EventKind::LockWait => "lock_wait",
            EventKind::LockGrant => "lock_grant",
            EventKind::TxnStart => "txn_start",
            EventKind::PreparePhase { .. } => "prepare",
            EventKind::Vote { .. } => "vote",
            EventKind::Decide => "decide",
            EventKind::Commit => "commit",
            EventKind::Abort { .. } => "abort",
            EventKind::ParticipantPrepared { .. } => "part_prepared",
            EventKind::ParticipantCommitted => "part_committed",
            EventKind::CopierRequest { .. } => "copier_req",
            EventKind::CopierServe { .. } => "copier_serve",
            EventKind::FailLocksSet { .. } => "faillocks_set",
            EventKind::FailLocksCleared { .. } => "faillocks_cleared",
            EventKind::ControlTxn { .. } => "control",
            EventKind::RecoveryServe { .. } => "recovery_serve",
            EventKind::RecoveryMerge { .. } => "recovery_merge",
            EventKind::SessionChange { .. } => "session",
            EventKind::XBegin { .. } => "x_begin",
            EventKind::XPrepare { .. } => "x_prepare",
            EventKind::XVote { .. } => "x_vote",
            EventKind::XDecide { .. } => "x_decide",
            EventKind::XLogReplicate { .. } => "x_log_replicate",
            EventKind::XTakeover { .. } => "x_takeover",
            EventKind::WalFsync { .. } => "wal_fsync",
            EventKind::Chaos { .. } => "chaos",
            EventKind::MigrateStart { .. } => "migrate_start",
            EventKind::MigrateCopy { .. } => "migrate_copy",
            EventKind::MigrateCutover { .. } => "migrate_cutover",
        }
    }
}

/// One emitted protocol event: who, when, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The emitting site.
    pub site: SiteId,
    /// The transaction the event belongs to, if any.
    pub txn: Option<TxnId>,
    /// The causal trace the event belongs to (0 = untraced). Stamped
    /// from the tracer's txn→trace registry, which the driving layer
    /// populates when a [`crate::messages::Message::Traced`] frame
    /// arrives.
    pub trace: TraceId,
    /// When it happened.
    pub at: Stamp,
    /// What happened.
    pub kind: EventKind,
}

/// Where events go. Implementations must be cheap and non-blocking
/// enough to call from the engine's hot path.
pub trait TraceSink: Send + Sync {
    /// Record one event. Must not panic.
    fn record(&self, event: TraceEvent);
}

/// Bounded txn→trace registry: oldest registrations are evicted once
/// the map holds [`TRACE_REGISTRY_CAP`] entries, so a long-lived site
/// cannot leak memory through trace ids of transactions whose final
/// events it never saw. Eviction order is insertion order —
/// deterministic under the simulator.
const TRACE_REGISTRY_CAP: usize = 8192;

#[derive(Default)]
struct TraceRegistry {
    by_txn: HashMap<TxnId, TraceId>,
    order: VecDeque<TxnId>,
}

impl TraceRegistry {
    fn register(&mut self, txn: TxnId, trace: TraceId) {
        if self.by_txn.insert(txn, trace).is_none() {
            self.order.push_back(txn);
            while self.order.len() > TRACE_REGISTRY_CAP {
                if let Some(old) = self.order.pop_front() {
                    self.by_txn.remove(&old);
                }
            }
        }
    }
}

struct TracerInner {
    site: SiteId,
    clock: Arc<dyn TraceClock>,
    sink: Arc<dyn TraceSink>,
    /// Fast-path guard: emission skips the registry lock entirely until
    /// the first trace id is registered, so deployments that never
    /// propagate trace ids pay one relaxed atomic load per event.
    any_traces: AtomicBool,
    traces: Mutex<TraceRegistry>,
}

/// The engine's emission handle: either disabled (the default — one
/// branch per would-be event) or bound to a clock and a sink.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl Tracer {
    /// The no-op tracer every engine starts with.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer stamping events for `site` with `clock` and delivering
    /// them to `sink`.
    pub fn new(site: SiteId, clock: Arc<dyn TraceClock>, sink: Arc<dyn TraceSink>) -> Self {
        Tracer(Some(Arc::new(TracerInner {
            site,
            clock,
            sink,
            any_traces: AtomicBool::new(false),
            traces: Mutex::new(TraceRegistry::default()),
        })))
    }

    /// Is this tracer bound to a sink?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Associate `txn` with causal trace `trace`, so every subsequent
    /// event emitted for `txn` carries the trace id. Called by the
    /// driving layer when a traced frame arrives or a traced
    /// transaction is submitted. No-op when disabled or `trace == 0`.
    pub fn register_trace(&self, txn: TxnId, trace: TraceId) {
        if trace == 0 {
            return;
        }
        if let Some(inner) = &self.0 {
            inner
                .traces
                .lock()
                .expect("trace registry poisoned")
                .register(txn, trace);
            inner.any_traces.store(true, Ordering::Release);
        }
    }

    /// The trace id registered for `txn` (0 when none, or disabled).
    pub fn trace_of(&self, txn: TxnId) -> TraceId {
        match &self.0 {
            Some(inner) if inner.any_traces.load(Ordering::Acquire) => inner
                .traces
                .lock()
                .expect("trace registry poisoned")
                .by_txn
                .get(&txn)
                .copied()
                .unwrap_or(0),
            _ => 0,
        }
    }

    /// Emit one event (no-op when disabled). The trace id is looked up
    /// from the registry by transaction.
    #[inline]
    pub fn emit(&self, txn: Option<TxnId>, kind: EventKind) {
        if let Some(inner) = &self.0 {
            let trace = match txn {
                Some(id) if inner.any_traces.load(Ordering::Acquire) => inner
                    .traces
                    .lock()
                    .expect("trace registry poisoned")
                    .by_txn
                    .get(&id)
                    .copied()
                    .unwrap_or(0),
                _ => 0,
            };
            inner.sink.record(TraceEvent {
                site: inner.site,
                txn,
                trace,
                at: inner.clock.stamp(),
                kind,
            });
        }
    }

    /// Emit one event with an explicit trace id, bypassing the registry
    /// (the client side knows the id it just allocated).
    pub fn emit_traced(&self, txn: Option<TxnId>, trace: TraceId, kind: EventKind) {
        if let Some(inner) = &self.0 {
            inner.sink.record(TraceEvent {
                site: inner.site,
                txn,
                trace,
                at: inner.clock.stamp(),
                kind,
            });
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(inner) => write!(f, "Tracer(site {})", inner.site.0),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<TraceEvent>>);
    impl TraceSink for Collect {
        fn record(&self, event: TraceEvent) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn disabled_tracer_is_noop() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(Some(TxnId(1)), EventKind::Commit);
    }

    #[test]
    fn manual_clock_orders_events() {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let tracer = Tracer::new(SiteId(2), clock.clone(), sink.clone());
        clock.set_wall(500);
        tracer.emit(Some(TxnId(7)), EventKind::TxnAdmit);
        clock.set_wall(900);
        tracer.emit(Some(TxnId(7)), EventKind::Commit);
        let events = sink.0.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].site, SiteId(2));
        assert_eq!(events[0].at.wall_micros, 500);
        assert_eq!(events[1].at.wall_micros, 900);
        assert!(events[0].at.logical < events[1].at.logical);
        assert_eq!(events[1].kind.name(), "commit");
        assert_eq!(events[0].trace, 0, "no trace registered");
    }

    #[test]
    fn registry_stamps_registered_traces() {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let tracer = Tracer::new(SiteId(0), clock, sink.clone());
        tracer.register_trace(TxnId(5), 0xAB00_0001);
        tracer.emit(Some(TxnId(5)), EventKind::TxnAdmit);
        tracer.emit(Some(TxnId(6)), EventKind::TxnAdmit);
        tracer.emit(
            None,
            EventKind::SessionChange {
                site: SiteId(1),
                session: SessionNumber(2),
                up: false,
            },
        );
        let events = sink.0.lock().unwrap();
        assert_eq!(events[0].trace, 0xAB00_0001);
        assert_eq!(events[1].trace, 0, "unregistered txn stays untraced");
        assert_eq!(events[2].trace, 0);
        assert_eq!(tracer.trace_of(TxnId(5)), 0xAB00_0001);
        assert_eq!(tracer.trace_of(TxnId(6)), 0);
    }

    #[test]
    fn registry_eviction_is_bounded_and_fifo() {
        let mut reg = TraceRegistry::default();
        for i in 0..(TRACE_REGISTRY_CAP as u64 + 10) {
            reg.register(TxnId(i), i + 1);
        }
        assert_eq!(reg.by_txn.len(), TRACE_REGISTRY_CAP);
        assert!(!reg.by_txn.contains_key(&TxnId(0)), "oldest evicted");
        assert!(reg
            .by_txn
            .contains_key(&TxnId(TRACE_REGISTRY_CAP as u64 + 9)));
    }

    #[test]
    fn trace_id_gen_is_deterministic_and_nonzero() {
        let mut a = TraceIdGen::new(7);
        let mut b = TraceIdGen::new(7);
        let ids: Vec<u64> = (0..5).map(|_| a.next_id()).collect();
        let again: Vec<u64> = (0..5).map(|_| b.next_id()).collect();
        assert_eq!(ids, again);
        assert!(ids.iter().all(|&id| id != 0));
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), ids.len());
        let mut other = TraceIdGen::new(8);
        assert_ne!(other.next_id(), ids[0], "origins partition the id space");
        // Origin 0 (the default managing client) still never yields 0.
        assert_ne!(TraceIdGen::new(0).next_id(), 0);
    }
}
