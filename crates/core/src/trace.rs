//! Structured protocol tracing: typed events emitted by the engine.
//!
//! The paper's contribution is *experimental analysis* — it measures
//! fail-lock accumulation, copier work, and per-transaction commit
//! behaviour across failure/recovery schedules. Cumulative counters
//! ([`crate::metrics::EngineMetrics`]) cannot answer questions like
//! "which 2PC phase stalls during recovery?", so the engine additionally
//! emits a stream of typed [`TraceEvent`]s at every protocol milestone.
//!
//! The engine stays sans-IO: it holds a [`Tracer`] handle whose clock
//! and sink are both injected by the driver. The simulator injects a
//! virtual clock (traces are bit-deterministic across runs); the
//! threaded cluster injects the system clock. The default tracer is
//! disabled — a single branch on an `Option` — so untraced deployments
//! pay essentially nothing.
//!
//! Sinks (ring buffers, JSONL writers, histogram hubs) live in the
//! `miniraid-obs` crate; only the minimal emission contract lives here
//! so the engine crate has no new dependencies.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::AbortReason;
use crate::ids::{SessionNumber, SiteId, TxnId};

/// A point in time as seen by the injected [`TraceClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stamp {
    /// Strictly increasing per-clock sequence number: a total order over
    /// the events of one site even when wall time ties.
    pub logical: u64,
    /// Wall-clock microseconds. Virtual time under the simulator
    /// (deterministic); microseconds since the UNIX epoch on a live
    /// cluster.
    pub wall_micros: u64,
}

/// Source of [`Stamp`]s, injected by the driver.
pub trait TraceClock: Send + Sync {
    /// Produce the stamp for an event being emitted now.
    fn stamp(&self) -> Stamp;
}

/// A [`TraceClock`] whose wall reading is set manually by the driver —
/// the simulator points it at virtual time before each engine step, so
/// traces are identical across runs of the same seed.
#[derive(Debug, Default)]
pub struct ManualClock {
    wall: AtomicU64,
    seq: AtomicU64,
}

impl ManualClock {
    /// A clock starting at wall reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the wall reading (virtual microseconds) for subsequent stamps.
    pub fn set_wall(&self, micros: u64) {
        self.wall.store(micros, Ordering::Relaxed);
    }
}

impl TraceClock for ManualClock {
    fn stamp(&self) -> Stamp {
        Stamp {
            logical: self.seq.fetch_add(1, Ordering::Relaxed),
            wall_micros: self.wall.load(Ordering::Relaxed),
        }
    }
}

/// A [`TraceClock`] reading the real system clock (microseconds since
/// the UNIX epoch), for threaded cluster deployments.
#[derive(Debug, Default)]
pub struct SystemClock {
    seq: AtomicU64,
}

impl SystemClock {
    /// A fresh system clock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceClock for SystemClock {
    fn stamp(&self) -> Stamp {
        let wall_micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Stamp {
            logical: self.seq.fetch_add(1, Ordering::Relaxed),
            wall_micros,
        }
    }
}

/// What happened. Every variant has a fixed-size payload so
/// [`TraceEvent`] is `Copy` and fits a lock-free ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction entered the in-flight window (predeclared lock
    /// acquisition begins).
    TxnAdmit,
    /// Admission found a predeclared lock held by an earlier in-flight
    /// transaction; the transaction parks.
    LockWait,
    /// Every predeclared lock is held; execution begins.
    LockGrant,
    /// Coordinator setup complete (counted in `txns_coordinated`).
    TxnStart,
    /// Phase one begun: `CopyUpdate` sent to `participants` sites.
    PreparePhase {
        /// Number of participating sites.
        participants: u8,
    },
    /// A phase-one vote (`UpdateAck`) arrived.
    Vote {
        /// The voting participant.
        from: SiteId,
        /// Its verdict.
        ok: bool,
    },
    /// All votes in: the coordinator decided commit and entered phase
    /// two.
    Decide,
    /// The transaction committed (local apply done, report emitted).
    Commit,
    /// The transaction aborted.
    Abort {
        /// Why.
        reason: AbortReason,
    },
    /// Participant buffered phase-one writes and voted yes.
    ParticipantPrepared {
        /// The coordinating site.
        coordinator: SiteId,
    },
    /// Participant applied the commit.
    ParticipantCommitted,
    /// A copier transaction (copy request) was issued to `target`.
    CopierRequest {
        /// The site asked for up-to-date copies.
        target: SiteId,
    },
    /// A copy request from `site` was served.
    CopierServe {
        /// The recovering requester.
        site: SiteId,
    },
    /// Commit-time maintenance or a snapshot install set fail-lock bits.
    FailLocksSet {
        /// Bits newly set.
        count: u32,
    },
    /// Refresh, clear messages, or maintenance cleared fail-lock bits.
    FailLocksCleared {
        /// Bits cleared.
        count: u32,
    },
    /// A control transaction was initiated by this site.
    ControlTxn {
        /// 1 = recovery announce, 2 = failure announce, 3 = backup copy.
        ctype: u8,
    },
    /// This site formatted and sent recovery state (session vector +
    /// fail-lock table) to a recovering site's type-1 announce.
    RecoveryServe {
        /// The recovering site asking for state.
        site: SiteId,
    },
    /// The recovering site processed a `RecoveryInfo` response.
    RecoveryMerge {
        /// The responding donor.
        from: SiteId,
        /// True for the first response (installed wholesale) or a
        /// cross-check response merged in; false for a response that was
        /// ignored (unknown donor or no recovery in flight).
        merged: bool,
    },
    /// The local session vector changed for `site`.
    SessionChange {
        /// The site whose record changed.
        site: SiteId,
        /// Its (perceived) session number.
        session: SessionNumber,
        /// Whether the site is now considered operational.
        up: bool,
    },
}

impl EventKind {
    /// Stable short name, used as the `t` field of JSONL traces.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxnAdmit => "txn_admit",
            EventKind::LockWait => "lock_wait",
            EventKind::LockGrant => "lock_grant",
            EventKind::TxnStart => "txn_start",
            EventKind::PreparePhase { .. } => "prepare",
            EventKind::Vote { .. } => "vote",
            EventKind::Decide => "decide",
            EventKind::Commit => "commit",
            EventKind::Abort { .. } => "abort",
            EventKind::ParticipantPrepared { .. } => "part_prepared",
            EventKind::ParticipantCommitted => "part_committed",
            EventKind::CopierRequest { .. } => "copier_req",
            EventKind::CopierServe { .. } => "copier_serve",
            EventKind::FailLocksSet { .. } => "faillocks_set",
            EventKind::FailLocksCleared { .. } => "faillocks_cleared",
            EventKind::ControlTxn { .. } => "control",
            EventKind::RecoveryServe { .. } => "recovery_serve",
            EventKind::RecoveryMerge { .. } => "recovery_merge",
            EventKind::SessionChange { .. } => "session",
        }
    }
}

/// One emitted protocol event: who, when, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The emitting site.
    pub site: SiteId,
    /// The transaction the event belongs to, if any.
    pub txn: Option<TxnId>,
    /// When it happened.
    pub at: Stamp,
    /// What happened.
    pub kind: EventKind,
}

/// Where events go. Implementations must be cheap and non-blocking
/// enough to call from the engine's hot path.
pub trait TraceSink: Send + Sync {
    /// Record one event. Must not panic.
    fn record(&self, event: TraceEvent);
}

struct TracerInner {
    site: SiteId,
    clock: Arc<dyn TraceClock>,
    sink: Arc<dyn TraceSink>,
}

/// The engine's emission handle: either disabled (the default — one
/// branch per would-be event) or bound to a clock and a sink.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl Tracer {
    /// The no-op tracer every engine starts with.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer stamping events for `site` with `clock` and delivering
    /// them to `sink`.
    pub fn new(site: SiteId, clock: Arc<dyn TraceClock>, sink: Arc<dyn TraceSink>) -> Self {
        Tracer(Some(Arc::new(TracerInner { site, clock, sink })))
    }

    /// Is this tracer bound to a sink?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emit one event (no-op when disabled).
    #[inline]
    pub fn emit(&self, txn: Option<TxnId>, kind: EventKind) {
        if let Some(inner) = &self.0 {
            inner.sink.record(TraceEvent {
                site: inner.site,
                txn,
                at: inner.clock.stamp(),
                kind,
            });
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(inner) => write!(f, "Tracer(site {})", inner.site.0),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<TraceEvent>>);
    impl TraceSink for Collect {
        fn record(&self, event: TraceEvent) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn disabled_tracer_is_noop() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(Some(TxnId(1)), EventKind::Commit);
    }

    #[test]
    fn manual_clock_orders_events() {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let tracer = Tracer::new(SiteId(2), clock.clone(), sink.clone());
        clock.set_wall(500);
        tracer.emit(Some(TxnId(7)), EventKind::TxnAdmit);
        clock.set_wall(900);
        tracer.emit(Some(TxnId(7)), EventKind::Commit);
        let events = sink.0.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].site, SiteId(2));
        assert_eq!(events[0].at.wall_micros, 500);
        assert_eq!(events[1].at.wall_micros, 900);
        assert!(events[0].at.logical < events[1].at.logical);
        assert_eq!(events[1].kind.name(), "commit");
    }
}
