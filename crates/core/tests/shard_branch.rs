//! Cross-shard branch idempotency at the engine level: a branch
//! coordinator parked at its local commit point must apply exactly one
//! outcome no matter how many `ShardDecide` frames reach it — the
//! original coordinator's decide, the original's redrive retries, and a
//! successor coordinator's takeover re-drive all overlap on the wire
//! (management frames are retried, not sequenced).

mod harness;

use harness::Pump;
use miniraid_core::config::ProtocolConfig;
use miniraid_core::messages::Message;
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::{ItemId, SiteId, TxnId};

fn cfg() -> ProtocolConfig {
    ProtocolConfig {
        db_size: 8,
        n_sites: 3,
        ..ProtocolConfig::default()
    }
}

#[test]
fn duplicate_shard_decides_from_two_coordinators_are_idempotent() {
    let mut pump = Pump::new(cfg());
    let txn_id = TxnId(77);
    let branch = Transaction::new(txn_id, vec![Operation::Write(ItemId(0), 42)]);

    // The original coordinator (standing in at site 1) ships the branch;
    // site 0 runs phase one and parks at the local commit point, voting
    // yes. Parked means: no report, no commit applied.
    pump.deliver(
        SiteId(0),
        SiteId(1),
        Message::ShardPrepare {
            txn: branch.clone(),
        },
    );
    assert!(
        pump.observed.reports.iter().all(|r| r.txn != txn_id),
        "parked branch must not report before the global decision"
    );

    // A duplicated prepare while parked is absorbed (the retry path of a
    // coordinator that never saw the vote).
    pump.deliver(SiteId(0), SiteId(1), Message::ShardPrepare { txn: branch });

    // The original coordinator's decide commits the branch.
    pump.deliver(
        SiteId(0),
        SiteId(1),
        Message::ShardDecide {
            txn: txn_id,
            commit: true,
        },
    );
    let committed = |pump: &Pump| {
        pump.observed
            .reports
            .iter()
            .filter(|r| r.txn == txn_id && r.outcome.is_committed())
            .count()
    };
    assert_eq!(committed(&pump), 1, "decide commits the parked branch once");
    let version_after_commit = pump.engine(SiteId(0)).db().get(0).unwrap().version;

    // Now the overlap: the original coordinator's redrive retry, a
    // successor coordinator's takeover re-drive (different sender), and
    // finally a stale abort from a fenced-off coordinator. None may
    // re-apply the write, duplicate the report, or undo the commit.
    pump.deliver(
        SiteId(0),
        SiteId(1),
        Message::ShardDecide {
            txn: txn_id,
            commit: true,
        },
    );
    pump.deliver(
        SiteId(0),
        SiteId(2),
        Message::ShardDecide {
            txn: txn_id,
            commit: true,
        },
    );
    pump.deliver(
        SiteId(0),
        SiteId(2),
        Message::ShardDecide {
            txn: txn_id,
            commit: false,
        },
    );

    let reports: Vec<_> = pump
        .observed
        .reports
        .iter()
        .filter(|r| r.txn == txn_id)
        .collect();
    assert_eq!(reports.len(), 1, "exactly one report: {reports:?}");
    assert!(reports[0].outcome.is_committed(), "the commit stood");
    for engine in &pump.engines {
        let value = engine.db().get(0).unwrap();
        assert_eq!(value.data, 42, "committed data at {}", engine.id());
        assert_eq!(
            value.version,
            version_after_commit,
            "duplicate decides re-applied the write at {}",
            engine.id()
        );
    }
    pump.assert_up_sites_converged();
}

#[test]
fn duplicate_abort_decides_are_idempotent() {
    let mut pump = Pump::new(cfg());
    let txn_id = TxnId(78);
    let branch = Transaction::new(txn_id, vec![Operation::Write(ItemId(1), 7)]);
    let baseline = pump.engine(SiteId(0)).db().get(1).unwrap();

    pump.deliver(SiteId(0), SiteId(1), Message::ShardPrepare { txn: branch });
    // Presumed abort from the original, then the successor's broadcast
    // abort (it cannot know which site parked, so every group member
    // gets one), then one more retry.
    for from in [1u8, 2, 1] {
        pump.deliver(
            SiteId(0),
            SiteId(from),
            Message::ShardDecide {
                txn: txn_id,
                commit: false,
            },
        );
    }

    let reports: Vec<_> = pump
        .observed
        .reports
        .iter()
        .filter(|r| r.txn == txn_id)
        .collect();
    assert_eq!(reports.len(), 1, "exactly one report: {reports:?}");
    assert!(!reports[0].outcome.is_committed(), "the abort stood");
    assert_eq!(
        pump.engine(SiteId(0)).db().get(1).unwrap(),
        baseline,
        "aborted branch must leave the item untouched"
    );
    pump.assert_up_sites_converged();
}
