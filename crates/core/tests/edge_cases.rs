//! Edge-case and adversarial-delivery tests for the protocol engine:
//! duplicate and stale messages, failures at every protocol phase,
//! queueing, and the session-mismatch paths. The engine must be
//! stale-safe: any late or repeated input is ignored, never corrupting
//! state.

mod harness;

use harness::Pump;
use miniraid_core::engine::{Input, Output, TimerId};
use miniraid_core::error::AbortReason;
use miniraid_core::messages::{Command, Message, TxnOutcome};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::session::SiteStatus;
use miniraid_core::{ItemId, ProtocolConfig, SessionNumber, SiteId, TxnId};

fn cfg(n_sites: u8) -> ProtocolConfig {
    ProtocolConfig {
        db_size: 10,
        n_sites,
        ..ProtocolConfig::default()
    }
}

fn write(item: u32, value: u64) -> Operation {
    Operation::Write(ItemId(item), value)
}

fn read(item: u32) -> Operation {
    Operation::Read(ItemId(item))
}

#[test]
fn duplicate_commit_message_is_ignored() {
    let mut pump = Pump::new(cfg(3));
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(2, 5)]));
    assert!(report.outcome.is_committed());
    let before = pump.engine(SiteId(1)).db().get(2).unwrap();
    // Redeliver a Commit for the already-finished transaction: the
    // participant re-acks idempotently (the coordinator retransmitting
    // means our CommitAck was lost) but must not re-apply the writes.
    let out = pump.engines[1].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::Commit { txn: TxnId(1) },
    });
    let sends: Vec<_> = out
        .iter()
        .filter_map(|o| match o {
            Output::Send { to, msg } => Some((*to, msg)),
            _ => None,
        })
        .collect();
    assert!(
        matches!(
            sends.as_slice(),
            [(SiteId(0), Message::CommitAck { txn: TxnId(1) })]
        ),
        "duplicate commit re-acks (and does nothing else): {sends:?}"
    );
    assert_eq!(pump.engine(SiteId(1)).db().get(2).unwrap(), before);
}

#[test]
fn stale_update_ack_is_ignored() {
    let mut pump = Pump::new(cfg(3));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(2, 5)]));
    // An ack for a long-gone transaction must not disturb anything.
    let out = pump.engines[0].handle_owned(Input::Deliver {
        from: SiteId(1),
        msg: Message::UpdateAck {
            txn: TxnId(1),
            ok: true,
        },
    });
    assert!(out.is_empty());
    // And neither must a stale commit-ack.
    let out = pump.engines[0].handle_owned(Input::Deliver {
        from: SiteId(1),
        msg: Message::CommitAck { txn: TxnId(1) },
    });
    assert!(out.is_empty());
}

#[test]
fn abort_for_unknown_txn_is_a_noop() {
    let mut pump = Pump::new(cfg(2));
    let out = pump.engines[1].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::AbortTxn { txn: TxnId(77) },
    });
    assert!(out.is_empty());
}

#[test]
fn copy_response_with_unknown_request_is_ignored() {
    let mut pump = Pump::new(cfg(2));
    let out = pump.engines[0].handle_owned(Input::Deliver {
        from: SiteId(1),
        msg: Message::CopyResponse {
            req: miniraid_core::ids::ReqId(999),
            ok: true,
            copies: vec![(ItemId(0), miniraid_core::ItemValue::new(1, 1))],
        },
    });
    assert!(out.is_empty());
    // The unsolicited copy must NOT have been applied.
    assert_eq!(pump.engine(SiteId(0)).db().get(0).unwrap().version, 0);
}

#[test]
fn stale_timers_never_fire_into_completed_state() {
    let mut pump = Pump::new(cfg(3));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(1, 1)]));
    // Fire every timer kind for the old transaction.
    for timer in [
        TimerId::AckTimeout(TxnId(1)),
        TimerId::CommitAckTimeout(TxnId(1)),
        TimerId::ParticipantTimeout(TxnId(1)),
        TimerId::CopierTimeout(miniraid_core::ids::ReqId(1)),
        TimerId::BatchCopier,
        TimerId::RecoveryInfoTimeout(0),
    ] {
        for e in 0..3usize {
            let out = pump.engines[e].handle_owned(Input::Timer(timer));
            assert!(
                out.is_empty(),
                "stale {timer:?} produced output at site {e}: {out:?}"
            );
        }
    }
}

#[test]
fn coordinator_failure_between_phases_discards_participant_state() {
    let mut pump = Pump::new(cfg(3));
    // Drive phase one manually: deliver a CopyUpdate to site 1 and let it
    // ack, but never send Commit.
    let out = pump.engines[1].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::CopyUpdate {
            txn: TxnId(9),
            writes: vec![(ItemId(4), miniraid_core::ItemValue::new(44, 9))],
            snapshot: vec![SessionNumber(1); 3],
            clears: vec![],
            up_mask: 0b111,
        },
    });
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send {
            msg: Message::UpdateAck { ok: true, .. },
            ..
        }
    )));
    // The participant timeout fires: coordinator presumed dead.
    let out = pump.engines[1].handle_owned(Input::Timer(TimerId::ParticipantTimeout(TxnId(9))));
    // It must discard the buffered writes and announce the failure.
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send {
            msg: Message::FailureAnnounce { .. },
            ..
        }
    )));
    assert_eq!(pump.engine(SiteId(1)).db().get(4).unwrap().version, 0);
    assert!(!pump.engine(SiteId(1)).vector().is_up(SiteId(0)));
    // A very late Commit for that transaction is now a no-op.
    let out = pump.engines[1].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::Commit { txn: TxnId(9) },
    });
    assert!(out.is_empty());
}

#[test]
fn participant_failure_in_phase_two_still_commits() {
    // Appendix A.1: "if commit ack not received from all participating
    // sites then run control type 2 transaction ... commit database data
    // items" — the transaction commits anyway.
    let mut pump = Pump::new(cfg(3));
    // Start a transaction manually so we can drop site 2 mid-protocol.
    let out = pump.engines[0].handle_owned(Input::Control(Command::Begin(Transaction::new(
        TxnId(5),
        vec![write(3, 33)],
    ))));
    // Deliver phase-one updates; both participants ack.
    let mut acks = Vec::new();
    for o in out {
        if let Output::Send { to, msg } = o {
            let replies = pump.engines[to.index()].handle_owned(Input::Deliver {
                from: SiteId(0),
                msg,
            });
            acks.extend(replies.into_iter().filter_map(|r| match r {
                Output::Send { msg, .. } => Some((to, msg)),
                _ => None,
            }));
        }
    }
    // Site 2 dies after acking phase one.
    pump.engines[2].handle_owned(Input::Control(Command::Fail));
    // Coordinator receives both acks and sends Commit to both.
    let mut commits = Vec::new();
    for (from, ack) in acks {
        let out = pump.engines[0].handle_owned(Input::Deliver { from, msg: ack });
        for o in out {
            if let Output::Send { to, msg } = o {
                commits.push((to, msg));
            }
        }
    }
    assert_eq!(commits.len(), 2);
    // Only site 1 answers; site 2 is dead (its delivery is dropped).
    let mut commit_acks = Vec::new();
    for (to, msg) in commits {
        if to == SiteId(1) {
            let out = pump.engines[1].handle_owned(Input::Deliver {
                from: SiteId(0),
                msg,
            });
            for o in out {
                if let Output::Send { msg, .. } = o {
                    commit_acks.push(msg);
                }
            }
        }
    }
    for msg in commit_acks {
        pump.engines[0].handle_owned(Input::Deliver {
            from: SiteId(1),
            msg,
        });
    }
    // Commit-ack timeout fires for the missing site 2.
    let out = pump.engines[0].handle_owned(Input::Timer(TimerId::CommitAckTimeout(TxnId(5))));
    let report = out
        .iter()
        .find_map(|o| match o {
            Output::Report(r) => Some(r.clone()),
            _ => None,
        })
        .expect("transaction reported");
    assert_eq!(report.outcome, TxnOutcome::Committed);
    assert!(report.stats.participant_failed_phase_two);
    // The write is durable at the survivors.
    assert_eq!(pump.engine(SiteId(0)).db().get(3).unwrap().data, 33);
    assert_eq!(pump.engine(SiteId(1)).db().get(3).unwrap().data, 33);
    // And site 2 was announced down.
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send {
            msg: Message::FailureAnnounce { .. },
            ..
        }
    )));
}

#[test]
fn session_mismatch_nack_aborts_the_transaction() {
    let mut pump = Pump::new(cfg(2));
    // Hand site 1 a CopyUpdate whose snapshot carries a stale session
    // number for site 1 itself.
    let out = pump.engines[1].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::CopyUpdate {
            txn: TxnId(3),
            writes: vec![(ItemId(0), miniraid_core::ItemValue::new(1, 3))],
            snapshot: vec![SessionNumber(1), SessionNumber(99)],
            clears: vec![],
            up_mask: 0b11,
        },
    });
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::UpdateAck { ok: false, .. },
                ..
            }
        )),
        "{out:?}"
    );
    // Nothing was buffered.
    let out = pump.engines[1].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::Commit { txn: TxnId(3) },
    });
    assert!(out.is_empty());
}

#[test]
fn begin_on_down_site_reports_not_operational() {
    let mut pump = Pump::new(cfg(2));
    pump.fail(SiteId(0));
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![read(0)]));
    assert_eq!(
        report.outcome,
        TxnOutcome::Aborted(AbortReason::SiteNotOperational)
    );
}

#[test]
fn coordinator_fail_mid_queue_drops_queued_transactions() {
    let mut pump = Pump::new(cfg(3));
    // Queue two transactions without settling, then fail the site.
    pump.engines[0].handle_owned(Input::Control(Command::Begin(Transaction::new(
        TxnId(1),
        vec![write(0, 1)],
    ))));
    pump.engines[0].handle_owned(Input::Control(Command::Begin(Transaction::new(
        TxnId(2),
        vec![write(1, 2)],
    ))));
    pump.engines[0].handle_owned(Input::Control(Command::Fail));
    assert_eq!(pump.engine(SiteId(0)).status(), SiteStatus::Down);
    // No writes leaked anywhere.
    pump.settle();
    for s in 0..3u8 {
        assert_eq!(pump.engine(SiteId(s)).db().get(0).unwrap().version, 0);
        assert_eq!(pump.engine(SiteId(s)).db().get(1).unwrap().version, 0);
    }
}

#[test]
fn terminate_stops_all_processing() {
    let mut pump = Pump::new(cfg(2));
    pump.command(SiteId(1), Command::Terminate);
    assert_eq!(pump.engine(SiteId(1)).status(), SiteStatus::Terminating);
    // Deliveries to a terminating site are ignored.
    let out = pump.engines[1].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::Commit { txn: TxnId(1) },
    });
    assert!(out.is_empty());
    // So are transactions.
    let out = pump.engines[1].handle_owned(Input::Control(Command::Begin(Transaction::new(
        TxnId(9),
        vec![read(0)],
    ))));
    assert!(out
        .iter()
        .any(|o| matches!(o, Output::Report(r) if !r.outcome.is_committed())));
}

#[test]
fn reads_observe_pre_transaction_state() {
    // Writes apply at commit; a transaction reading an item it also
    // writes sees the pre-transaction value.
    let mut pump = Pump::new(cfg(2));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(4, 10)]));
    let report = pump.run_txn(
        SiteId(0),
        Transaction::new(TxnId(2), vec![read(4), write(4, 20), read(4)]),
    );
    assert!(report.outcome.is_committed());
    for (_, value) in &report.read_results {
        assert_eq!(value.data, 10, "reads see the pre-transaction state");
    }
    assert_eq!(pump.engine(SiteId(1)).db().get(4).unwrap().data, 20);
}

#[test]
fn piggybacked_clears_propagate_with_the_commit() {
    let mut config = cfg(2);
    config.piggyback_clears = true;
    let mut pump = Pump::new(config);
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(1, 5)])); // detect
    pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![write(1, 5)]));
    pump.recover(SiteId(0));
    // A read+write txn at the recovered site: the copier refreshes item 1
    // and the clear rides the CopyUpdate instead of a standalone message.
    let report = pump.run_txn(
        SiteId(0),
        Transaction::new(TxnId(3), vec![read(1), write(2, 7)]),
    );
    assert!(report.outcome.is_committed());
    assert_eq!(pump.engine(SiteId(0)).metrics().clear_messages_sent, 0);
    assert!(!pump
        .engine(SiteId(1))
        .faillocks()
        .is_locked(ItemId(1), SiteId(0)));
}

#[test]
fn recovering_site_rejects_copy_updates_until_operational() {
    let mut pump = Pump::new(cfg(3));
    pump.fail(SiteId(2));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 1)])); // detect
                                                                            // Put site 2 into WaitingToRecover without settling (so RecoveryInfo
                                                                            // hasn't arrived).
    pump.engines[2].handle_owned(Input::Control(Command::Recover));
    assert_eq!(
        pump.engine(SiteId(2)).status(),
        SiteStatus::WaitingToRecover
    );
    let out = pump.engines[2].handle_owned(Input::Deliver {
        from: SiteId(0),
        msg: Message::CopyUpdate {
            txn: TxnId(9),
            writes: vec![(ItemId(3), miniraid_core::ItemValue::new(9, 9))],
            snapshot: vec![SessionNumber(1), SessionNumber(1), SessionNumber(2)],
            clears: vec![],
            up_mask: 0b111,
        },
    });
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send {
            msg: Message::UpdateAck { ok: false, .. },
            ..
        }
    )));
}

#[test]
fn double_recover_command_is_idempotent() {
    let mut pump = Pump::new(cfg(2));
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(0, 1)])); // detect
    pump.recover(SiteId(0));
    let session = pump.engine(SiteId(0)).session();
    // Recover again while already up: no-op.
    pump.recover(SiteId(0));
    assert_eq!(pump.engine(SiteId(0)).session(), session);
    assert_eq!(pump.engine(SiteId(0)).metrics().control_type1, 1);
}

#[test]
fn copy_request_for_stale_copy_is_refused() {
    let mut pump = Pump::new(cfg(3));
    pump.fail(SiteId(2));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(5, 9)])); // detect
    pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(5, 9)]));
    pump.recover(SiteId(2));
    // Site 2's copy of item 5 is stale; a copy request for it must be
    // refused rather than serving stale data.
    let out = pump.engines[2].handle_owned(Input::Deliver {
        from: SiteId(1),
        msg: Message::CopyRequest {
            req: miniraid_core::ids::ReqId(42),
            items: vec![ItemId(5)],
        },
    });
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send {
            msg: Message::CopyResponse { ok: false, .. },
            ..
        }
    )));
}

#[test]
fn partial_copier_abort_still_propagates_applied_clears() {
    // Regression (found by proptest): a transaction issuing TWO copier
    // requests, where one target dies mid-refresh. The refresh that DID
    // apply is real — its fail-lock clears must reach the peers even
    // though the transaction aborts, or the tables diverge (a permanent
    // false positive at the peers).
    let mut pump = Pump::new(ProtocolConfig {
        db_size: 12,
        n_sites: 3,
        ..ProtocolConfig::default()
    });
    pump.fail(SiteId(0));
    pump.fail(SiteId(1));
    // Site 2 alone commits three writes.
    for (t, item) in [(1u64, 0u32), (2, 1), (3, 2)] {
        pump.run_txn(SiteId(2), Transaction::new(TxnId(t), vec![write(item, 1)]));
    }
    // Site 1 recovers and refreshes item 1 only.
    pump.recover(SiteId(1));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(4), vec![read(1)]));
    // Site 0 recovers (state from site 1), then site 1 dies silently.
    pump.recover(SiteId(0));
    pump.fail(SiteId(1));
    // Site 0 reads items 1 and 2: two copier groups (item 1 sourced from
    // the now-dead site 1, item 2 from site 2). The item-2 refresh
    // applies; the item-1 copier times out and aborts the transaction.
    let report = pump.run_txn(
        SiteId(0),
        Transaction::new(TxnId(5), vec![read(1), read(2)]),
    );
    assert_eq!(
        report.outcome,
        TxnOutcome::Aborted(AbortReason::CopierTargetFailed)
    );
    assert_eq!(report.stats.copier_requests, 2);
    // The applied refresh propagated: no operational site still believes
    // site 0's copy of item 2 is stale.
    assert!(!pump
        .engine(SiteId(2))
        .faillocks()
        .is_locked(ItemId(2), SiteId(0)));
    assert!(!pump
        .engine(SiteId(0))
        .faillocks()
        .is_locked(ItemId(2), SiteId(0)));
    pump.assert_faillock_exactness();
}

#[test]
fn recovering_site_learns_backup_holdings_via_ct1() {
    // Regression (found by the partial-replication proptest): type-3
    // backup creations that happen while a site is down must reach it at
    // recovery, or its commit-time maintenance uses a stale holder mask
    // and the fail-lock tables diverge — letting a stale backup copy be
    // served as fresh. The replication map now rides RecoveryInfo.
    use miniraid_core::partial::ReplicationMap;
    let mut config = cfg(3);
    config.db_size = 9;
    config.backup_on_last_copy = true;
    let map = ReplicationMap::round_robin(9, 3, 2);
    let mut pump = Pump::with_replication(config, map);

    // Item 1 is held by {1, 2}. Failing site 1 makes site 2 the last
    // operational holder: a type-3 backup lands on site 0.
    pump.fail(SiteId(1));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 5)])); // detect
    pump.settle();
    assert!(pump
        .engine(SiteId(0))
        .replication()
        .is_backup(ItemId(1), SiteId(0)));

    // Site 1 recovers: CT1 must teach it about site 0's backup holding.
    pump.recover(SiteId(1));
    assert!(
        pump.engine(SiteId(1))
            .replication()
            .holds(ItemId(1), SiteId(0)),
        "recovered site must learn the backup holding"
    );

    // Now fail site 0 and write item 1 from site 1: with the transferred
    // map, site 1's maintenance covers site 0's backup copy.
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![write(8, 1)])); // detect
    let r = pump.run_txn(SiteId(1), Transaction::new(TxnId(3), vec![write(1, 99)]));
    assert!(r.outcome.is_committed());
    assert!(
        pump.engine(SiteId(1))
            .faillocks()
            .is_locked(ItemId(1), SiteId(0)),
        "the down backup holder's staleness is tracked"
    );
    // After site 0 recovers, its stale backup is never served as fresh.
    pump.recover(SiteId(0));
    assert!(pump
        .engine(SiteId(0))
        .faillocks()
        .is_locked(ItemId(1), SiteId(0)));
    let r = pump.run_txn(SiteId(0), Transaction::new(TxnId(4), vec![read(1)]));
    assert!(r.outcome.is_committed());
    assert_eq!(r.read_results[0].1.data, 99, "refreshed, not stale");
}
