//! Property tests for partial replication (paper §3.2): random failure
//! schedules over round-robin replication maps, with and without type-3
//! control transactions.

mod harness;

use harness::Pump;
use miniraid_core::config::ProtocolConfig;
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::partial::ReplicationMap;
use miniraid_core::{ItemId, SiteId, TxnId};
use proptest::prelude::*;

const N_SITES: u8 = 3;
const DB: u32 = 9;

#[derive(Debug, Clone)]
enum Step {
    Fail(u8),
    Recover(u8),
    Write { site: u8, item: u32, value: u64 },
    Read { site: u8, item: u32 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        1 => (0..N_SITES).prop_map(Step::Fail),
        1 => (0..N_SITES).prop_map(Step::Recover),
        4 => (0..N_SITES, 0..DB, 1u64..1000)
            .prop_map(|(site, item, value)| Step::Write { site, item, value }),
        4 => (0..N_SITES, 0..DB).prop_map(|(site, item)| Step::Read { site, item }),
    ]
}

fn config(ct3: bool) -> ProtocolConfig {
    ProtocolConfig {
        db_size: DB,
        n_sites: N_SITES,
        backup_on_last_copy: ct3,
        ..ProtocolConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partial replication safety: every committed read returns the last
    /// committed value, and no site ever serves an item it holds no copy
    /// of from its own table. Holds with and without type-3 backups.
    #[test]
    fn partial_replication_reads_are_correct(
        ct3 in any::<bool>(),
        steps in proptest::collection::vec(arb_step(), 1..50)
    ) {
        let map = ReplicationMap::round_robin(DB, N_SITES, 2);
        let mut pump = Pump::with_replication(config(ct3), map);
        let mut spec: std::collections::HashMap<u32, (u64, u64)> =
            std::collections::HashMap::new();
        let mut next_txn = 1u64;
        for step in steps {
            match step {
                Step::Fail(site) => {
                    let up = (0..N_SITES)
                        .filter(|s| pump.engine(SiteId(*s)).is_up())
                        .count();
                    if up > 1 && pump.engine(SiteId(site)).is_up() {
                        pump.fail(SiteId(site));
                    }
                }
                Step::Recover(site) => {
                    if !pump.engine(SiteId(site)).is_up() {
                        pump.recover(SiteId(site));
                    }
                }
                Step::Write { site, item, value } => {
                    if !pump.engine(SiteId(site)).is_up() {
                        continue;
                    }
                    let id = TxnId(next_txn);
                    next_txn += 1;
                    let report = pump.run_txn(
                        SiteId(site),
                        Transaction::new(id, vec![Operation::Write(ItemId(item), value)]),
                    );
                    if report.outcome.is_committed() {
                        spec.insert(item, (value, id.0));
                    }
                }
                Step::Read { site, item } => {
                    if !pump.engine(SiteId(site)).is_up() {
                        continue;
                    }
                    let id = TxnId(next_txn);
                    next_txn += 1;
                    let report = pump.run_txn(
                        SiteId(site),
                        Transaction::new(id, vec![Operation::Read(ItemId(item))]),
                    );
                    if report.outcome.is_committed() {
                        let expect = spec.get(&item).copied().unwrap_or((0, 0));
                        let observed = report.read_results[0].1;
                        prop_assert_eq!(
                            (observed.data, observed.version),
                            expect,
                            "read of x{} at site {} is stale or phantom", item, site
                        );
                    }
                }
            }
        }
        // Structural sanity: every held copy a site believes fresh really
        // is at least as new as any other fresh operational copy.
        for raw in 0..DB {
            let item = ItemId(raw);
            let fresh_max = (0..N_SITES)
                .filter(|s| {
                    let e = pump.engine(SiteId(*s));
                    e.is_up()
                        && e.replication().holds(item, SiteId(*s))
                        && !e.faillocks().is_locked(item, SiteId(*s))
                })
                .map(|s| pump.engine(SiteId(s)).db().get(raw).unwrap().version)
                .max();
            if let Some(max) = fresh_max {
                for s in 0..N_SITES {
                    let e = pump.engine(SiteId(s));
                    if e.is_up()
                        && e.replication().holds(item, SiteId(s))
                        && !e.faillocks().is_locked(item, SiteId(s))
                    {
                        prop_assert_eq!(
                            e.db().get(raw).unwrap().version, max,
                            "fresh copies of x{} disagree at site {}", raw, s
                        );
                    }
                }
            }
        }
    }
}
