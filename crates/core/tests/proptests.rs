//! Property-based tests: random fail/recover/transaction schedules must
//! preserve the protocol's core invariants (DESIGN.md §5).

mod harness;

use harness::Pump;
use miniraid_core::config::{ProtocolConfig, TwoStepRecovery};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::{ItemId, SiteId, TxnId};
use proptest::prelude::*;

/// One step of a random schedule.
#[derive(Debug, Clone)]
enum Step {
    Fail(u8),
    Recover(u8),
    Txn {
        site: u8,
        ops: Vec<(bool, u32, u64)>,
    }, // (is_write, item, value)
}

fn arb_step(n_sites: u8, db_size: u32) -> impl Strategy<Value = Step> {
    let op = (any::<bool>(), 0..db_size, 1u64..1000);
    prop_oneof![
        1 => (0..n_sites).prop_map(Step::Fail),
        1 => (0..n_sites).prop_map(Step::Recover),
        6 => (0..n_sites, proptest::collection::vec(op, 1..6))
            .prop_map(|(site, ops)| Step::Txn { site, ops }),
    ]
}

/// Run a schedule; returns the pump plus the spec (single-copy) database:
/// item -> (data, version) of the last *committed* write.
fn run_schedule(
    config: ProtocolConfig,
    steps: Vec<Step>,
) -> (Pump, std::collections::HashMap<u32, (u64, u64)>) {
    let n_sites = config.n_sites;
    let db_size = config.db_size;
    let mut pump = Pump::new(config);
    let mut spec: std::collections::HashMap<u32, (u64, u64)> = std::collections::HashMap::new();
    let mut next_txn = 1u64;
    for step in steps {
        match step {
            Step::Fail(site) => {
                // Never fail the last operational site: the paper's
                // system model assumes one site is always available.
                let up = (0..n_sites)
                    .filter(|s| pump.engine(SiteId(*s)).is_up())
                    .count();
                if up > 1 && pump.engine(SiteId(site)).is_up() {
                    pump.fail(SiteId(site));
                }
            }
            Step::Recover(site) => {
                if !pump.engine(SiteId(site)).is_up() {
                    pump.recover(SiteId(site));
                }
            }
            Step::Txn { site, ops } => {
                if !pump.engine(SiteId(site)).is_up() {
                    continue;
                }
                let id = TxnId(next_txn);
                next_txn += 1;
                let ops: Vec<Operation> = ops
                    .iter()
                    .map(|(w, item, value)| {
                        let item = ItemId(item % db_size);
                        if *w {
                            Operation::Write(item, *value)
                        } else {
                            Operation::Read(item)
                        }
                    })
                    .collect();
                let txn = Transaction::new(id, ops.clone());
                let report = pump.run_txn(SiteId(site), txn.clone());
                if report.outcome.is_committed() {
                    for (item, value) in txn.write_set() {
                        spec.insert(item.0, (value, id.0));
                    }
                    // One-copy serializability: reads must observe the
                    // spec values as of this commit point.
                    for (item, observed) in &report.read_results {
                        let expect = spec.get(&item.0).copied().unwrap_or((0, 0));
                        // A read of an item this txn also wrote sees the
                        // pre-transaction state; skip those.
                        if txn.write_set().iter().any(|(w, _)| w == item) {
                            continue;
                        }
                        assert_eq!(
                            (observed.data, observed.version),
                            expect,
                            "1SR violated: {id} read {item} at site {site}"
                        );
                    }
                }
            }
        }
    }
    (pump, spec)
}

fn base_config() -> ProtocolConfig {
    ProtocolConfig {
        db_size: 12,
        n_sites: 3,
        ..ProtocolConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fail-lock exactness + up-site convergence hold at quiescence after
    /// any schedule (with at least one site up throughout).
    #[test]
    fn random_schedules_preserve_invariants(
        steps in proptest::collection::vec(arb_step(3, 12), 1..60)
    ) {
        let (pump, _spec) = run_schedule(base_config(), steps);
        pump.assert_faillock_exactness();
        pump.assert_up_sites_converged();
    }

    /// With two-step recovery in always-batch mode, every recovered site
    /// converges to zero stale copies, and all sites' databases equal the
    /// spec once everyone is up.
    #[test]
    fn full_recovery_converges_to_spec(
        steps in proptest::collection::vec(arb_step(3, 12), 1..50)
    ) {
        let mut config = base_config();
        config.two_step_recovery = Some(TwoStepRecovery { threshold: 1.0, batch_size: 12 });
        let (mut pump, spec) = run_schedule(config, steps);
        // Bring everyone back up; batch recovery drains all fail-locks.
        for s in 0..3u8 {
            if !pump.engine(SiteId(s)).is_up() {
                pump.recover(SiteId(s));
            }
        }
        pump.settle();
        for s in 0..3u8 {
            let e = pump.engine(SiteId(s));
            prop_assert!(e.is_up());
            prop_assert_eq!(e.own_stale_count(), 0, "site {} still stale", s);
            for item in 0..12u32 {
                let (data, version) = spec.get(&item).copied().unwrap_or((0, 0));
                let v = e.db().get(item).unwrap();
                prop_assert_eq!((v.data, v.version), (data, version),
                    "site {} diverged on item {}", s, item);
            }
        }
        pump.assert_faillock_exactness();
    }

    /// Session numbers never decrease, in any site's vector.
    #[test]
    fn session_monotonicity(
        steps in proptest::collection::vec(arb_step(3, 12), 1..50)
    ) {
        let n_sites = 3u8;
        let db_size = 12u32;
        let mut pump = Pump::new(base_config());
        let mut seen: Vec<Vec<u64>> = vec![vec![1; n_sites as usize]; n_sites as usize];
        let mut next_txn = 1u64;
        for step in steps {
            match step {
                Step::Fail(site) => {
                    let up = (0..n_sites).filter(|s| pump.engine(SiteId(*s)).is_up()).count();
                    if up > 1 && pump.engine(SiteId(site)).is_up() {
                        pump.fail(SiteId(site));
                    }
                }
                Step::Recover(site) => {
                    if !pump.engine(SiteId(site)).is_up() {
                        pump.recover(SiteId(site));
                    }
                }
                Step::Txn { site, ops } => {
                    if pump.engine(SiteId(site)).is_up() {
                        let ops: Vec<Operation> = ops.iter().map(|(w, item, value)| {
                            let item = ItemId(item % db_size);
                            if *w { Operation::Write(item, *value) } else { Operation::Read(item) }
                        }).collect();
                        pump.run_txn(SiteId(site), Transaction::new(TxnId(next_txn), ops));
                        next_txn += 1;
                    }
                }
            }
            for observer in 0..n_sites {
                for subject in 0..n_sites {
                    let s = pump.engine(SiteId(observer)).vector().session(SiteId(subject)).0;
                    let prev = &mut seen[observer as usize][subject as usize];
                    prop_assert!(s >= *prev,
                        "session of {} regressed at {}: {} -> {}", subject, observer, prev, s);
                    *prev = s;
                }
            }
        }
    }

    /// ROWAA safety: a committed write is applied at every operational
    /// site, or that site has the item fail-locked... which cannot happen
    /// for a site that was operational through the commit. Stronger
    /// check: immediately after a commit with all sites up, no fail-lock
    /// exists anywhere for the written items.
    #[test]
    fn commit_with_all_up_leaves_no_faillocks(
        writes in proptest::collection::vec((0u32..12, 1u64..100), 1..5)
    ) {
        let mut pump = Pump::new(base_config());
        let ops: Vec<Operation> = writes.iter()
            .map(|(item, value)| Operation::Write(ItemId(*item), *value))
            .collect();
        let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), ops));
        prop_assert!(report.outcome.is_committed());
        for s in 0..3u8 {
            prop_assert_eq!(pump.engine(SiteId(s)).faillocks().total_set(), 0);
            for (item, value) in &writes {
                // Last writer wins within the txn; just check value matches one of the writes.
                let v = pump.engine(SiteId(s)).db().get(*item).unwrap();
                prop_assert!(v.version == 1);
                let _ = value;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under majority quorum, every committed read returns the latest
    /// committed value of the item, no matter which sites failed and
    /// recovered in between — quorum intersection masks stale copies
    /// without any fail-lock machinery.
    #[test]
    fn quorum_reads_always_see_latest_committed(
        steps in proptest::collection::vec(arb_step(3, 12), 1..60)
    ) {
        let config = ProtocolConfig {
            db_size: 12,
            n_sites: 3,
            strategy: miniraid_core::config::ReplicationStrategy::MajorityQuorum,
            ..ProtocolConfig::default()
        };
        let mut pump = Pump::new(config);
        let mut spec: std::collections::HashMap<u32, (u64, u64)> =
            std::collections::HashMap::new();
        let mut next_txn = 1u64;
        for step in steps {
            match step {
                Step::Fail(site) => {
                    let up = (0..3).filter(|s| pump.engine(SiteId(*s)).is_up()).count();
                    if up > 1 && pump.engine(SiteId(site)).is_up() {
                        pump.fail(SiteId(site));
                    }
                }
                Step::Recover(site) => {
                    if !pump.engine(SiteId(site)).is_up() {
                        pump.recover(SiteId(site));
                    }
                }
                Step::Txn { site, ops } => {
                    if !pump.engine(SiteId(site)).is_up() {
                        continue;
                    }
                    let id = TxnId(next_txn);
                    next_txn += 1;
                    let ops: Vec<Operation> = ops
                        .iter()
                        .map(|(w, item, value)| {
                            let item = ItemId(item % 12);
                            if *w {
                                Operation::Write(item, *value)
                            } else {
                                Operation::Read(item)
                            }
                        })
                        .collect();
                    let txn = Transaction::new(id, ops);
                    let write_set = txn.write_set();
                    let report = pump.run_txn(SiteId(site), txn);
                    if report.outcome.is_committed() {
                        for (item, observed) in &report.read_results {
                            if write_set.iter().any(|(w, _)| w == item) {
                                continue; // reads see pre-txn state
                            }
                            let expect = spec.get(&item.0).copied().unwrap_or((0, 0));
                            prop_assert_eq!(
                                (observed.data, observed.version),
                                expect,
                                "quorum read of {} at site {} saw stale data", item, site
                            );
                        }
                        for (item, value) in write_set {
                            spec.insert(item.0, (value, id.0));
                        }
                    }
                }
            }
        }
        // Quorum mode never touches fail-locks.
        for s in 0..3u8 {
            prop_assert_eq!(pump.engine(SiteId(s)).faillocks().total_set(), 0);
        }
    }
}
