//! Baseline copy-control strategies: plain ROWA and majority quorum,
//! compared against the paper's ROWAA (availability ablation X6).

mod harness;

use harness::Pump;
use miniraid_core::config::{ProtocolConfig, ReplicationStrategy};
use miniraid_core::error::AbortReason;
use miniraid_core::messages::TxnOutcome;
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::{ItemId, SiteId, TxnId};

fn cfg(n_sites: u8, strategy: ReplicationStrategy) -> ProtocolConfig {
    ProtocolConfig {
        db_size: 10,
        n_sites,
        strategy,
        ..ProtocolConfig::default()
    }
}

fn write(item: u32, value: u64) -> Operation {
    Operation::Write(ItemId(item), value)
}

fn read(item: u32) -> Operation {
    Operation::Read(ItemId(item))
}

// ---------------------------------------------------------------- ROWA

#[test]
fn rowa_commits_while_all_sites_up() {
    let mut pump = Pump::new(cfg(3, ReplicationStrategy::Rowa));
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(1, 5)]));
    assert!(report.outcome.is_committed());
    for s in 0..3u8 {
        assert_eq!(pump.engine(SiteId(s)).db().get(1).unwrap().data, 5);
    }
}

#[test]
fn rowa_blocks_writes_when_any_site_is_down() {
    let mut pump = Pump::new(cfg(3, ReplicationStrategy::Rowa));
    pump.fail(SiteId(2));
    // Detection: the first write aborts and marks site 2 down.
    let r1 = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 1)]));
    assert!(!r1.outcome.is_committed());
    // Unlike ROWAA, writes now abort *forever* until site 2 returns —
    // the availability gap the paper's protocol exists to close.
    let r2 = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(0, 1)]));
    assert_eq!(
        r2.outcome,
        TxnOutcome::Aborted(AbortReason::DataUnavailable)
    );
    // Reads (read-one) still work.
    let r3 = pump.run_txn(SiteId(0), Transaction::new(TxnId(3), vec![read(0)]));
    assert!(r3.outcome.is_committed());
    // After recovery, writes work again — and no fail-locks were ever
    // needed (nothing committed while the site was down).
    pump.recover(SiteId(2));
    let r4 = pump.run_txn(SiteId(0), Transaction::new(TxnId(4), vec![write(0, 9)]));
    assert!(r4.outcome.is_committed());
    assert_eq!(pump.engine(SiteId(2)).db().get(0).unwrap().data, 9);
    assert_eq!(pump.engine(SiteId(2)).faillocks().total_set(), 0);
}

// ------------------------------------------------------------- quorum

#[test]
fn quorum_commits_with_majority_up() {
    let mut pump = Pump::new(cfg(3, ReplicationStrategy::MajorityQuorum));
    pump.fail(SiteId(2));
    let r1 = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(1, 7)]));
    assert!(!r1.outcome.is_committed(), "detection abort");
    let r2 = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(1, 7)]));
    assert!(r2.outcome.is_committed(), "2 of 3 sites form a majority");
    assert_eq!(pump.engine(SiteId(1)).db().get(1).unwrap().data, 7);
}

#[test]
fn quorum_blocks_without_majority() {
    let mut pump = Pump::new(cfg(3, ReplicationStrategy::MajorityQuorum));
    pump.fail(SiteId(1));
    pump.fail(SiteId(2));
    // Detect both failures.
    let _ = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 1)]));
    let r = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(0, 1)]));
    assert_eq!(r.outcome, TxnOutcome::Aborted(AbortReason::DataUnavailable));
    // Even reads block: a read quorum is unreachable.
    let r = pump.run_txn(SiteId(0), Transaction::new(TxnId(3), vec![read(0)]));
    assert_eq!(r.outcome, TxnOutcome::Aborted(AbortReason::DataUnavailable));
}

#[test]
fn quorum_reads_mask_stale_copies_without_copiers() {
    let mut pump = Pump::new(cfg(3, ReplicationStrategy::MajorityQuorum));
    pump.fail(SiteId(2));
    let _ = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(4, 44)])); // detect
    let r = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(4, 44)]));
    assert!(r.outcome.is_committed());
    // Site 2 returns with a stale copy of item 4 and NO fail-lock
    // information (quorum mode does not maintain fail-locks)...
    pump.recover(SiteId(2));
    assert_eq!(pump.engine(SiteId(2)).db().get(4).unwrap().version, 0);
    // ... yet a quorum read coordinated at the stale site returns the
    // fresh value: its read quorum includes a fresh copy, and the
    // freshest version wins.
    let r = pump.run_txn(SiteId(2), Transaction::new(TxnId(3), vec![read(4)]));
    assert!(r.outcome.is_committed());
    assert_eq!(r.report_read(0).data, 44);
    assert_eq!(r.stats.copier_requests, 0, "no copier machinery involved");
}

#[test]
fn quorum_read_includes_own_fresh_copy() {
    let mut pump = Pump::new(cfg(3, ReplicationStrategy::MajorityQuorum));
    let r = pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(2, 5)]));
    assert!(r.outcome.is_committed());
    let r = pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![read(2)]));
    assert!(r.outcome.is_committed());
    assert_eq!(r.report_read(0).data, 5);
}

#[test]
fn quorum_never_maintains_faillocks() {
    let mut pump = Pump::new(cfg(3, ReplicationStrategy::MajorityQuorum));
    pump.fail(SiteId(2));
    let _ = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 1)]));
    let r = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(0, 1)]));
    assert!(r.outcome.is_committed());
    for s in 0..3u8 {
        assert_eq!(pump.engine(SiteId(s)).faillocks().total_set(), 0);
    }
}

// helper on TxnReport for brevity
trait ReadAt {
    fn report_read(&self, idx: usize) -> miniraid_core::ItemValue;
}
impl ReadAt for miniraid_core::TxnReport {
    fn report_read(&self, idx: usize) -> miniraid_core::ItemValue {
        self.read_results[idx].1
    }
}

#[test]
fn quorum_straggler_response_after_quorum_is_ignored() {
    use miniraid_core::engine::Input;
    use miniraid_core::messages::Message;
    // 5 sites: majority 3, so 2 peer responses are needed; the 3rd and
    // 4th arrive after the quorum was reached and must be no-ops.
    let mut pump = Pump::new(cfg(5, ReplicationStrategy::MajorityQuorum));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(3, 9)]));
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![read(3)]));
    assert!(report.outcome.is_committed());
    assert_eq!(report.read_results[0].1.data, 9);
    // A forged straggler response with a bogus fresher version must not
    // corrupt anything (the request id is long gone).
    let out = pump.engines[0].handle_owned(Input::Deliver {
        from: SiteId(4),
        msg: Message::ReadResponse {
            req: miniraid_core::ids::ReqId(12345),
            ok: true,
            values: vec![(ItemId(3), miniraid_core::ItemValue::new(666, 999))],
        },
    });
    assert!(out.is_empty());
    assert_eq!(pump.engine(SiteId(0)).db().get(3).unwrap().data, 9);
}

#[test]
fn quorum_read_timeout_tolerated_while_quorum_reachable() {
    // 5 sites, one silently dead: the quorum read to it times out, but
    // 3 of 5 (self + 2 peers) still form a read quorum — commit.
    let mut pump = Pump::new(cfg(5, ReplicationStrategy::MajorityQuorum));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(2, 7)]));
    pump.fail(SiteId(4)); // silent
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![read(2)]));
    assert!(report.outcome.is_committed(), "{:?}", report.outcome);
    assert_eq!(report.read_results[0].1.data, 7);
}
