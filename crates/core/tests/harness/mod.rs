//! A minimal synchronous pump for driving several [`SiteEngine`]s in
//! tests, independent of the full simulator crate.
//!
//! Policy: after each injected command the cluster is run to quiescence —
//! all deliveries drained first; when the queue is empty, any armed
//! timers fire once (the engine is stale-safe, so firing a timer whose
//! condition resolved is a no-op); repeat until no deliveries remain and
//! firing timers produces none.

// Each test binary compiles this module and uses its own API subset.
#![allow(dead_code)]

use std::collections::VecDeque;

use miniraid_core::engine::{Input, Output, SiteEngine, TimerId};
use miniraid_core::messages::{Command, Message, TxnReport};
use miniraid_core::ops::Transaction;
use miniraid_core::partial::ReplicationMap;
use miniraid_core::{ProtocolConfig, SiteId};

/// Non-send outputs observed while pumping.
#[derive(Debug, Default)]
pub struct Observed {
    pub reports: Vec<TxnReport>,
    pub became_operational: Vec<SiteId>,
    pub data_recovered: Vec<SiteId>,
    pub recovery_failed: Vec<SiteId>,
}

pub struct Pump {
    pub engines: Vec<SiteEngine>,
    queue: VecDeque<(SiteId, SiteId, Message)>, // (to, from, msg)
    /// Armed timers, globally FIFO: a timer armed earlier fires earlier
    /// (real drivers additionally give participant timeouts longer
    /// durations than coordinator timeouts).
    timers: VecDeque<(SiteId, TimerId)>,
    pub observed: Observed,
    /// Messages delivered in total (for traffic assertions).
    pub delivered: usize,
}

impl Pump {
    #[allow(dead_code)] // each test binary uses its own subset of the API
    pub fn new(config: ProtocolConfig) -> Self {
        let engines = (0..config.n_sites)
            .map(|i| SiteEngine::new(SiteId(i), config.clone()))
            .collect::<Vec<_>>();
        Self::from_engines(engines)
    }

    #[allow(dead_code)] // used by protocol.rs, not by every test binary
    pub fn with_replication(config: ProtocolConfig, map: ReplicationMap) -> Self {
        let engines = (0..config.n_sites)
            .map(|i| SiteEngine::with_replication(SiteId(i), config.clone(), map.clone()))
            .collect::<Vec<_>>();
        Self::from_engines(engines)
    }

    fn from_engines(engines: Vec<SiteEngine>) -> Self {
        Pump {
            engines,
            queue: VecDeque::new(),
            timers: VecDeque::new(),
            observed: Observed::default(),
            delivered: 0,
        }
    }

    fn absorb(&mut self, site: SiteId, outputs: Vec<Output>) {
        for out in outputs {
            match out {
                Output::Send { to, msg } => self.queue.push_back((to, site, msg)),
                Output::SetTimer(id) => self.timers.push_back((site, id)),
                Output::Report(r) => self.observed.reports.push(r),
                Output::BecameOperational { .. } => self.observed.became_operational.push(site),
                Output::DataRecoveryComplete => self.observed.data_recovered.push(site),
                Output::RecoveryFailed => self.observed.recovery_failed.push(site),
                Output::Work(_) | Output::Persist { .. } => {}
            }
        }
    }

    fn drain_deliveries(&mut self) {
        while let Some((to, from, msg)) = self.queue.pop_front() {
            self.delivered += 1;
            let outputs = self.engines[to.index()].handle_owned(Input::Deliver { from, msg });
            self.absorb(to, outputs);
        }
    }

    /// Run to quiescence: drain all deliveries; then fire the oldest
    /// armed timer; repeat. The engine is stale-safe, so firing a timer
    /// whose condition already resolved is a no-op.
    pub fn settle(&mut self) {
        loop {
            self.drain_deliveries();
            match self.timers.pop_front() {
                Some((site, id)) => {
                    let outputs = self.engines[site.index()].handle_owned(Input::Timer(id));
                    self.absorb(site, outputs);
                }
                None => break,
            }
        }
    }

    /// Inject one protocol message as if delivered from `from`, then
    /// drain all resulting deliveries WITHOUT firing timers — for paths
    /// where a timer firing would be premature rather than stale-safe: a
    /// cross-shard branch parked at its local commit point is a
    /// legitimate indefinite wait, and firing the participant timeout
    /// there models a coordinator failure, not quiescence.
    #[allow(dead_code)] // each test binary uses its own subset of the API
    pub fn deliver(&mut self, to: SiteId, from: SiteId, msg: Message) {
        self.queue.push_back((to, from, msg));
        self.drain_deliveries();
    }

    pub fn command(&mut self, site: SiteId, cmd: Command) {
        let outputs = self.engines[site.index()].handle_owned(Input::Control(cmd));
        self.absorb(site, outputs);
        self.settle();
    }

    pub fn fail(&mut self, site: SiteId) {
        self.command(site, Command::Fail);
    }

    pub fn recover(&mut self, site: SiteId) {
        self.command(site, Command::Recover);
    }

    pub fn run_txn(&mut self, site: SiteId, txn: Transaction) -> TxnReport {
        let id = txn.id;
        self.command(site, Command::Begin(txn));
        self.observed
            .reports
            .iter()
            .rev()
            .find(|r| r.txn == id)
            .expect("transaction reported")
            .clone()
    }

    pub fn engine(&self, site: SiteId) -> &SiteEngine {
        &self.engines[site.index()]
    }

    /// All operational sites' databases are identical.
    #[allow(dead_code)] // not every test binary uses each assertion
    pub fn assert_up_sites_converged(&self) {
        let ups: Vec<&SiteEngine> = self.engines.iter().filter(|e| e.is_up()).collect();
        assert!(!ups.is_empty(), "no operational site");
        // With partial replication, compare only commonly held items.
        for a in &ups {
            for b in &ups {
                for raw in 0..a.config().db_size {
                    let item = miniraid_core::ItemId(raw);
                    if a.replication().holds(item, a.id())
                        && b.replication().holds(item, b.id())
                        && !a.faillocks().is_locked(item, a.id())
                        && !b.faillocks().is_locked(item, b.id())
                    {
                        assert_eq!(
                            a.db().get(raw).unwrap(),
                            b.db().get(raw).unwrap(),
                            "divergence on item {raw} between {} and {}",
                            a.id(),
                            b.id()
                        );
                    }
                }
            }
        }
    }

    /// Fail-lock exactness: on every operational site's table, the bit
    /// for (item, k) is set iff site k's copy is older than the freshest
    /// copy anywhere. Requires `piggyback_clears` off (the optimization
    /// can leave conservative false positives at peers after aborts).
    #[allow(dead_code)] // not every test binary uses each assertion
    pub fn assert_faillock_exactness(&self) {
        let n = self.engines.len();
        for raw in 0..self.engines[0].config().db_size {
            let item = miniraid_core::ItemId(raw);
            let holders: Vec<usize> = (0..n)
                .filter(|i| self.engines[*i].replication().holds(item, SiteId(*i as u8)))
                .collect();
            let freshest = holders
                .iter()
                .map(|i| self.engines[*i].db().get(raw).unwrap().version)
                .max()
                .unwrap_or(0);
            for observer in self.engines.iter().filter(|e| e.is_up()) {
                for &k in &holders {
                    let stale = self.engines[k].db().get(raw).unwrap().version < freshest;
                    let locked = observer.faillocks().is_locked(item, SiteId(k as u8));
                    assert_eq!(
                        locked, stale,
                        "exactness violated at observer {} for (item {raw}, site {k}): locked={locked} stale={stale}",
                        observer.id()
                    );
                }
            }
        }
    }
}
