//! Protocol-level scenario tests: several engines wired through a
//! synchronous pump, exercising every path of the paper's Appendix A and
//! the control transactions.

mod harness;

use harness::Pump;
use miniraid_core::config::{ProtocolConfig, TwoStepRecovery};
use miniraid_core::error::AbortReason;
use miniraid_core::messages::{Command, TxnOutcome};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::partial::ReplicationMap;
use miniraid_core::session::SiteStatus;
use miniraid_core::{ItemId, SiteId, TxnId};

fn cfg(n_sites: u8) -> ProtocolConfig {
    ProtocolConfig {
        db_size: 10,
        n_sites,
        ..ProtocolConfig::default()
    }
}

fn write(item: u32, value: u64) -> Operation {
    Operation::Write(ItemId(item), value)
}

fn read(item: u32) -> Operation {
    Operation::Read(ItemId(item))
}

#[test]
fn four_site_commit_replicates_everywhere() {
    let mut pump = Pump::new(cfg(4));
    let report = pump.run_txn(
        SiteId(1),
        Transaction::new(TxnId(1), vec![write(3, 99), read(3), write(7, 50)]),
    );
    assert_eq!(report.outcome, TxnOutcome::Committed);
    for i in 0..4 {
        assert_eq!(pump.engine(SiteId(i)).db().get(3).unwrap().data, 99);
        assert_eq!(pump.engine(SiteId(i)).db().get(7).unwrap().data, 50);
    }
    // Reads observe the pre-transaction state (writes apply at commit).
    assert_eq!(report.read_results.len(), 1);
    assert_eq!(report.read_results[0].0, ItemId(3));
    pump.assert_up_sites_converged();
    pump.assert_faillock_exactness();
}

#[test]
fn read_only_transaction_commits_locally_without_messages() {
    let mut pump = Pump::new(cfg(4));
    let before = pump.delivered;
    let report = pump.run_txn(
        SiteId(0),
        Transaction::new(TxnId(1), vec![read(2), read(5)]),
    );
    assert_eq!(report.outcome, TxnOutcome::Committed);
    assert_eq!(pump.delivered, before, "no messages for a read-only txn");
    assert_eq!(report.read_results.len(), 2);
}

#[test]
fn read_only_transaction_uses_two_phase_when_configured() {
    let mut config = cfg(3);
    config.two_phase_read_only = true;
    let mut pump = Pump::new(config);
    let before = pump.delivered;
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![read(2)]));
    assert_eq!(report.outcome, TxnOutcome::Committed);
    assert!(pump.delivered > before, "2PC traffic expected");
}

#[test]
fn first_txn_after_undetected_failure_aborts_and_announces() {
    let mut pump = Pump::new(cfg(4));
    pump.fail(SiteId(2));
    // Site 0 still believes site 2 is up: phase one times out, the txn
    // aborts, and a type-2 control transaction marks site 2 down
    // everywhere.
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 1)]));
    assert_eq!(
        report.outcome,
        TxnOutcome::Aborted(AbortReason::ParticipantFailed)
    );
    for i in [0u8, 1, 3] {
        assert!(
            !pump.engine(SiteId(i)).vector().is_up(SiteId(2)),
            "site {i} should have learned of the failure"
        );
    }
    assert_eq!(pump.engine(SiteId(0)).metrics().control_type2, 1);

    // The next transaction succeeds among the remaining sites and sets
    // fail-locks for the down site.
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(4, 9)]));
    assert_eq!(report.outcome, TxnOutcome::Committed);
    assert_eq!(report.stats.faillocks_set, 1);
    for i in [0u8, 1, 3] {
        assert!(pump
            .engine(SiteId(i))
            .faillocks()
            .is_locked(ItemId(4), SiteId(2)));
    }
    pump.assert_faillock_exactness();
}

#[test]
fn aborted_transaction_leaves_no_writes_anywhere() {
    let mut pump = Pump::new(cfg(3));
    pump.fail(SiteId(2));
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(5, 123)]));
    assert!(!report.outcome.is_committed());
    for i in 0..3 {
        assert_eq!(pump.engine(SiteId(i)).db().get(5).unwrap().data, 0);
    }
}

#[test]
fn recovery_type1_installs_state_and_serves_fresh_items() {
    let mut pump = Pump::new(cfg(2));
    pump.fail(SiteId(0));
    // Detect the failure, then update items 1 and 2 on site 1.
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(1, 11)]));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![write(1, 11)]));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(3), vec![write(2, 22)]));
    pump.recover(SiteId(0));
    assert_eq!(pump.observed.became_operational, vec![SiteId(0)]);
    assert!(pump.engine(SiteId(0)).is_up());
    // The recovering site learned which of its copies are stale.
    let fl = pump.engine(SiteId(0)).faillocks();
    assert!(fl.is_locked(ItemId(1), SiteId(0)));
    assert!(fl.is_locked(ItemId(2), SiteId(0)));
    assert!(!fl.is_locked(ItemId(3), SiteId(0)));
    // Up-to-date items are served immediately; a read of item 3 commits
    // without any copier.
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(4), vec![read(3)]));
    assert!(report.outcome.is_committed());
    assert_eq!(report.stats.copier_requests, 0);
}

#[test]
fn copier_transaction_refreshes_stale_read_and_clears_everywhere() {
    let mut pump = Pump::new(cfg(2));
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(1, 77)])); // detection abort
    pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![write(1, 77)]));
    pump.recover(SiteId(0));
    // Site 0 reads item 1, which is fail-locked for it: a copier
    // transaction refreshes it first.
    let report = pump.run_txn(SiteId(0), Transaction::new(TxnId(3), vec![read(1)]));
    assert!(report.outcome.is_committed());
    assert_eq!(report.stats.copier_requests, 1);
    assert_eq!(report.read_results[0].1.data, 77);
    assert_eq!(pump.engine(SiteId(0)).db().get(1).unwrap().data, 77);
    // Fail-locks cleared at both sites (the "special transaction").
    for i in 0..2 {
        assert!(!pump
            .engine(SiteId(i))
            .faillocks()
            .is_locked(ItemId(1), SiteId(0)));
    }
    // Site 0 is now fully recovered.
    assert_eq!(pump.observed.data_recovered, vec![SiteId(0)]);
    pump.assert_up_sites_converged();
    pump.assert_faillock_exactness();
}

#[test]
fn writes_refresh_stale_copies_without_copiers() {
    let mut pump = Pump::new(cfg(2));
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(1, 5)]));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![write(1, 5)]));
    pump.recover(SiteId(0));
    // A write to the stale item from the other site refreshes it: the
    // fail-lock is cleared by commit maintenance, no copier needed.
    let report = pump.run_txn(SiteId(1), Transaction::new(TxnId(3), vec![write(1, 6)]));
    assert!(report.outcome.is_committed());
    assert_eq!(report.stats.copier_requests, 0);
    assert!(!pump
        .engine(SiteId(0))
        .faillocks()
        .is_locked(ItemId(1), SiteId(0)));
    assert_eq!(pump.engine(SiteId(0)).db().get(1).unwrap().data, 6);
    assert_eq!(pump.observed.data_recovered, vec![SiteId(0)]);
}

#[test]
fn data_unavailable_abort_when_only_source_is_down() {
    // The paper's Experiment 3 scenario 1: overlapping failures make
    // some items totally unavailable, forcing aborts.
    let mut pump = Pump::new(cfg(2));
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(1, 5)])); // detect
    pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![write(1, 5)]));
    pump.recover(SiteId(0));
    pump.fail(SiteId(1));
    // Site 0's copy of item 1 is stale and the only up-to-date copy just
    // failed: reading item 1 must abort.
    let r1 = pump.run_txn(SiteId(0), Transaction::new(TxnId(3), vec![read(1)]));
    // The first attempt may abort for ParticipantFailed/CopierTargetFailed
    // (site 1's failure is undetected when the copier is routed to it).
    assert!(!r1.outcome.is_committed());
    let r2 = pump.run_txn(SiteId(0), Transaction::new(TxnId(4), vec![read(1)]));
    assert_eq!(
        r2.outcome,
        TxnOutcome::Aborted(AbortReason::DataUnavailable)
    );
    // But up-to-date items remain available (ROWAA availability).
    let r3 = pump.run_txn(
        SiteId(0),
        Transaction::new(TxnId(5), vec![read(3), write(4, 1)]),
    );
    assert!(r3.outcome.is_committed());
}

#[test]
fn recovery_fails_with_no_operational_peer() {
    let mut pump = Pump::new(cfg(2));
    pump.fail(SiteId(0));
    pump.fail(SiteId(1));
    pump.recover(SiteId(0));
    assert_eq!(pump.observed.recovery_failed, vec![SiteId(0)]);
    assert_eq!(pump.engine(SiteId(0)).status(), SiteStatus::Down);
    // Once a peer is back... (site 1 cannot recover either — no peer up;
    // this system is stuck by design without both being restarted, so
    // verify the failure is stable rather than a hang).
    pump.recover(SiteId(1));
    assert_eq!(pump.observed.recovery_failed, vec![SiteId(0), SiteId(1)]);
}

#[test]
fn session_numbers_increment_per_recovery() {
    let mut pump = Pump::new(cfg(2));
    assert_eq!(pump.engine(SiteId(0)).session().0, 1);
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(0, 1)])); // detect
    pump.recover(SiteId(0));
    assert_eq!(pump.engine(SiteId(0)).session().0, 2);
    assert_eq!(
        pump.engine(SiteId(1)).vector().session(SiteId(0)).0,
        2,
        "peer learned the new session"
    );
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(2), vec![write(0, 2)]));
    pump.recover(SiteId(0));
    assert_eq!(pump.engine(SiteId(0)).session().0, 3);
}

#[test]
fn two_step_recovery_batch_mode_drains_faillocks_proactively() {
    let mut config = cfg(2);
    config.two_step_recovery = Some(TwoStepRecovery {
        threshold: 1.0, // always batch
        batch_size: 3,
    });
    let mut pump = Pump::new(config);
    pump.fail(SiteId(0));
    // Dirty several items.
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(0, 1)])); // detect
    for (txn_id, item) in (2..).zip(0..6) {
        pump.run_txn(
            SiteId(1),
            Transaction::new(TxnId(txn_id), vec![write(item, 100 + item as u64)]),
        );
    }
    pump.recover(SiteId(0));
    // Batch copiers refresh everything without any database transaction
    // arriving at the recovering site.
    assert_eq!(pump.observed.data_recovered, vec![SiteId(0)]);
    assert_eq!(pump.engine(SiteId(0)).own_stale_count(), 0);
    for item in 0..6 {
        assert_eq!(
            pump.engine(SiteId(0)).db().get(item).unwrap().data,
            100 + item as u64
        );
    }
    assert!(pump.engine(SiteId(0)).metrics().copier_requests >= 2);
    pump.assert_up_sites_converged();
    pump.assert_faillock_exactness();
}

#[test]
#[allow(clippy::explicit_counter_loop)]
fn on_demand_step_one_until_threshold_then_batch() {
    let mut config = cfg(10.try_into().unwrap());
    config.db_size = 10;
    config.n_sites = 2;
    config.two_step_recovery = Some(TwoStepRecovery {
        threshold: 0.3,
        batch_size: 2,
    });
    let mut pump = Pump::new(config);
    pump.fail(SiteId(0));
    pump.run_txn(SiteId(1), Transaction::new(TxnId(1), vec![write(0, 1)])); // detect
    let mut txn_id = 2;
    for item in 0..5 {
        pump.run_txn(
            SiteId(1),
            Transaction::new(TxnId(txn_id), vec![write(item, 50 + item as u64)]),
        );
        txn_id += 1;
    }
    pump.recover(SiteId(0));
    // 5 of 10 items stale (50 % > 30 % threshold): batch mode must NOT
    // engage yet.
    assert!(pump.observed.data_recovered.is_empty());
    assert_eq!(pump.engine(SiteId(0)).own_stale_count(), 5);
    // Refresh items one by one via reads until the fraction drops to the
    // threshold; then batch mode finishes the rest.
    let report = pump.run_txn(
        SiteId(0),
        Transaction::new(TxnId(txn_id), vec![read(0), read(1)]),
    );
    assert!(report.outcome.is_committed());
    // 3 of 10 stale now (30 % ≤ threshold): batch mode kicks in and
    // drains the remainder.
    assert_eq!(pump.observed.data_recovered, vec![SiteId(0)]);
    assert_eq!(pump.engine(SiteId(0)).own_stale_count(), 0);
}

#[test]
fn queued_transactions_run_in_order() {
    let mut pump = Pump::new(cfg(3));
    // Inject two Begin commands without settling in between: engine
    // queues the second behind the first.
    let t1 = Transaction::new(TxnId(1), vec![write(0, 1)]);
    let t2 = Transaction::new(TxnId(2), vec![write(0, 2)]);
    let out1 =
        pump.engines[0].handle_owned(miniraid_core::engine::Input::Control(Command::Begin(t1)));
    let out2 =
        pump.engines[0].handle_owned(miniraid_core::engine::Input::Control(Command::Begin(t2)));
    assert!(out2.is_empty(), "second txn queued silently");
    for o in out1 {
        if let miniraid_core::engine::Output::Send { .. } = o {}
    }
    // Re-inject outputs through the pump by settling a no-op command.
    // (Simplest: drive the queue via a fresh command on another site.)
    // Instead, rebuild: drive both via the pump API.
    let mut pump = Pump::new(cfg(3));
    pump.command(
        SiteId(0),
        Command::Begin(Transaction::new(TxnId(1), vec![write(0, 1)])),
    );
    pump.command(
        SiteId(0),
        Command::Begin(Transaction::new(TxnId(2), vec![write(0, 2)])),
    );
    assert_eq!(pump.observed.reports.len(), 2);
    assert_eq!(pump.observed.reports[0].txn, TxnId(1));
    assert_eq!(pump.observed.reports[1].txn, TxnId(2));
    // Final value is from the later transaction.
    assert_eq!(
        pump.engine(SiteId(1)).db().get(0).unwrap(),
        miniraid_core::ItemValue::new(2, 2)
    );
}

#[test]
fn stale_failure_announcement_does_not_mark_recovered_site_down() {
    let mut pump = Pump::new(cfg(3));
    pump.fail(SiteId(2));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 1)])); // detect, CT2
    pump.recover(SiteId(2));
    assert!(pump.engine(SiteId(0)).vector().is_up(SiteId(2)));
    // Deliver a stale failure announcement (session 1) directly.
    let out = pump.engines[0].handle_owned(miniraid_core::engine::Input::Deliver {
        from: SiteId(1),
        msg: miniraid_core::Message::FailureAnnounce {
            failed: vec![(SiteId(2), miniraid_core::SessionNumber(1))],
        },
    });
    drop(out);
    assert!(
        pump.engine(SiteId(0)).vector().is_up(SiteId(2)),
        "stale announcement ignored thanks to session numbers"
    );
}

#[test]
fn partial_replication_remote_read_and_ct3_backup() {
    // 3 sites, each item held by 2 of them.
    let mut config = cfg(3);
    config.db_size = 6;
    config.backup_on_last_copy = true;
    let map = ReplicationMap::round_robin(6, 3, 2);
    let mut pump = Pump::with_replication(config, map);

    // Item 0 is held by sites 0 and 1. Site 2 reads it remotely.
    let report = pump.run_txn(SiteId(2), Transaction::new(TxnId(1), vec![read(0)]));
    assert!(report.outcome.is_committed());

    // Write to item 0 from site 0, then fail site 1: site 0 now holds
    // the last operational up-to-date copy of item 0 — a type-3 control
    // transaction must create a backup on site 2.
    pump.run_txn(SiteId(0), Transaction::new(TxnId(2), vec![write(0, 42)]));
    pump.fail(SiteId(1));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(3), vec![write(5, 1)])); // detection abort txn
    pump.settle();
    assert!(pump.engine(SiteId(0)).metrics().control_type3 >= 1);
    assert!(pump
        .engine(SiteId(2))
        .replication()
        .holds(ItemId(0), SiteId(2)));
    assert_eq!(pump.engine(SiteId(2)).db().get(0).unwrap().data, 42);

    // Even if site 0 now fails, item 0 stays available via the backup.
    pump.fail(SiteId(0));
    let r = pump.run_txn(SiteId(2), Transaction::new(TxnId(4), vec![read(0)]));
    // First txn may abort on detection; retry must serve the read.
    let r = if r.outcome.is_committed() {
        r
    } else {
        pump.run_txn(SiteId(2), Transaction::new(TxnId(5), vec![read(0)]))
    };
    assert!(r.outcome.is_committed());
    assert_eq!(r.read_results[0].1.data, 42);
}

#[test]
fn metrics_track_protocol_activity() {
    let mut pump = Pump::new(cfg(2));
    pump.run_txn(SiteId(0), Transaction::new(TxnId(1), vec![write(0, 1)]));
    let m0 = pump.engine(SiteId(0)).metrics();
    assert_eq!(m0.txns_coordinated, 1);
    assert_eq!(m0.txns_committed, 1);
    assert!(m0.msgs_sent >= 2); // CopyUpdate + Commit
    let m1 = pump.engine(SiteId(1)).metrics();
    assert_eq!(m1.txns_participated, 1);
    assert!(m1.msgs_sent >= 2); // UpdateAck + CommitAck
}
