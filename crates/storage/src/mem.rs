//! The in-memory table each site keeps — the paper's storage mode.
//!
//! The database is a fixed, dense universe of items (`0..size`), fully
//! replicated in the paper's configuration. Every copy starts at
//! [`ItemValue::INITIAL`], matching the paper's "initially both sites were
//! up with consistent and up-to-date copies".

use crate::{ItemValue, Result, StorageError};

/// A dense in-memory table of versioned items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStore {
    items: Vec<ItemValue>,
}

impl MemStore {
    /// Create a table of `size` items, all at the initial value.
    pub fn new(size: u32) -> Self {
        MemStore {
            items: vec![ItemValue::INITIAL; size as usize],
        }
    }

    /// Number of items in the table's universe.
    pub fn size(&self) -> u32 {
        self.items.len() as u32
    }

    /// Read one item.
    pub fn get(&self, item: u32) -> Result<ItemValue> {
        self.items
            .get(item as usize)
            .copied()
            .ok_or(StorageError::OutOfRange {
                item,
                size: self.size(),
            })
    }

    /// Overwrite one item.
    pub fn put(&mut self, item: u32, value: ItemValue) -> Result<()> {
        let size = self.size();
        match self.items.get_mut(item as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(StorageError::OutOfRange { item, size }),
        }
    }

    /// Overwrite one item only if `value` is fresher than the stored copy.
    ///
    /// Returns true if the write was applied. Copier transactions use this
    /// so a stale refresh can never clobber a newer committed value.
    pub fn put_if_fresher(&mut self, item: u32, value: ItemValue) -> Result<bool> {
        let current = self.get(item)?;
        if value.version > current.version {
            self.put(item, value)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Iterate over `(item, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, ItemValue)> + '_ {
        self.items.iter().enumerate().map(|(i, v)| (i as u32, *v))
    }

    /// A digest of the full table, for cheap consistency comparison
    /// between replicas (used by tests and the experiment harness).
    pub fn digest(&self) -> u64 {
        // FNV-1a over the item stream; collision-resistant enough for
        // replica comparison in tests, and fully deterministic.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.items {
            for word in [v.data, v.version] {
                for byte in word.to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        h
    }

    /// Items where `self` is staler than `other` (lower version).
    pub fn stale_items_vs(&self, other: &MemStore) -> Vec<u32> {
        self.items
            .iter()
            .zip(other.items.iter())
            .enumerate()
            .filter(|(_, (mine, theirs))| mine.version < theirs.version)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_store_is_initial_everywhere() {
        let s = MemStore::new(50);
        assert_eq!(s.size(), 50);
        for i in 0..50 {
            assert_eq!(s.get(i).unwrap(), ItemValue::INITIAL);
        }
    }

    #[test]
    fn put_then_get_roundtrips() {
        let mut s = MemStore::new(10);
        s.put(3, ItemValue::new(42, 7)).unwrap();
        assert_eq!(s.get(3).unwrap(), ItemValue::new(42, 7));
        assert_eq!(s.get(4).unwrap(), ItemValue::INITIAL);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut s = MemStore::new(10);
        assert!(matches!(
            s.get(10),
            Err(StorageError::OutOfRange { item: 10, size: 10 })
        ));
        assert!(s.put(11, ItemValue::INITIAL).is_err());
    }

    #[test]
    fn put_if_fresher_rejects_stale_writes() {
        let mut s = MemStore::new(4);
        s.put(0, ItemValue::new(5, 10)).unwrap();
        assert!(!s.put_if_fresher(0, ItemValue::new(9, 9)).unwrap());
        assert_eq!(s.get(0).unwrap(), ItemValue::new(5, 10));
        assert!(s.put_if_fresher(0, ItemValue::new(9, 11)).unwrap());
        assert_eq!(s.get(0).unwrap(), ItemValue::new(9, 11));
    }

    #[test]
    fn put_if_fresher_rejects_equal_version() {
        let mut s = MemStore::new(1);
        s.put(0, ItemValue::new(5, 10)).unwrap();
        assert!(!s.put_if_fresher(0, ItemValue::new(6, 10)).unwrap());
    }

    #[test]
    fn digest_distinguishes_contents_and_matches_for_equal_tables() {
        let mut a = MemStore::new(20);
        let mut b = MemStore::new(20);
        assert_eq!(a.digest(), b.digest());
        a.put(7, ItemValue::new(1, 1)).unwrap();
        assert_ne!(a.digest(), b.digest());
        b.put(7, ItemValue::new(1, 1)).unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn stale_items_vs_reports_lower_versions_only() {
        let mut a = MemStore::new(5);
        let mut b = MemStore::new(5);
        b.put(1, ItemValue::new(0, 2)).unwrap();
        b.put(3, ItemValue::new(0, 9)).unwrap();
        a.put(3, ItemValue::new(0, 9)).unwrap();
        a.put(4, ItemValue::new(0, 1)).unwrap(); // a fresher than b
        assert_eq!(a.stale_items_vs(&b), vec![1]);
        assert_eq!(b.stale_items_vs(&a), vec![4]);
    }

    #[test]
    fn iter_covers_all_items_in_order() {
        let mut s = MemStore::new(3);
        s.put(2, ItemValue::new(8, 1)).unwrap();
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2], (2, ItemValue::new(8, 1)));
    }
}
