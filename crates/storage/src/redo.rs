//! REDO-only write-ahead logging with group commit and instant restart.
//!
//! The legacy [`crate::wal`] module frames a committed transaction as
//! `Begin / Write* / Commit` and fsyncs once per transaction. This module
//! replaces that on the production path with the design of Sauer &
//! Härder's single-pass REDO recovery:
//!
//! * **Self-contained commit records.** One [`RedoRecord::Commit`] frame
//!   carries a transaction's whole write set (plus the fail-lock words it
//!   changed). Uncommitted work never touches the log, so there is no
//!   Begin/Abort framing and no undo pass — replay is a single forward
//!   scan of intact frames.
//! * **Group commit.** [`GroupCommitWal::append_commit`] buffers; an
//!   explicit [`GroupCommitWal::sync`] makes every buffered record durable
//!   with one fsync. The caller batches appends from all in-flight
//!   transactions (flush on batch size or linger — policy lives in the
//!   site loop, driven by `ProtocolConfig`).
//! * **Per-item log chains.** Every write in a commit record stores the
//!   file offset of the previous commit record that wrote the same item
//!   ([`NO_PREV`] if none). The writer maintains the chain heads in
//!   memory; a recovery scan rebuilds them without decoding values. The
//!   committed history of one item is then reachable by walking its chain
//!   backwards — no full-log scan per item.
//! * **Instant restart.** [`scan`] validates frames and rebuilds chain
//!   heads, fail-locks, and the session number, but does **not** apply
//!   item values. The resulting [`LazyImage`] hydrates item values on
//!   demand (a read of a not-yet-replayed item decodes only that item's
//!   chain head) or incrementally in the background via
//!   [`LazyImage::take_next`]. A restarted site is operational as soon as
//!   the scan finishes.
//!
//! Frame format is shared with the legacy WAL —
//! `[u32 payload_len][u32 crc32(payload)][payload]`, little-endian, replay
//! stopping at the first corrupt or truncated frame — but record tags live
//! in a disjoint namespace (`0x21..`), so a legacy log is never misread as
//! a REDO log (and vice versa).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::checksum::crc32;
use crate::{ItemValue, Result, StorageError};

/// Chain terminator: "no earlier commit record wrote this item".
pub const NO_PREV: u64 = u64::MAX;

const TAG_COMMIT: u8 = 0x21;
const TAG_FAILLOCKS: u8 = 0x22;
const TAG_SESSION: u8 = 0x23;
const TAG_CHECKPOINT: u8 = 0x24;

/// One decoded REDO record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoRecord {
    /// A committed transaction: its write set and the fail-lock words it
    /// changed, in one self-contained frame.
    Commit(CommitRecord),
    /// Standalone fail-lock words (clear-fail-lock traffic not attached
    /// to a commit). Last write per item wins on replay.
    FailLocks(Vec<(u32, u64)>),
    /// The site's own session number (last write wins on replay).
    Session(u64),
    /// A snapshot covering everything up to `txn` exists; a fresh log
    /// starts with this marker.
    Checkpoint(u64),
}

/// A committed transaction's REDO frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Committing transaction id.
    pub txn: u64,
    /// The write set.
    pub writes: Vec<CommitWrite>,
    /// Fail-lock words changed by this commit.
    pub faillocks: Vec<(u32, u64)>,
}

/// One write inside a [`CommitRecord`], with its backward chain pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitWrite {
    /// Item written.
    pub item: u32,
    /// Value written.
    pub value: ItemValue,
    /// File offset of the previous commit record that wrote `item`
    /// ([`NO_PREV`] if none). Offsets address the frame header.
    pub prev: u64,
}

/// Cumulative writer-side counters, shared via `Arc` so a benchmark (or
/// metrics exposition) can observe them after the store moves into a
/// site thread.
#[derive(Debug, Default)]
pub struct WalCounters {
    /// Number of fsync (`fdatasync`) calls issued.
    pub fsyncs: AtomicU64,
    /// Commit records appended.
    pub commits: AtomicU64,
    /// Records of any kind appended.
    pub records: AtomicU64,
    /// Framed bytes appended.
    pub bytes: AtomicU64,
}

impl WalCounters {
    /// fsyncs issued so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Commit records appended so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Framed bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Result of scanning a REDO log's intact prefix.
#[derive(Debug, Clone)]
pub struct ScanState {
    /// The intact byte prefix of the log (everything after it is a torn
    /// or truncated tail from a crash mid-append).
    pub raw: Vec<u8>,
    /// Per-item chain heads: offset of the newest intact commit record
    /// writing each item ([`NO_PREV`] if none).
    pub heads: Vec<u64>,
    /// Final fail-lock word per item (commit-attached and standalone
    /// records combined, last write wins).
    pub faillocks: std::collections::HashMap<u32, u64>,
    /// Last logged session number (0 = never logged).
    pub session: u64,
    /// Highest committed transaction id in the log (including the
    /// checkpoint marker's covering id).
    pub last_txn: u64,
    /// Number of intact records scanned.
    pub records: u64,
}

impl ScanState {
    /// An empty-log scan.
    pub fn empty(db_size: u32) -> ScanState {
        ScanState {
            raw: Vec::new(),
            heads: vec![NO_PREV; db_size as usize],
            faillocks: std::collections::HashMap::new(),
            session: 0,
            last_txn: 0,
            records: 0,
        }
    }
}

/// Decode one record payload. `offset` is used only for error reports.
pub fn decode_record(payload: &[u8], offset: u64) -> Result<RedoRecord> {
    let corrupt = |reason| StorageError::Corrupt { offset, reason };
    let mut p = payload;
    let take = |p: &mut &[u8], n: usize, reason: &'static str| -> Result<()> {
        if p.len() < n {
            Err(StorageError::Corrupt { offset, reason })
        } else {
            Ok(())
        }
    };
    let u32_at = |p: &mut &[u8]| {
        let v = u32::from_le_bytes(p[..4].try_into().unwrap());
        *p = &p[4..];
        v
    };
    let u64_at = |p: &mut &[u8]| {
        let v = u64::from_le_bytes(p[..8].try_into().unwrap());
        *p = &p[8..];
        v
    };
    if p.is_empty() {
        return Err(corrupt("empty payload"));
    }
    let tag = p[0];
    p = &p[1..];
    match tag {
        TAG_COMMIT => {
            take(&mut p, 8 + 4 + 4, "short commit header")?;
            let txn = u64_at(&mut p);
            let n_writes = u32_at(&mut p) as usize;
            let n_locks = u32_at(&mut p) as usize;
            take(&mut p, n_writes * 28 + n_locks * 12, "short commit body")?;
            let mut writes = Vec::with_capacity(n_writes);
            for _ in 0..n_writes {
                let item = u32_at(&mut p);
                let data = u64_at(&mut p);
                let version = u64_at(&mut p);
                let prev = u64_at(&mut p);
                writes.push(CommitWrite {
                    item,
                    value: ItemValue::new(data, version),
                    prev,
                });
            }
            let mut faillocks = Vec::with_capacity(n_locks);
            for _ in 0..n_locks {
                let item = u32_at(&mut p);
                let word = u64_at(&mut p);
                faillocks.push((item, word));
            }
            Ok(RedoRecord::Commit(CommitRecord {
                txn,
                writes,
                faillocks,
            }))
        }
        TAG_FAILLOCKS => {
            take(&mut p, 4, "short fail-lock count")?;
            let n = u32_at(&mut p) as usize;
            take(&mut p, n * 12, "short fail-lock body")?;
            let mut words = Vec::with_capacity(n);
            for _ in 0..n {
                let item = u32_at(&mut p);
                let word = u64_at(&mut p);
                words.push((item, word));
            }
            Ok(RedoRecord::FailLocks(words))
        }
        TAG_SESSION => {
            take(&mut p, 8, "short session record")?;
            Ok(RedoRecord::Session(u64_at(&mut p)))
        }
        TAG_CHECKPOINT => {
            take(&mut p, 8, "short checkpoint record")?;
            Ok(RedoRecord::Checkpoint(u64_at(&mut p)))
        }
        _ => Err(corrupt("unknown record tag")),
    }
}

/// Scan a REDO log image: validate frames, rebuild per-item chain heads
/// and protocol state, stop at the first corrupt or truncated frame.
/// Returns the scan with `raw` truncated to the intact prefix. Item
/// values are **not** applied — that is [`LazyImage`]'s job.
pub fn scan(mut raw: Vec<u8>, db_size: u32) -> Result<ScanState> {
    let mut state = ScanState::empty(db_size);
    let mut offset = 0usize;
    while raw.len() - offset >= 8 {
        let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(raw[offset + 4..offset + 8].try_into().unwrap());
        let start = offset + 8;
        if raw.len() < start + len {
            break; // truncated tail — crash mid-append
        }
        let payload = &raw[start..start + len];
        if crc32(payload) != crc {
            break; // torn or corrupt frame — stop replay here
        }
        match decode_record(payload, offset as u64)? {
            RedoRecord::Commit(rec) => {
                state.last_txn = state.last_txn.max(rec.txn);
                for w in &rec.writes {
                    let slot =
                        state
                            .heads
                            .get_mut(w.item as usize)
                            .ok_or(StorageError::OutOfRange {
                                item: w.item,
                                size: db_size,
                            })?;
                    *slot = offset as u64;
                }
                for (item, word) in &rec.faillocks {
                    state.faillocks.insert(*item, *word);
                }
            }
            RedoRecord::FailLocks(words) => {
                for (item, word) in words {
                    state.faillocks.insert(item, word);
                }
            }
            RedoRecord::Session(s) => state.session = s,
            RedoRecord::Checkpoint(txn) => state.last_txn = state.last_txn.max(txn),
        }
        state.records += 1;
        offset = start + len;
    }
    raw.truncate(offset);
    state.raw = raw;
    Ok(state)
}

/// Decode the commit record whose frame starts at `off` inside an
/// already-validated log image.
pub fn commit_at(raw: &[u8], off: u64) -> Result<CommitRecord> {
    let corrupt = |reason| StorageError::Corrupt {
        offset: off,
        reason,
    };
    let off = off as usize;
    if raw.len() < off + 8 {
        return Err(corrupt("chain offset past end of log"));
    }
    let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
    let start = off + 8;
    if raw.len() < start + len {
        return Err(corrupt("chain frame past end of log"));
    }
    match decode_record(&raw[start..start + len], off as u64)? {
        RedoRecord::Commit(rec) => Ok(rec),
        _ => Err(corrupt("chain offset is not a commit record")),
    }
}

/// A not-yet-replayed committed image: the intact log prefix plus
/// per-item chain heads. Values hydrate on demand (one chain-head decode
/// per item) or incrementally via [`LazyImage::take_next`].
///
/// Clones share the underlying log bytes but track hydration progress
/// independently (the store and the engine each drain their own copy).
#[derive(Debug, Clone)]
pub struct LazyImage {
    raw: Arc<Vec<u8>>,
    heads: Arc<Vec<u64>>,
    pending: Vec<bool>,
    remaining: u32,
    cursor: u32,
}

impl LazyImage {
    /// Build from a scan. Items with no chain head are never pending
    /// (their value is whatever the snapshot / initial load holds).
    pub fn new(state: &ScanState) -> LazyImage {
        let pending: Vec<bool> = state.heads.iter().map(|&h| h != NO_PREV).collect();
        let remaining = pending.iter().filter(|&&p| p).count() as u32;
        LazyImage {
            raw: Arc::new(state.raw.clone()),
            heads: Arc::new(state.heads.clone()),
            pending,
            remaining,
            cursor: 0,
        }
    }

    /// An image with nothing to replay.
    pub fn empty(db_size: u32) -> LazyImage {
        LazyImage {
            raw: Arc::new(Vec::new()),
            heads: Arc::new(vec![NO_PREV; db_size as usize]),
            pending: vec![false; db_size as usize],
            remaining: 0,
            cursor: 0,
        }
    }

    /// Items still awaiting replay.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// True if `item` has a logged value not yet taken.
    pub fn is_pending(&self, item: u32) -> bool {
        self.pending.get(item as usize).copied().unwrap_or(false)
    }

    /// On-demand replay of one item: decode its chain head (the newest
    /// committed write) and mark it replayed. Returns `None` if the item
    /// was already taken or never written.
    pub fn take(&mut self, item: u32) -> Option<ItemValue> {
        if !self.is_pending(item) {
            return None;
        }
        self.pending[item as usize] = false;
        self.remaining -= 1;
        let head = self.heads[item as usize];
        let rec = commit_at(&self.raw, head).ok()?;
        rec.writes
            .iter()
            .filter(|w| w.item == item)
            .max_by_key(|w| w.value.version)
            .map(|w| w.value)
    }

    /// Drop `item` from the pending set without decoding it (a newer
    /// committed write superseded the logged value).
    pub fn supersede(&mut self, item: u32) {
        if self.is_pending(item) {
            self.pending[item as usize] = false;
            self.remaining -= 1;
        }
    }

    /// Background replay step: hydrate the next pending item in item
    /// order. Returns `None` when replay is complete.
    pub fn take_next(&mut self) -> Option<(u32, ItemValue)> {
        while (self.cursor as usize) < self.pending.len() {
            let item = self.cursor;
            self.cursor += 1;
            if self.is_pending(item) {
                if let Some(v) = self.take(item) {
                    return Some((item, v));
                }
            }
        }
        None
    }

    /// Walk one item's backward chain: every committed value of `item`
    /// in the log, newest first. Targeted recovery of a single item's
    /// committed suffix without scanning the whole log.
    pub fn chain(&self, item: u32) -> Result<Vec<ItemValue>> {
        let mut out = Vec::new();
        let mut off = match self.heads.get(item as usize) {
            Some(&h) => h,
            None => return Ok(out),
        };
        while off != NO_PREV {
            let rec = commit_at(&self.raw, off)?;
            let mut next = NO_PREV;
            for w in rec.writes.iter().filter(|w| w.item == item) {
                out.push(w.value);
                // Offsets strictly decrease along a chain; anything else
                // (e.g. a duplicate item inside one record pointing at its
                // own frame) terminates the walk rather than looping.
                if w.prev < off {
                    next = w.prev;
                }
            }
            off = next;
        }
        Ok(out)
    }
}

/// An append-only REDO log writer with group commit.
///
/// Appends buffer in user space and maintain the per-item chain heads;
/// nothing is durable until [`GroupCommitWal::sync`], which flushes and
/// issues exactly one fsync for everything buffered since the last sync.
/// The encode scratch buffer is reused across appends, so a steady-state
/// append allocates nothing.
#[derive(Debug)]
pub struct GroupCommitWal {
    writer: BufWriter<File>,
    len: u64,
    heads: Vec<u64>,
    scratch: Vec<u8>,
    unsynced_commits: u32,
    unsynced: bool,
    counters: Arc<WalCounters>,
}

impl GroupCommitWal {
    /// Open (creating if absent) a REDO log at `path`: scan the intact
    /// prefix, truncate any torn tail so new appends extend the valid
    /// log, and return the writer plus the scan for lazy replay.
    pub fn open(path: &Path, db_size: u32) -> Result<(GroupCommitWal, ScanState)> {
        Self::open_with_counters(path, db_size, Arc::new(WalCounters::default()))
    }

    /// [`GroupCommitWal::open`] preserving an existing counter handle
    /// (checkpointing replaces the log file but not the counters).
    pub fn open_with_counters(
        path: &Path,
        db_size: u32,
        counters: Arc<WalCounters>,
    ) -> Result<(GroupCommitWal, ScanState)> {
        let raw = match std::fs::read(path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let had = raw.len() as u64;
        let state = scan(raw, db_size)?;
        let valid = state.raw.len() as u64;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        if had != valid {
            file.set_len(valid)?;
        }
        file.seek(SeekFrom::Start(valid))?;
        let wal = GroupCommitWal {
            writer: BufWriter::new(file),
            len: valid,
            heads: state.heads.clone(),
            scratch: Vec::with_capacity(256),
            unsynced_commits: 0,
            unsynced: false,
            counters,
        };
        Ok((wal, state))
    }

    /// Shared counter handle.
    pub fn counters(&self) -> Arc<WalCounters> {
        Arc::clone(&self.counters)
    }

    /// Framed bytes written (including not-yet-synced ones).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Commit records appended since the last [`GroupCommitWal::sync`].
    pub fn pending_commits(&self) -> u32 {
        self.unsynced_commits
    }

    /// True if any record awaits a sync.
    pub fn has_unsynced(&self) -> bool {
        self.unsynced
    }

    fn frame_scratch(&mut self) -> Result<()> {
        let header_len = (self.scratch.len() as u32).to_le_bytes();
        let header_crc = crc32(&self.scratch).to_le_bytes();
        self.writer.write_all(&header_len)?;
        self.writer.write_all(&header_crc)?;
        self.writer.write_all(&self.scratch)?;
        let framed = 8 + self.scratch.len() as u64;
        self.len += framed;
        self.unsynced = true;
        self.counters.records.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(framed, Ordering::Relaxed);
        Ok(())
    }

    /// Append one transaction's commit record (write set + fail-lock
    /// words). Buffered — not durable until [`GroupCommitWal::sync`].
    pub fn append_commit(
        &mut self,
        txn: u64,
        writes: &[(u32, ItemValue)],
        faillocks: &[(u32, u64)],
    ) -> Result<()> {
        let size = self.heads.len() as u32;
        if let Some((item, _)) = writes.iter().find(|(item, _)| *item >= size) {
            return Err(StorageError::OutOfRange { item: *item, size });
        }
        let off = self.len;
        self.scratch.clear();
        self.scratch.push(TAG_COMMIT);
        self.scratch.extend_from_slice(&txn.to_le_bytes());
        self.scratch
            .extend_from_slice(&(writes.len() as u32).to_le_bytes());
        self.scratch
            .extend_from_slice(&(faillocks.len() as u32).to_le_bytes());
        for (item, value) in writes {
            let slot = &mut self.heads[*item as usize];
            let prev = *slot;
            *slot = off;
            self.scratch.extend_from_slice(&item.to_le_bytes());
            self.scratch.extend_from_slice(&value.data.to_le_bytes());
            self.scratch.extend_from_slice(&value.version.to_le_bytes());
            self.scratch.extend_from_slice(&prev.to_le_bytes());
        }
        for (item, word) in faillocks {
            self.scratch.extend_from_slice(&item.to_le_bytes());
            self.scratch.extend_from_slice(&word.to_le_bytes());
        }
        self.frame_scratch()?;
        self.unsynced_commits += 1;
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Append standalone fail-lock words. Buffered.
    pub fn append_faillocks(&mut self, words: &[(u32, u64)]) -> Result<()> {
        self.scratch.clear();
        self.scratch.push(TAG_FAILLOCKS);
        self.scratch
            .extend_from_slice(&(words.len() as u32).to_le_bytes());
        for (item, word) in words {
            self.scratch.extend_from_slice(&item.to_le_bytes());
            self.scratch.extend_from_slice(&word.to_le_bytes());
        }
        self.frame_scratch()
    }

    /// Append the site's session number. Buffered.
    pub fn append_session(&mut self, session: u64) -> Result<()> {
        self.scratch.clear();
        self.scratch.push(TAG_SESSION);
        self.scratch.extend_from_slice(&session.to_le_bytes());
        self.frame_scratch()
    }

    /// Append a checkpoint marker. Buffered.
    pub fn append_checkpoint(&mut self, txn: u64) -> Result<()> {
        self.scratch.clear();
        self.scratch.push(TAG_CHECKPOINT);
        self.scratch.extend_from_slice(&txn.to_le_bytes());
        self.frame_scratch()
    }

    /// Group commit: one flush + fsync covering every record appended
    /// since the last sync. A no-op (and no fsync) if nothing is pending.
    pub fn sync(&mut self) -> Result<()> {
        if !self.unsynced {
            return Ok(());
        }
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.unsynced = false;
        self.unsynced_commits = 0;
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("miniraid-redo-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn v(data: u64, version: u64) -> ItemValue {
        ItemValue::new(data, version)
    }

    #[test]
    fn append_scan_roundtrip_builds_chain_heads() {
        let path = tmp("roundtrip");
        let (mut wal, _) = GroupCommitWal::open(&path, 8).unwrap();
        wal.append_commit(1, &[(0, v(10, 1)), (1, v(11, 1))], &[])
            .unwrap();
        let off2 = wal.len();
        wal.append_commit(2, &[(1, v(22, 2))], &[(1, 0b10)])
            .unwrap();
        wal.sync().unwrap();
        drop(wal);

        let raw = std::fs::read(&path).unwrap();
        let state = scan(raw, 8).unwrap();
        assert_eq!(state.last_txn, 2);
        assert_eq!(state.records, 2);
        assert_eq!(state.heads[0], 0);
        assert_eq!(state.heads[1], off2);
        assert_eq!(state.heads[2], NO_PREV);
        assert_eq!(state.faillocks.get(&1), Some(&0b10));

        let mut img = LazyImage::new(&state);
        assert_eq!(img.remaining(), 2);
        assert_eq!(img.take(1), Some(v(22, 2)));
        assert_eq!(img.take(0), Some(v(10, 1)));
        assert_eq!(img.take(0), None);
        assert_eq!(img.remaining(), 0);

        let img = LazyImage::new(&state);
        assert_eq!(img.chain(1).unwrap(), vec![v(22, 2), v(11, 1)]);
        assert_eq!(img.chain(0).unwrap(), vec![v(10, 1)]);
        assert!(img.chain(5).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_is_one_fsync_per_group_and_noop_when_clean() {
        let path = tmp("group");
        let (mut wal, _) = GroupCommitWal::open(&path, 4).unwrap();
        let counters = wal.counters();
        for txn in 1..=5u64 {
            wal.append_commit(txn, &[(0, v(txn, txn))], &[]).unwrap();
        }
        assert_eq!(wal.pending_commits(), 5);
        wal.sync().unwrap();
        wal.sync().unwrap(); // clean — must not fsync again
        assert_eq!(counters.fsyncs(), 1);
        assert_eq!(counters.commits(), 5);
        assert_eq!(wal.pending_commits(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_allocates_nothing_after_warmup() {
        // Indirect check: the scratch buffer's capacity stabilises, and
        // repeated appends never grow it past the largest record.
        let path = tmp("noalloc");
        let (mut wal, _) = GroupCommitWal::open(&path, 4).unwrap();
        wal.append_commit(1, &[(0, v(1, 1)), (1, v(2, 1))], &[(0, 1)])
            .unwrap();
        let cap = wal.scratch.capacity();
        for txn in 2..100u64 {
            wal.append_commit(txn, &[(0, v(txn, txn)), (1, v(txn, txn))], &[(0, 1)])
                .unwrap();
        }
        assert_eq!(wal.scratch.capacity(), cap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let path = tmp("torn");
        let (mut wal, _) = GroupCommitWal::open(&path, 4).unwrap();
        wal.append_commit(1, &[(0, v(1, 1))], &[]).unwrap();
        wal.sync().unwrap();
        let good = wal.len();
        drop(wal);
        // Crash mid-append: garbage frame header after the good prefix.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[77, 0, 0, 0, 9, 9, 9, 9, 1, 2, 3]).unwrap();
        drop(f);

        let (mut wal, state) = GroupCommitWal::open(&path, 4).unwrap();
        assert_eq!(state.raw.len() as u64, good);
        assert_eq!(state.last_txn, 1);
        // New appends extend the *valid* log, not the garbage.
        wal.append_commit(2, &[(1, v(2, 2))], &[]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let state = scan(std::fs::read(&path).unwrap(), 4).unwrap();
        assert_eq!(state.last_txn, 2);
        assert_eq!(state.records, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lazy_image_take_next_drains_in_item_order() {
        let path = tmp("drain");
        let (mut wal, _) = GroupCommitWal::open(&path, 6).unwrap();
        wal.append_commit(1, &[(4, v(40, 1)), (2, v(20, 1))], &[])
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let state = scan(std::fs::read(&path).unwrap(), 6).unwrap();
        let mut img = LazyImage::new(&state);
        assert_eq!(img.take_next(), Some((2, v(20, 1))));
        assert_eq!(img.take_next(), Some((4, v(40, 1))));
        assert_eq!(img.take_next(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn supersede_skips_stale_chain_heads() {
        let path = tmp("supersede");
        let (mut wal, _) = GroupCommitWal::open(&path, 2).unwrap();
        wal.append_commit(1, &[(0, v(1, 1))], &[]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let state = scan(std::fs::read(&path).unwrap(), 2).unwrap();
        let mut img = LazyImage::new(&state);
        img.supersede(0);
        assert_eq!(img.take(0), None);
        assert_eq!(img.remaining(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_rejects_out_of_range_items() {
        let path = tmp("range");
        let (mut wal, _) = GroupCommitWal::open(&path, 8).unwrap();
        wal.append_commit(1, &[(7, v(1, 1))], &[]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let raw = std::fs::read(&path).unwrap();
        assert!(matches!(
            scan(raw, 4),
            Err(StorageError::OutOfRange { item: 7, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_record(&[], 0).is_err());
        assert!(decode_record(&[0x99], 0).is_err());
        assert!(decode_record(&[TAG_COMMIT, 1, 2], 0).is_err());
    }
}
