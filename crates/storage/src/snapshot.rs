//! Full-table snapshots: a checkpointing companion to the WAL.
//!
//! Format: `[magic u32][item_count u32][last_txn u64][items...][crc u32]`
//! where each item is `[data u64][version u64]` and the CRC covers
//! everything before it. All integers little-endian.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::checksum::crc32;
use crate::mem::MemStore;
use crate::{ItemValue, Result, StorageError};

const MAGIC: u32 = 0x4D52_5344; // "MRSD"

/// A point-in-time copy of a site's table plus the covering transaction id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Table contents at snapshot time.
    pub store: MemStore,
    /// Highest transaction id whose effects the snapshot includes.
    pub last_txn: u64,
}

impl Snapshot {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(20 + 16 * self.store.size() as usize);
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.store.size());
        buf.put_u64_le(self.last_txn);
        for (_, v) in self.store.iter() {
            buf.put_u64_le(v.data);
            buf.put_u64_le(v.version);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Deserialize, verifying magic and checksum.
    pub fn decode(raw: &[u8]) -> Result<Snapshot> {
        let corrupt = |reason| StorageError::Corrupt { offset: 0, reason };
        if raw.len() < 20 {
            return Err(corrupt("snapshot too short"));
        }
        let (body, tail) = raw.split_at(raw.len() - 4);
        let stored_crc = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(corrupt("snapshot checksum mismatch"));
        }
        let mut body = body;
        if body.get_u32_le() != MAGIC {
            return Err(corrupt("bad snapshot magic"));
        }
        let count = body.get_u32_le();
        let last_txn = body.get_u64_le();
        if body.remaining() != count as usize * 16 {
            return Err(corrupt("snapshot length mismatch"));
        }
        let mut store = MemStore::new(count);
        for i in 0..count {
            let data = body.get_u64_le();
            let version = body.get_u64_le();
            store.put(i, ItemValue::new(data, version))?;
        }
        Ok(Snapshot { store, last_txn })
    }

    /// Write atomically: to a temp file, fsync, then rename over `path`.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&self.encode())?;
        f.sync_data()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load from `path`; `Ok(None)` if no snapshot exists yet.
    pub fn read_from(path: &Path) -> Result<Option<Snapshot>> {
        let mut f = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut raw = Vec::new();
        f.read_to_end(&mut raw)?;
        Snapshot::decode(&raw).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut store = MemStore::new(8);
        store.put(2, ItemValue::new(11, 4)).unwrap();
        store.put(7, ItemValue::new(99, 6)).unwrap();
        Snapshot { store, last_txn: 6 }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let mut raw = sample().encode();
        raw[10] ^= 0x55;
        assert!(Snapshot::decode(&raw).is_err());
    }

    #[test]
    fn short_buffer_is_rejected() {
        assert!(Snapshot::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut raw = sample().encode();
        raw[0] ^= 0xFF;
        // CRC still matches body? No — flipping magic breaks CRC first.
        assert!(Snapshot::decode(&raw).is_err());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("miniraid-snap-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert!(Snapshot::read_from(&path).unwrap().is_none());
        let snap = sample();
        snap.write_to(&path).unwrap();
        assert_eq!(Snapshot::read_from(&path).unwrap().unwrap(), snap);
        std::fs::remove_file(&path).unwrap();
    }
}
