//! CRC-32 (IEEE 802.3 polynomial) used to frame WAL records and snapshots.
//!
//! Implemented locally — the offline dependency allowlist has no CRC crate,
//! and 40 lines of table-driven CRC is cheaper than an extra dependency.

/// Lazily-built lookup table for the reflected IEEE polynomial 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 state, for hashing without concatenating buffers.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 ("check" value from the CRC catalogue).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finalize(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"abcc"));
    }
}
