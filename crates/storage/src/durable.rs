//! [`DurableStore`]: the in-memory table fronted by a REDO-only WAL and
//! snapshots.
//!
//! This is the production-path storage a site would run with; the paper's
//! experiments use bare [`MemStore`] (I/O factored out), and the protocol
//! engine is generic over which one it drives.
//!
//! Durability is **group-committed**: [`DurableStore::commit`] only
//! appends a self-contained REDO record; nothing reaches the disk until
//! [`DurableStore::sync`] (one fsync for every record appended since the
//! last sync) or drop. The driving site loop batches appends from all
//! in-flight transactions and holds back any message that would announce
//! a commit until the group fsync covering it completes, so the external
//! durability contract is unchanged — only the fsync count drops.
//!
//! Restart is **instant**: [`DurableStore::open`] scans the log for frame
//! integrity and per-item chain heads but does not apply values. Reads
//! hydrate on demand from the [`LazyImage`]; [`DurableStore::hydrate_step`]
//! replays the rest in the background.

use std::path::{Path, PathBuf};

use std::collections::HashMap;

use crate::mem::MemStore;
use crate::redo::{GroupCommitWal, LazyImage, WalCounters};
use crate::snapshot::Snapshot;
use crate::{ItemValue, Result};

/// A crash-recoverable store: `MemStore` + group-commit REDO WAL +
/// snapshot checkpointing.
#[derive(Debug)]
pub struct DurableStore {
    mem: MemStore,
    /// Logged values not yet applied to `mem` (instant restart).
    image: LazyImage,
    wal: GroupCommitWal,
    wal_path: PathBuf,
    snap_path: PathBuf,
    last_txn: u64,
    /// Recovered fail-lock bitmap words (item -> word), last-write-wins.
    faillocks: HashMap<u32, u64>,
    /// Recovered own session number (0 = never logged).
    session: u64,
}

impl DurableStore {
    /// Open a durable store in `dir`. Returns immediately after scanning
    /// the log (frame validation + chain heads) — committed values are
    /// *reachable* but not yet applied; they hydrate on first read or via
    /// [`DurableStore::hydrate_step`].
    pub fn open(dir: &Path, size: u32) -> Result<DurableStore> {
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("site.redo");
        let snap_path = dir.join("site.snap");

        let (mem, snap_txn) = match Snapshot::read_from(&snap_path)? {
            Some(snap) => (snap.store, snap.last_txn),
            None => (MemStore::new(size), 0),
        };
        let (wal, state) = GroupCommitWal::open(&wal_path, size)?;
        let image = LazyImage::new(&state);
        Ok(DurableStore {
            mem,
            image,
            wal,
            wal_path,
            snap_path,
            last_txn: snap_txn.max(state.last_txn),
            faillocks: state.faillocks,
            session: state.session,
        })
    }

    /// Recovered fail-lock words (item -> bitmap word).
    pub fn faillocks(&self) -> &HashMap<u32, u64> {
        &self.faillocks
    }

    /// Recovered session number (0 if never logged).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Writer-side counters (fsyncs, commit records, bytes), shared.
    pub fn counters(&self) -> std::sync::Arc<WalCounters> {
        self.wal.counters()
    }

    /// A handle to the not-yet-replayed committed image, for a protocol
    /// engine that wants to hydrate its own table lazily (instant
    /// restart). The clone tracks its hydration progress independently.
    pub fn image(&self) -> LazyImage {
        self.image.clone()
    }

    /// Log the site's session number. Buffered: rides the next group
    /// sync (the site loop holds the recovery announcement until then).
    pub fn log_session(&mut self, session: u64) -> Result<()> {
        self.wal.append_session(session)?;
        self.session = session;
        Ok(())
    }

    /// Record fail-lock words alongside whatever was last committed
    /// (standalone clear-fail-lock traffic; commit-attached words travel
    /// inside [`DurableStore::commit`]). Buffered into the group batch —
    /// fail-lock durability needs no fsync of its own.
    pub fn log_faillocks(&mut self, words: &[(u32, u64)]) -> Result<()> {
        if words.is_empty() {
            return Ok(());
        }
        self.wal.append_faillocks(words)?;
        for (item, word) in words {
            self.faillocks.insert(*item, *word);
        }
        Ok(())
    }

    /// Read one item, hydrating it from the log image if this is the
    /// first access since restart (on-demand chain replay).
    pub fn get(&mut self, item: u32) -> Result<ItemValue> {
        if let Some(v) = self.image.take(item) {
            self.mem.put(item, v)?;
        }
        self.mem.get(item)
    }

    /// Highest committed transaction id recovered or applied so far.
    pub fn last_txn(&self) -> u64 {
        self.last_txn
    }

    /// Access the in-memory table (e.g. for digests). Excludes items not
    /// yet replayed after a restart — call [`DurableStore::hydrate_all`]
    /// first when the full image is needed.
    pub fn mem(&self) -> &MemStore {
        &self.mem
    }

    /// Items still awaiting background replay.
    pub fn pending_items(&self) -> u32 {
        self.image.remaining()
    }

    /// Background replay: hydrate up to `max` items, returning how many
    /// remain afterwards.
    pub fn hydrate_step(&mut self, max: u32) -> Result<u32> {
        for _ in 0..max {
            match self.image.take_next() {
                Some((item, v)) => self.mem.put(item, v)?,
                None => break,
            }
        }
        Ok(self.image.remaining())
    }

    /// Replay everything still pending.
    pub fn hydrate_all(&mut self) -> Result<()> {
        while let Some((item, v)) = self.image.take_next() {
            self.mem.put(item, v)?;
        }
        Ok(())
    }

    /// Apply a committed transaction: append one self-contained REDO
    /// record (write set + fail-lock words) and update the table.
    /// **Not durable** until the next [`DurableStore::sync`] — the group
    /// commit the caller schedules.
    pub fn commit_with_locks(
        &mut self,
        txn: u64,
        writes: &[(u32, ItemValue)],
        faillocks: &[(u32, u64)],
    ) -> Result<()> {
        self.wal.append_commit(txn, writes, faillocks)?;
        for (item, value) in writes {
            // The fresh write supersedes whatever the restart image held
            // (version-ordered apply happens upstream in the engine).
            self.image.supersede(*item);
            self.mem.put(*item, *value)?;
        }
        for (item, word) in faillocks {
            self.faillocks.insert(*item, *word);
        }
        self.last_txn = self.last_txn.max(txn);
        Ok(())
    }

    /// [`DurableStore::commit_with_locks`] without fail-lock words.
    pub fn commit(&mut self, txn: u64, writes: &[(u32, ItemValue)]) -> Result<()> {
        self.commit_with_locks(txn, writes, &[])
    }

    /// Group commit: one fsync covering every record appended since the
    /// last sync. A no-op if nothing is pending.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// True if appended records await their group fsync.
    pub fn has_unsynced(&self) -> bool {
        self.wal.has_unsynced()
    }

    /// Commit records appended since the last sync (group size so far).
    pub fn pending_commits(&self) -> u32 {
        self.wal.pending_commits()
    }

    /// Record an aborted transaction. REDO-only logging writes nothing:
    /// uncommitted work never reaches the log, so an abort needs neither
    /// a record nor durability. Kept for API compatibility.
    pub fn abort(&mut self, _txn: u64) -> Result<()> {
        Ok(())
    }

    /// Take a snapshot and start a fresh log with a checkpoint marker.
    /// Hydrates any not-yet-replayed items first so the snapshot is the
    /// full committed image.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.hydrate_all()?;
        self.wal.sync()?;
        let snap = Snapshot {
            store: self.mem.clone(),
            last_txn: self.last_txn,
        };
        snap.write_to(&self.snap_path)?;
        // Start a fresh log containing the checkpoint marker plus the
        // protocol state (fail-locks, session) the snapshot doesn't hold.
        std::fs::remove_file(&self.wal_path)?;
        let counters = self.wal.counters();
        let (wal, _) =
            GroupCommitWal::open_with_counters(&self.wal_path, self.mem.size(), counters)?;
        self.wal = wal;
        self.wal.append_checkpoint(self.last_txn)?;
        if self.session > 0 {
            self.wal.append_session(self.session)?;
        }
        let mut words: Vec<(u32, u64)> = self.faillocks.iter().map(|(i, w)| (*i, *w)).collect();
        words.sort_unstable();
        self.wal.append_faillocks(&words)?;
        self.wal.sync()?;
        Ok(())
    }
}

impl Drop for DurableStore {
    /// Clean shutdown is durable: flush + fsync whatever the last group
    /// didn't cover. (A crash instead loses only records whose effects
    /// were never announced — the site loop holds outbound messages
    /// until their group's fsync completes.)
    fn drop(&mut self) {
        let _ = self.wal.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("miniraid-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn commit_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut s = DurableStore::open(&dir, 10).unwrap();
            s.commit(1, &[(3, ItemValue::new(30, 1))]).unwrap();
            s.commit(2, &[(4, ItemValue::new(40, 2)), (3, ItemValue::new(31, 2))])
                .unwrap();
        }
        let mut s = DurableStore::open(&dir, 10).unwrap();
        assert_eq!(s.get(3).unwrap(), ItemValue::new(31, 2));
        assert_eq!(s.get(4).unwrap(), ItemValue::new(40, 2));
        assert_eq!(s.last_txn(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commits_share_one_fsync_per_group() {
        let dir = tmpdir("group");
        let mut s = DurableStore::open(&dir, 10).unwrap();
        let counters = s.counters();
        for txn in 1..=8u64 {
            s.commit(txn, &[(0, ItemValue::new(txn, txn))]).unwrap();
        }
        assert_eq!(s.pending_commits(), 8);
        s.sync().unwrap();
        s.sync().unwrap();
        assert_eq!(counters.fsyncs(), 1);
        assert_eq!(counters.commits(), 8);
        drop(s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aborted_txn_leaves_no_trace_in_state() {
        let dir = tmpdir("abort");
        {
            let mut s = DurableStore::open(&dir, 10).unwrap();
            s.commit(1, &[(0, ItemValue::new(1, 1))]).unwrap();
            s.abort(2).unwrap();
        }
        let mut s = DurableStore::open(&dir, 10).unwrap();
        assert_eq!(s.get(0).unwrap(), ItemValue::new(1, 1));
        assert_eq!(s.last_txn(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_reopen_recovers_same_state() {
        let dir = tmpdir("checkpoint");
        {
            let mut s = DurableStore::open(&dir, 6).unwrap();
            s.commit(1, &[(0, ItemValue::new(10, 1))]).unwrap();
            s.checkpoint().unwrap();
            s.commit(2, &[(1, ItemValue::new(20, 2))]).unwrap();
        }
        let mut s = DurableStore::open(&dir, 6).unwrap();
        assert_eq!(s.get(0).unwrap(), ItemValue::new(10, 1));
        assert_eq!(s.get(1).unwrap(), ItemValue::new(20, 2));
        assert_eq!(s.last_txn(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn protocol_state_survives_reopen_and_checkpoint() {
        let dir = tmpdir("protocol-state");
        {
            let mut s = DurableStore::open(&dir, 8).unwrap();
            s.commit(1, &[(0, ItemValue::new(1, 1))]).unwrap();
            s.log_faillocks(&[(0, 0b0100), (3, 0b0010)]).unwrap();
            s.log_session(4).unwrap();
            s.checkpoint().unwrap();
            s.log_faillocks(&[(0, 0)]).unwrap(); // cleared later
        }
        let s = DurableStore::open(&dir, 8).unwrap();
        assert_eq!(s.session(), 4);
        assert_eq!(s.faillocks().get(&0), Some(&0));
        assert_eq!(s.faillocks().get(&3), Some(&0b0010));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_committed_txn_still_advances_last_txn() {
        let dir = tmpdir("empty-commit");
        {
            let mut s = DurableStore::open(&dir, 4).unwrap();
            s.commit(7, &[]).unwrap();
        }
        let s = DurableStore::open(&dir, 4).unwrap();
        assert_eq!(s.last_txn(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_hydrates_lazily_and_background_replay_converges() {
        let dir = tmpdir("lazy");
        {
            let mut s = DurableStore::open(&dir, 8).unwrap();
            for txn in 1..=6u64 {
                let item = (txn % 3) as u32;
                s.commit(txn, &[(item, ItemValue::new(txn * 10, txn))])
                    .unwrap();
            }
        }
        let mut s = DurableStore::open(&dir, 8).unwrap();
        // Instant restart: values are pending, not applied.
        assert_eq!(s.pending_items(), 3);
        assert_eq!(s.mem().get(0).unwrap(), ItemValue::INITIAL);
        // On-demand read hydrates just that item.
        assert_eq!(s.get(0).unwrap(), ItemValue::new(60, 6));
        assert_eq!(s.pending_items(), 2);
        // Background replay finishes the rest.
        assert_eq!(s.hydrate_step(1).unwrap(), 1);
        assert_eq!(s.hydrate_step(10).unwrap(), 0);
        assert_eq!(s.mem().get(1).unwrap(), ItemValue::new(40, 4));
        assert_eq!(s.mem().get(2).unwrap(), ItemValue::new(50, 5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_after_instant_restart_supersedes_pending_image() {
        let dir = tmpdir("supersede");
        {
            let mut s = DurableStore::open(&dir, 4).unwrap();
            s.commit(1, &[(0, ItemValue::new(10, 1))]).unwrap();
        }
        let mut s = DurableStore::open(&dir, 4).unwrap();
        assert_eq!(s.pending_items(), 1);
        s.commit(2, &[(0, ItemValue::new(20, 2))]).unwrap();
        assert_eq!(s.pending_items(), 0);
        assert_eq!(s.get(0).unwrap(), ItemValue::new(20, 2));
        drop(s);
        let mut s = DurableStore::open(&dir, 4).unwrap();
        assert_eq!(s.get(0).unwrap(), ItemValue::new(20, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
