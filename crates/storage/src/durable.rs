//! [`DurableStore`]: the in-memory table fronted by a WAL and snapshots.
//!
//! This is the production-path storage a site would run with; the paper's
//! experiments use bare [`MemStore`] (I/O factored out), and the protocol
//! engine is generic over which one it drives.

use std::path::{Path, PathBuf};

use std::collections::HashMap;

use crate::mem::MemStore;
use crate::snapshot::Snapshot;
use crate::wal::{committed_writes, protocol_state, Wal, WalRecord};
use crate::{ItemValue, Result};

/// A crash-recoverable store: `MemStore` + WAL + snapshot checkpointing.
#[derive(Debug)]
pub struct DurableStore {
    mem: MemStore,
    wal: Wal,
    wal_path: PathBuf,
    snap_path: PathBuf,
    last_txn: u64,
    /// Recovered fail-lock bitmap words (item -> word), last-write-wins.
    faillocks: HashMap<u32, u64>,
    /// Recovered own session number (0 = never logged).
    session: u64,
}

impl DurableStore {
    /// Open a durable store in `dir`, recovering committed state from the
    /// latest snapshot (if any) plus the committed WAL suffix.
    pub fn open(dir: &Path, size: u32) -> Result<DurableStore> {
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("site.wal");
        let snap_path = dir.join("site.snap");

        let (mut mem, mut last_txn) = match Snapshot::read_from(&snap_path)? {
            Some(snap) => (snap.store, snap.last_txn),
            None => (MemStore::new(size), 0),
        };
        let records = Wal::read_all(&wal_path)?;
        for (item, value) in committed_writes(&records) {
            mem.put(item, value)?;
            last_txn = last_txn.max(value.version);
        }
        // Track commit ids too (a committed txn may have zero writes).
        for rec in &records {
            if let WalRecord::Commit { txn } = rec {
                last_txn = last_txn.max(*txn);
            }
        }
        let (faillocks, session) = protocol_state(&records);
        let wal = Wal::open(&wal_path)?;
        Ok(DurableStore {
            mem,
            wal,
            wal_path,
            snap_path,
            last_txn,
            faillocks,
            session,
        })
    }

    /// Recovered fail-lock words (item -> bitmap word).
    pub fn faillocks(&self) -> &HashMap<u32, u64> {
        &self.faillocks
    }

    /// Recovered session number (0 if never logged).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Durably log the site's session number.
    pub fn log_session(&mut self, session: u64) -> Result<()> {
        self.wal.append(&WalRecord::Session { session })?;
        self.wal.sync()?;
        self.session = session;
        Ok(())
    }

    /// Durably record fail-lock words alongside whatever was last
    /// committed (call after [`DurableStore::commit`], or standalone for
    /// clear-fail-lock traffic).
    pub fn log_faillocks(&mut self, words: &[(u32, u64)]) -> Result<()> {
        if words.is_empty() {
            return Ok(());
        }
        for (item, word) in words {
            self.wal.append(&WalRecord::FailLocks {
                item: *item,
                word: *word,
            })?;
            self.faillocks.insert(*item, *word);
        }
        self.wal.sync()?;
        Ok(())
    }

    /// Read one item.
    pub fn get(&self, item: u32) -> Result<ItemValue> {
        self.mem.get(item)
    }

    /// Highest committed transaction id recovered or applied so far.
    pub fn last_txn(&self) -> u64 {
        self.last_txn
    }

    /// Access the in-memory table (e.g. for digests).
    pub fn mem(&self) -> &MemStore {
        &self.mem
    }

    /// Durably apply a committed transaction's writes: log, fsync, then
    /// update the in-memory table.
    pub fn commit(&mut self, txn: u64, writes: &[(u32, ItemValue)]) -> Result<()> {
        self.wal.append(&WalRecord::Begin { txn })?;
        for (item, value) in writes {
            self.wal.append(&WalRecord::Write {
                txn,
                item: *item,
                value: *value,
            })?;
        }
        self.wal.append(&WalRecord::Commit { txn })?;
        self.wal.sync()?;
        for (item, value) in writes {
            self.mem.put(*item, *value)?;
        }
        self.last_txn = self.last_txn.max(txn);
        Ok(())
    }

    /// Record an aborted transaction (keeps the log self-describing).
    pub fn abort(&mut self, txn: u64) -> Result<()> {
        self.wal.append(&WalRecord::Abort { txn })?;
        self.wal.sync()?;
        Ok(())
    }

    /// Take a snapshot and truncate the WAL to a checkpoint marker.
    pub fn checkpoint(&mut self) -> Result<()> {
        let snap = Snapshot {
            store: self.mem.clone(),
            last_txn: self.last_txn,
        };
        snap.write_to(&self.snap_path)?;
        // Start a fresh WAL containing the checkpoint marker plus the
        // protocol state (fail-locks, session) the snapshot doesn't hold.
        std::fs::remove_file(&self.wal_path)?;
        self.wal = Wal::open(&self.wal_path)?;
        self.wal
            .append(&WalRecord::Checkpoint { txn: self.last_txn })?;
        if self.session > 0 {
            self.wal.append(&WalRecord::Session {
                session: self.session,
            })?;
        }
        let mut words: Vec<(u32, u64)> = self.faillocks.iter().map(|(i, w)| (*i, *w)).collect();
        words.sort_unstable();
        for (item, word) in words {
            self.wal.append(&WalRecord::FailLocks { item, word })?;
        }
        self.wal.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("miniraid-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn commit_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut s = DurableStore::open(&dir, 10).unwrap();
            s.commit(1, &[(3, ItemValue::new(30, 1))]).unwrap();
            s.commit(2, &[(4, ItemValue::new(40, 2)), (3, ItemValue::new(31, 2))])
                .unwrap();
        }
        let s = DurableStore::open(&dir, 10).unwrap();
        assert_eq!(s.get(3).unwrap(), ItemValue::new(31, 2));
        assert_eq!(s.get(4).unwrap(), ItemValue::new(40, 2));
        assert_eq!(s.last_txn(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aborted_txn_leaves_no_trace_in_state() {
        let dir = tmpdir("abort");
        {
            let mut s = DurableStore::open(&dir, 10).unwrap();
            s.commit(1, &[(0, ItemValue::new(1, 1))]).unwrap();
            s.abort(2).unwrap();
        }
        let s = DurableStore::open(&dir, 10).unwrap();
        assert_eq!(s.get(0).unwrap(), ItemValue::new(1, 1));
        assert_eq!(s.last_txn(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_reopen_recovers_same_state() {
        let dir = tmpdir("checkpoint");
        {
            let mut s = DurableStore::open(&dir, 6).unwrap();
            s.commit(1, &[(0, ItemValue::new(10, 1))]).unwrap();
            s.checkpoint().unwrap();
            s.commit(2, &[(1, ItemValue::new(20, 2))]).unwrap();
        }
        let s = DurableStore::open(&dir, 6).unwrap();
        assert_eq!(s.get(0).unwrap(), ItemValue::new(10, 1));
        assert_eq!(s.get(1).unwrap(), ItemValue::new(20, 2));
        assert_eq!(s.last_txn(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn protocol_state_survives_reopen_and_checkpoint() {
        let dir = tmpdir("protocol-state");
        {
            let mut s = DurableStore::open(&dir, 8).unwrap();
            s.commit(1, &[(0, ItemValue::new(1, 1))]).unwrap();
            s.log_faillocks(&[(0, 0b0100), (3, 0b0010)]).unwrap();
            s.log_session(4).unwrap();
            s.checkpoint().unwrap();
            s.log_faillocks(&[(0, 0)]).unwrap(); // cleared later
        }
        let s = DurableStore::open(&dir, 8).unwrap();
        assert_eq!(s.session(), 4);
        assert_eq!(s.faillocks().get(&0), Some(&0));
        assert_eq!(s.faillocks().get(&3), Some(&0b0010));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_committed_txn_still_advances_last_txn() {
        let dir = tmpdir("empty-commit");
        {
            let mut s = DurableStore::open(&dir, 4).unwrap();
            s.commit(7, &[]).unwrap();
        }
        let s = DurableStore::open(&dir, 4).unwrap();
        assert_eq!(s.last_txn(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
