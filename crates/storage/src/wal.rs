//! Write-ahead log: append-only, checksummed, torn-write tolerant.
//!
//! The paper factored data I/O out of its measurements; a real deployment
//! of the protocol cannot. Each record is framed as
//! `[u32 payload_len][u32 crc32(payload)][payload]` (little-endian).
//! Replay stops cleanly at the first corrupt or truncated frame, so a
//! crash mid-append loses at most the uncommitted tail.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::checksum::crc32;
use crate::{ItemValue, Result, StorageError};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction has started.
    Begin { txn: u64 },
    /// A tentative write by a transaction (redo information).
    Write {
        txn: u64,
        item: u32,
        value: ItemValue,
    },
    /// The transaction committed; its writes become visible.
    Commit { txn: u64 },
    /// The transaction aborted; its writes are discarded.
    Abort { txn: u64 },
    /// A snapshot covering everything up to `txn` exists; replay may start
    /// after this point when paired with that snapshot.
    Checkpoint { txn: u64 },
    /// The replicated fail-lock bitmap word of one item, as of this point
    /// in the log (last write wins on replay).
    FailLocks { item: u32, word: u64 },
    /// The site's own session number (logged when it becomes
    /// operational; last write wins on replay).
    Session { session: u64 },
}

const TAG_BEGIN: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;
const TAG_FAILLOCKS: u8 = 6;
const TAG_SESSION: u8 = 7;

impl WalRecord {
    /// Serialize the record payload (excluding the frame header).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            WalRecord::Begin { txn } => {
                buf.put_u8(TAG_BEGIN);
                buf.put_u64_le(*txn);
            }
            WalRecord::Write { txn, item, value } => {
                buf.put_u8(TAG_WRITE);
                buf.put_u64_le(*txn);
                buf.put_u32_le(*item);
                buf.put_u64_le(value.data);
                buf.put_u64_le(value.version);
            }
            WalRecord::Commit { txn } => {
                buf.put_u8(TAG_COMMIT);
                buf.put_u64_le(*txn);
            }
            WalRecord::Abort { txn } => {
                buf.put_u8(TAG_ABORT);
                buf.put_u64_le(*txn);
            }
            WalRecord::Checkpoint { txn } => {
                buf.put_u8(TAG_CHECKPOINT);
                buf.put_u64_le(*txn);
            }
            WalRecord::FailLocks { item, word } => {
                buf.put_u8(TAG_FAILLOCKS);
                buf.put_u32_le(*item);
                buf.put_u64_le(*word);
            }
            WalRecord::Session { session } => {
                buf.put_u8(TAG_SESSION);
                buf.put_u64_le(*session);
            }
        }
        buf.freeze()
    }

    /// Deserialize a record payload. `offset` is used only for error reports.
    pub fn decode(mut payload: &[u8], offset: u64) -> Result<WalRecord> {
        let corrupt = |reason| StorageError::Corrupt { offset, reason };
        if payload.is_empty() {
            return Err(corrupt("empty payload"));
        }
        let tag = payload.get_u8();
        let need = |buf: &&[u8], n: usize, reason: &'static str| -> Result<()> {
            if buf.remaining() < n {
                Err(StorageError::Corrupt { offset, reason })
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_BEGIN | TAG_COMMIT | TAG_ABORT | TAG_CHECKPOINT => {
                need(&payload, 8, "short txn id")?;
                let txn = payload.get_u64_le();
                Ok(match tag {
                    TAG_BEGIN => WalRecord::Begin { txn },
                    TAG_COMMIT => WalRecord::Commit { txn },
                    TAG_ABORT => WalRecord::Abort { txn },
                    _ => WalRecord::Checkpoint { txn },
                })
            }
            TAG_FAILLOCKS => {
                need(&payload, 4 + 8, "short fail-lock record")?;
                let item = payload.get_u32_le();
                let word = payload.get_u64_le();
                Ok(WalRecord::FailLocks { item, word })
            }
            TAG_SESSION => {
                need(&payload, 8, "short session record")?;
                Ok(WalRecord::Session {
                    session: payload.get_u64_le(),
                })
            }
            TAG_WRITE => {
                need(&payload, 8 + 4 + 16, "short write record")?;
                let txn = payload.get_u64_le();
                let item = payload.get_u32_le();
                let data = payload.get_u64_le();
                let version = payload.get_u64_le();
                Ok(WalRecord::Write {
                    txn,
                    item,
                    value: ItemValue::new(data, version),
                })
            }
            _ => Err(corrupt("unknown record tag")),
        }
    }
}

/// An append-only write-ahead log backed by a file.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
    /// Bytes durably framed so far (used for error offsets).
    len: u64,
}

impl Wal {
    /// Open (creating if absent) a WAL at `path`, positioned for appending.
    pub fn open(path: &Path) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            writer: BufWriter::new(file),
            len,
        })
    }

    /// Append one record. Not durable until [`Wal::sync`].
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let payload = record.encode();
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.extend_from_slice(&payload);
        self.writer.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Flush buffered records and fsync the file.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Total framed bytes written (including not-yet-synced ones).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read every intact record from a log file, stopping silently at the
    /// first truncated or corrupt frame (crash-recovery semantics).
    pub fn read_all(path: &Path) -> Result<Vec<WalRecord>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        while raw.len() - offset >= 8 {
            let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(raw[offset + 4..offset + 8].try_into().unwrap());
            let start = offset + 8;
            if raw.len() < start + len {
                break; // truncated tail — crash mid-append
            }
            let payload = &raw[start..start + len];
            if crc32(payload) != crc {
                break; // torn or corrupt frame — stop replay here
            }
            records.push(WalRecord::decode(payload, offset as u64)?);
            offset = start + len;
        }
        Ok(records)
    }
}

/// Replay a record stream: returns `(item, value)` writes of committed
/// transactions in commit order, starting after the last checkpoint.
pub fn committed_writes(records: &[WalRecord]) -> Vec<(u32, ItemValue)> {
    use std::collections::HashMap;
    // Honour only the suffix after the final checkpoint.
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }))
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut pending: HashMap<u64, Vec<(u32, ItemValue)>> = HashMap::new();
    let mut out = Vec::new();
    for rec in &records[start..] {
        match rec {
            WalRecord::Begin { txn } => {
                pending.entry(*txn).or_default();
            }
            WalRecord::Write { txn, item, value } => {
                pending.entry(*txn).or_default().push((*item, *value));
            }
            WalRecord::Commit { txn } => {
                if let Some(writes) = pending.remove(txn) {
                    out.extend(writes);
                }
            }
            WalRecord::Abort { txn } => {
                pending.remove(txn);
            }
            WalRecord::Checkpoint { .. }
            | WalRecord::FailLocks { .. }
            | WalRecord::Session { .. } => {}
        }
    }
    out
}

/// Replay the protocol-state side of a record stream: the final
/// fail-lock word per item and the last logged session number, starting
/// after the last checkpoint.
pub fn protocol_state(records: &[WalRecord]) -> (std::collections::HashMap<u32, u64>, u64) {
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }))
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut faillocks = std::collections::HashMap::new();
    let mut session = 0u64;
    for rec in &records[start..] {
        match rec {
            WalRecord::FailLocks { item, word } => {
                faillocks.insert(*item, *word);
            }
            WalRecord::Session { session: s } => session = *s,
            _ => {}
        }
    }
    (faillocks, session)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("miniraid-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn record_roundtrip_all_variants() {
        let records = [
            WalRecord::Begin { txn: 9 },
            WalRecord::Write {
                txn: 9,
                item: 3,
                value: ItemValue::new(77, 9),
            },
            WalRecord::Commit { txn: 9 },
            WalRecord::Abort { txn: 10 },
            WalRecord::Checkpoint { txn: 9 },
        ];
        for r in &records {
            let enc = r.encode();
            assert_eq!(&WalRecord::decode(&enc, 0).unwrap(), r);
        }
    }

    #[test]
    fn append_sync_read_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        let recs = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Write {
                txn: 1,
                item: 0,
                value: ItemValue::new(5, 1),
            },
            WalRecord::Commit { txn: 1 },
        ];
        for r in &recs {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(Wal::read_all(&path).unwrap(), recs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let path = tmp("truncated");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { txn: 1 }).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash mid-append: write a frame header with no body.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 0, 0, 0, 1, 2, 3, 4]).unwrap();
        drop(f);
        let recs = Wal::read_all(&path).unwrap();
        assert_eq!(recs.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { txn: 1 }).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip a byte in the second frame's payload.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let recs = Wal::read_all(&path).unwrap();
        assert_eq!(recs, vec![WalRecord::Begin { txn: 1 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let path = tmp("missing-never-created");
        assert!(Wal::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn committed_writes_skips_uncommitted_and_aborted() {
        let v = |d| ItemValue::new(d, d);
        let records = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Write {
                txn: 1,
                item: 0,
                value: v(1),
            },
            WalRecord::Begin { txn: 2 },
            WalRecord::Write {
                txn: 2,
                item: 1,
                value: v(2),
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Abort { txn: 2 },
            WalRecord::Begin { txn: 3 },
            WalRecord::Write {
                txn: 3,
                item: 2,
                value: v(3),
            }, // never commits
        ];
        assert_eq!(committed_writes(&records), vec![(0, v(1))]);
    }

    #[test]
    fn committed_writes_starts_after_checkpoint() {
        let v = |d| ItemValue::new(d, d);
        let records = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Write {
                txn: 1,
                item: 0,
                value: v(1),
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Checkpoint { txn: 1 },
            WalRecord::Begin { txn: 2 },
            WalRecord::Write {
                txn: 2,
                item: 1,
                value: v(2),
            },
            WalRecord::Commit { txn: 2 },
        ];
        assert_eq!(committed_writes(&records), vec![(1, v(2))]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode(&[], 0).is_err());
        assert!(WalRecord::decode(&[99], 0).is_err());
        assert!(WalRecord::decode(&[TAG_WRITE, 1, 2], 0).is_err());
    }
}
