//! Storage substrate for the miniraid replicated database.
//!
//! The paper's mini-RAID testbed kept every site's database "within the
//! virtual memory of each process" and explicitly factored data I/O out of
//! its measurements. This crate provides that in-memory mode faithfully
//! ([`MemStore`]) and, because a downstream system needs durability, a
//! production path as well: a checksummed write-ahead log ([`wal`]),
//! snapshots ([`snapshot`]), and a combined [`DurableStore`] that recovers
//! the committed prefix after a crash.
//!
//! Keys are dense `u32` item identifiers (the paper's database is a fixed
//! universe of "frequently referenced data items"); values carry a version
//! number so replication invariants (staleness, convergence) are checkable.

pub mod checksum;
pub mod durable;
pub mod mem;
pub mod redo;
pub mod snapshot;
pub mod wal;

pub use durable::DurableStore;
pub use mem::MemStore;
pub use redo::{GroupCommitWal, LazyImage, WalCounters};
pub use wal::{Wal, WalRecord};

use serde::{Deserialize, Serialize};

/// A versioned database value.
///
/// `version` is the identifier of the transaction that last wrote the item
/// (0 for the initial load). Replication code uses it to decide which copy
/// of an item is fresher; tests use it to verify staleness tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemValue {
    /// Application payload.
    pub data: u64,
    /// Identifier of the last transaction that wrote this item.
    pub version: u64,
}

impl ItemValue {
    /// The value every copy holds before any transaction runs.
    pub const INITIAL: ItemValue = ItemValue {
        data: 0,
        version: 0,
    };

    /// Construct a value.
    pub const fn new(data: u64, version: u64) -> Self {
        ItemValue { data, version }
    }

    /// True if `self` is at least as fresh as `other`.
    pub fn is_at_least(&self, other: &ItemValue) -> bool {
        self.version >= other.version
    }
}

impl Default for ItemValue {
    fn default() -> Self {
        ItemValue::INITIAL
    }
}

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An item identifier outside the table's universe.
    OutOfRange { item: u32, size: u32 },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A log or snapshot frame failed its checksum or length check.
    Corrupt { offset: u64, reason: &'static str },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::OutOfRange { item, size } => {
                write!(f, "item {item} out of range (table size {size})")
            }
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { offset, reason } => {
                write!(f, "corrupt storage frame at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_value_freshness_is_by_version() {
        let old = ItemValue::new(99, 3);
        let new = ItemValue::new(1, 4);
        assert!(new.is_at_least(&old));
        assert!(!old.is_at_least(&new));
        assert!(old.is_at_least(&old));
    }

    #[test]
    fn initial_value_is_version_zero() {
        assert_eq!(ItemValue::INITIAL.version, 0);
        assert_eq!(ItemValue::default(), ItemValue::INITIAL);
    }

    #[test]
    fn error_display_is_informative() {
        let e = StorageError::OutOfRange { item: 77, size: 50 };
        assert!(e.to_string().contains("77"));
        assert!(e.to_string().contains("50"));
    }
}
