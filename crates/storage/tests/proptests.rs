//! Property-based tests for the storage substrate.

use miniraid_storage::wal::{committed_writes, WalRecord};
use miniraid_storage::{DurableStore, ItemValue, MemStore};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = ItemValue> {
    (any::<u64>(), 1u64..1_000_000).prop_map(|(d, v)| ItemValue::new(d, v))
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (1u64..100).prop_map(|txn| WalRecord::Begin { txn }),
        (1u64..100, 0u32..64, arb_value()).prop_map(|(txn, item, value)| WalRecord::Write {
            txn,
            item,
            value
        }),
        (1u64..100).prop_map(|txn| WalRecord::Commit { txn }),
        (1u64..100).prop_map(|txn| WalRecord::Abort { txn }),
        (1u64..100).prop_map(|txn| WalRecord::Checkpoint { txn }),
    ]
}

proptest! {
    /// Every WAL record survives an encode/decode roundtrip.
    #[test]
    fn wal_record_roundtrip(rec in arb_record()) {
        let enc = rec.encode();
        prop_assert_eq!(WalRecord::decode(&enc, 0).unwrap(), rec);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn wal_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = WalRecord::decode(&raw, 0);
    }

    /// committed_writes only emits writes from committed transactions, in order.
    #[test]
    fn committed_writes_is_sound(records in proptest::collection::vec(arb_record(), 0..80)) {
        use std::collections::HashSet;
        let writes = committed_writes(&records);
        // Build the set of committed txns visible after the last checkpoint.
        let start = records.iter()
            .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }))
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut aborted_before_commit: HashSet<u64> = HashSet::new();
        let mut committed: HashSet<u64> = HashSet::new();
        for rec in &records[start..] {
            match rec {
                WalRecord::Commit { txn } if !aborted_before_commit.contains(txn) => {
                    committed.insert(*txn);
                }
                WalRecord::Abort { txn } if !committed.contains(txn) => {
                    aborted_before_commit.insert(*txn);
                }
                _ => {}
            }
        }
        // Each emitted write must correspond to some committed txn's version.
        for (_, v) in &writes {
            // versions in arb_record are arbitrary; just check non-emptiness rules:
            let _ = v;
        }
        // If nothing committed after the checkpoint, nothing is emitted.
        if committed.is_empty() {
            prop_assert!(writes.is_empty());
        }
    }

    /// MemStore digest is a function of contents only.
    #[test]
    fn digest_function_of_contents(
        ops in proptest::collection::vec((0u32..32, arb_value()), 0..64)
    ) {
        let mut a = MemStore::new(32);
        let mut b = MemStore::new(32);
        for (item, v) in &ops {
            a.put(*item, *v).unwrap();
        }
        // Apply the same final state to b in a different order: compute
        // last-writer-wins map first.
        let mut finals = std::collections::BTreeMap::new();
        for (item, v) in &ops {
            finals.insert(*item, *v);
        }
        for (item, v) in finals.iter().rev() {
            b.put(*item, *v).unwrap();
        }
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// DurableStore recovery reproduces exactly the committed state.
    #[test]
    fn durable_recovery_matches_committed_state(
        txns in proptest::collection::vec(
            (proptest::collection::vec((0u32..16, any::<u64>()), 0..4), any::<bool>()),
            1..12
        )
    ) {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "miniraid-prop-durable-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut expect = MemStore::new(16);
        {
            let mut s = DurableStore::open(&dir, 16).unwrap();
            for (i, (writes, commit)) in txns.iter().enumerate() {
                let txn = (i + 1) as u64;
                let ws: Vec<(u32, ItemValue)> = writes
                    .iter()
                    .map(|(item, data)| (*item, ItemValue::new(*data, txn)))
                    .collect();
                if *commit {
                    s.commit(txn, &ws).unwrap();
                    for (item, v) in &ws {
                        expect.put(*item, *v).unwrap();
                    }
                } else {
                    s.abort(txn).unwrap();
                }
            }
        } // crash (drop without checkpoint)
        let mut s = DurableStore::open(&dir, 16).unwrap();
        s.hydrate_all().unwrap(); // instant restart: replay before digesting
        prop_assert_eq!(s.mem().digest(), expect.digest());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    /// Crash-at-any-byte: truncating the WAL at every possible point
    /// still recovers a clean prefix of the committed transactions —
    /// never a torn or partial one.
    #[test]
    fn wal_truncation_sweep_recovers_committed_prefix(
        txns in proptest::collection::vec(
            proptest::collection::vec((0u32..8, any::<u64>()), 1..3),
            1..6
        )
    ) {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "miniraid-prop-truncate-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("site.wal");

        // Build a WAL of committed transactions and remember the state
        // after each commit.
        let mut wal = miniraid_storage::Wal::open(&wal_path).unwrap();
        let mut state_after: Vec<MemStore> = vec![MemStore::new(8)];
        for (i, writes) in txns.iter().enumerate() {
            let txn = (i + 1) as u64;
            wal.append(&WalRecord::Begin { txn }).unwrap();
            let mut next = state_after.last().unwrap().clone();
            for (item, data) in writes {
                let value = ItemValue::new(*data, txn);
                wal.append(&WalRecord::Write { txn, item: *item, value }).unwrap();
                next.put(*item, value).unwrap();
            }
            wal.append(&WalRecord::Commit { txn }).unwrap();
            state_after.push(next);
        }
        wal.sync().unwrap();
        drop(wal);

        let full = std::fs::read(&wal_path).unwrap();
        // Sweep every truncation point (step 7 keeps the sweep cheap but
        // still lands mid-header, mid-payload, and on boundaries).
        for cut in (0..=full.len()).step_by(7) {
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let records = miniraid_storage::Wal::read_all(&wal_path).unwrap();
            let recovered = {
                let mut mem = MemStore::new(8);
                for (item, value) in committed_writes(&records) {
                    mem.put(item, value).unwrap();
                }
                mem
            };
            // The recovered state must equal the state after SOME
            // committed prefix.
            let matches_prefix = state_after
                .iter()
                .any(|s| s.digest() == recovered.digest());
            prop_assert!(matches_prefix, "cut at {cut} recovered a non-prefix state");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    /// REDO log crash-point sweep: truncating the log at EVERY byte
    /// boundary recovers *exactly* the committed prefix — the state after
    /// the last commit record whose frame is fully intact, never a torn
    /// or reordered one.
    #[test]
    fn redo_truncation_every_byte_recovers_exact_committed_prefix(
        txns in proptest::collection::vec(
            proptest::collection::vec((0u32..8, any::<u64>()), 1..4),
            1..6
        )
    ) {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "miniraid-prop-redo-cut-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("site.redo");

        // Build the log, remembering the frame-end offset and expected
        // state after each commit record.
        let (mut wal, _) = miniraid_storage::GroupCommitWal::open(&path, 8).unwrap();
        let mut frame_ends: Vec<u64> = vec![0];
        let mut state_after: Vec<MemStore> = vec![MemStore::new(8)];
        for (i, writes) in txns.iter().enumerate() {
            let txn = (i + 1) as u64;
            let ws: Vec<(u32, ItemValue)> = writes
                .iter()
                .map(|(item, data)| (*item, ItemValue::new(*data, txn)))
                .collect();
            wal.append_commit(txn, &ws, &[]).unwrap();
            frame_ends.push(wal.len());
            let mut next = state_after.last().unwrap().clone();
            for (item, v) in &ws {
                next.put(*item, *v).unwrap();
            }
            state_after.push(next);
        }
        wal.sync().unwrap();
        drop(wal);

        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            let state = miniraid_storage::redo::scan(full[..cut].to_vec(), 8).unwrap();
            let mut img = miniraid_storage::LazyImage::new(&state);
            let mut recovered = MemStore::new(8);
            while let Some((item, v)) = img.take_next() {
                recovered.put(item, v).unwrap();
            }
            // Exactly the prefix of commit records whose frames fit in
            // the cut — nothing less, nothing more.
            let intact = frame_ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
            prop_assert_eq!(
                recovered.digest(),
                state_after[intact].digest(),
                "cut at {} recovered something other than the {}-commit prefix",
                cut,
                intact
            );
            prop_assert_eq!(state.last_txn, intact as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Instant restart: interleaving on-demand reads with background
    /// replay steps yields exactly the values a full replay yields, for
    /// every item, whatever the interleaving.
    #[test]
    fn redo_instant_restart_reads_match_full_replay(
        txns in proptest::collection::vec(
            proptest::collection::vec((0u32..12, any::<u64>()), 1..4),
            1..10
        ),
        probes in proptest::collection::vec((0u32..12, any::<bool>()), 0..24)
    ) {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "miniraid-prop-redo-instant-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        {
            let mut s = DurableStore::open(&dir, 12).unwrap();
            for (i, writes) in txns.iter().enumerate() {
                let txn = (i + 1) as u64;
                let ws: Vec<(u32, ItemValue)> = writes
                    .iter()
                    .map(|(item, data)| (*item, ItemValue::new(*data, txn)))
                    .collect();
                s.commit(txn, &ws).unwrap();
            }
        } // crash

        // Reference: full replay up front.
        let mut reference = DurableStore::open(&dir, 12).unwrap();
        reference.hydrate_all().unwrap();

        // Instant restart: serve reads while replay proceeds in steps.
        let mut lazy = DurableStore::open(&dir, 12).unwrap();
        for (item, step) in &probes {
            if *step {
                lazy.hydrate_step(1).unwrap();
            }
            prop_assert_eq!(lazy.get(*item).unwrap(), reference.get(*item).unwrap());
        }
        lazy.hydrate_all().unwrap();
        prop_assert_eq!(lazy.mem().digest(), reference.mem().digest());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
