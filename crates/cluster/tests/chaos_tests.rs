//! Acceptance tests for the robustness stack: the reliable session layer
//! must make a lossy 4-site cluster behave exactly like a fault-free one
//! through a full fail/recover scenario — and the same scenario without
//! the layer must demonstrably fail (the negative control), because the
//! paper's protocol assumes reliable ordered delivery (§1.2 assumption 1).

use std::time::Duration;

use miniraid_cluster::control::ManagingClient;
use miniraid_cluster::{Cluster, ClusterTiming};
use miniraid_core::config::ProtocolConfig;
use miniraid_core::ids::{ItemId, SiteId, TxnId};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_net::fault::FaultPlan;
use miniraid_net::{Mailbox, Transport};

const WAIT: Duration = Duration::from_secs(3);
const DB_SIZE: u32 = 12;
const N_SITES: u8 = 4;

/// Generous protocol timers: with 10% loss the reliable layer needs a
/// few 30 ms retransmission rounds before a 2PC step completes, and the
/// scenario requires every write to commit so the two runs stay
/// txn-id-aligned.
fn timing() -> ClusterTiming {
    ClusterTiming {
        ack_timeout: Duration::from_millis(400),
        commit_ack_timeout: Duration::from_millis(400),
        participant_timeout: Duration::from_millis(1500),
        copier_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(400),
        recovery_timeout: Duration::from_millis(600),
        batch_copier_delay: Duration::from_millis(10),
    }
}

struct ScenarioResult {
    /// Every write committed, the recovery succeeded, and all four
    /// sites returned identical full-database reads.
    clean: bool,
    /// First deviation observed, for the failure message.
    detail: String,
    /// The converged database image `(item, version, data)` — from the
    /// first site whose read committed.
    db: Vec<(u32, u64, u64)>,
}

fn write<T: Transport, M: Mailbox>(
    client: &mut ManagingClient<T, M>,
    site: u8,
    item: u32,
    data: u64,
) -> (TxnId, bool) {
    let id = client.next_txn_id();
    let committed = client
        .run_txn(
            SiteId(site),
            Transaction::new(id, vec![Operation::Write(ItemId(item), data)]),
            WAIT,
        )
        .map(|r| r.outcome.is_committed())
        .unwrap_or(false);
    (id, committed)
}

/// The fixed scenario: a burst of writes, a site failure (with the
/// protocol's detection abort), writes that fail-lock the down site's
/// copies, recovery, more writes, then a full-database read through
/// every site. Deterministic in its txn-id sequence as long as every
/// write behaves like the fault-free run.
fn run_scenario(drop: f64, duplicate: f64, with_reliable: bool) -> ScenarioResult {
    let config = ProtocolConfig {
        db_size: DB_SIZE,
        n_sites: N_SITES,
        ..ProtocolConfig::default()
    };
    let plan = FaultPlan {
        seed: 7,
        drop,
        duplicate,
        delay: 0.0,
        max_delay: Duration::ZERO,
    };
    let (cluster, mut client, _controls) =
        Cluster::launch_faulty(config, timing(), plan, with_reliable);

    let mut clean = true;
    let mut detail = String::new();
    let flag = |clean: &mut bool, detail: &mut String, msg: String| {
        if *clean {
            *detail = msg;
        }
        *clean = false;
    };

    // Phase A: eight writes spread over all four coordinators.
    for i in 0..8u32 {
        let site = (i % N_SITES as u32) as u8;
        let (id, committed) = write(&mut client, site, i % DB_SIZE, 100 + i as u64);
        if !committed {
            flag(
                &mut clean,
                &mut detail,
                format!("phase A write txn {} aborted", id.0),
            );
        }
    }

    // Site 2 fails. The next write detects it (the protocol's timeout
    // abort) — expected in the fault-free run too.
    client.fail(SiteId(2));
    let (_, committed) = write(&mut client, 0, 2, 555);
    if committed {
        flag(
            &mut clean,
            &mut detail,
            "detection write committed (failure not detected)".into(),
        );
    }

    // Phase B: six writes among the survivors; these set fail-locks on
    // site 2's copies.
    for i in 0..6u32 {
        let site = [0u8, 1, 3][(i % 3) as usize];
        let (id, committed) = write(&mut client, site, (2 + i) % DB_SIZE, 200 + i as u64);
        if !committed {
            flag(
                &mut clean,
                &mut detail,
                format!("phase B write txn {} aborted", id.0),
            );
        }
    }

    // Recover site 2: the type-1 control transaction re-integrates it and
    // copier refreshes clear its fail-locks.
    if let Err(e) = client.recover(SiteId(2), WAIT) {
        flag(&mut clean, &mut detail, format!("recovery failed: {e}"));
    }

    // Phase C: four writes with everyone back.
    for i in 0..4u32 {
        let site = (i % N_SITES as u32) as u8;
        let (id, committed) = write(&mut client, site, (6 + i) % DB_SIZE, 300 + i as u64);
        if !committed {
            flag(
                &mut clean,
                &mut detail,
                format!("phase C write txn {} aborted", id.0),
            );
        }
    }

    // Full-database read through every site; all must agree.
    let all_items: Vec<Operation> = (0..DB_SIZE).map(|i| Operation::Read(ItemId(i))).collect();
    let mut db: Vec<(u32, u64, u64)> = Vec::new();
    for site in 0..N_SITES {
        let id = client.next_txn_id();
        match client.run_txn(SiteId(site), Transaction::new(id, all_items.clone()), WAIT) {
            Ok(r) if r.outcome.is_committed() => {
                let image: Vec<(u32, u64, u64)> = r
                    .read_results
                    .iter()
                    .map(|(item, v)| (item.0, v.version, v.data))
                    .collect();
                if db.is_empty() {
                    db = image;
                } else if db != image {
                    flag(
                        &mut clean,
                        &mut detail,
                        format!("site {site} diverged: {image:?} != {db:?}"),
                    );
                }
            }
            other => {
                flag(
                    &mut clean,
                    &mut detail,
                    format!("full read at site {site} failed: {other:?}"),
                );
            }
        }
    }

    client.terminate_all();
    cluster.join(WAIT);
    ScenarioResult { clean, detail, db }
}

/// Acceptance: with 10% drop + 5% duplication under the reliable layer,
/// the scenario commits everything and converges to the *identical*
/// final database as the fault-free control run.
#[test]
fn lossy_reliable_run_matches_fault_free_run() {
    let fault_free = run_scenario(0.0, 0.0, true);
    assert!(
        fault_free.clean,
        "fault-free control run deviated: {}",
        fault_free.detail
    );

    let lossy = run_scenario(0.10, 0.05, true);
    assert!(
        lossy.clean,
        "lossy run with reliable layer deviated: {}",
        lossy.detail
    );
    assert_eq!(
        lossy.db, fault_free.db,
        "final database differs from the fault-free run"
    );
}

/// Negative control: the same lossy schedule WITHOUT the reliable layer
/// must fail — lost/duplicated frames break commits, recovery, or
/// convergence, which is exactly the gap the session layer closes.
#[test]
fn lossy_run_without_reliable_layer_fails() {
    let lossy = run_scenario(0.10, 0.05, false);
    assert!(
        !lossy.clean,
        "expected the raw lossy run to violate the scenario, but it ran clean"
    );
}

/// Smoke test for the sharded chaos mode (`chaos thread --shards 2`):
/// a seeded randomized schedule against two replication groups under
/// lossy links, with single- and cross-shard traffic, must hold every
/// invariant — per-group convergence, no lost committed write, and
/// cross-shard atomicity (no globally aborted transaction's version on
/// any item).
#[test]
fn sharded_chaos_run_holds_invariants() {
    let outcome = miniraid_cluster::run_sharded_chaos(miniraid_cluster::ShardChaosOptions {
        seed: 5,
        steps: 40,
        ..Default::default()
    });
    assert!(
        outcome.passed(),
        "sharded chaos violations: {:?}\ntrace tail: {:?}",
        outcome.violations,
        outcome.trace.iter().rev().take(20).collect::<Vec<_>>()
    );
    assert!(
        outcome.committed_writes > 0,
        "schedule committed nothing — not a meaningful run"
    );
}

/// The tentpole scenario of the decision-log work: the cross-shard
/// coordinator is repeatedly killed *between prepare and decide*
/// (`after-votes` — the classic 2PC blocking window) and a successor
/// must take over from the replicated decision log. Atomicity and
/// convergence must hold, no transaction may stay in doubt, and the
/// run must actually have exercised takeovers.
#[test]
fn sharded_chaos_survives_coordinator_kills() {
    let outcome = miniraid_cluster::run_sharded_chaos(miniraid_cluster::ShardChaosOptions {
        seed: 5,
        steps: 30,
        kill_coordinator: Some(miniraid_cluster::CoordKillPoint::AfterVotes),
        ..Default::default()
    });
    assert!(
        outcome.passed(),
        "coordinator-kill chaos violations: {:?}\ntrace tail: {:?}",
        outcome.violations,
        outcome.trace.iter().rev().take(20).collect::<Vec<_>>()
    );
    let crashed = outcome
        .trace
        .iter()
        .any(|l| l.contains("\"observed\":\"coordinator_crash\""));
    assert!(
        crashed,
        "schedule never killed the coordinator — not a meaningful run"
    );
    let summary = outcome.trace.last().expect("summary line");
    assert!(
        !summary.contains("\"takeovers\":0,"),
        "coordinator died but no takeover ran: {summary}"
    );
}
