//! Multi-process deployment test: real OS processes (the paper ran sites
//! as Unix processes), real TCP sockets, driven end-to-end through the
//! `miniraid-site` / `miniraid-ctl` binaries' code paths.

use std::process::{Child, Command};
use std::time::Duration;

use miniraid_cluster::control::ManagingClient;
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_net::tcp::{AddressPlan, TcpEndpoint};

const WAIT: Duration = Duration::from_secs(10);

struct Procs(Vec<Child>);

impl Drop for Procs {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_sites(n_sites: u8, base_port: u16, db_size: u32) -> Procs {
    let bin = env!("CARGO_BIN_EXE_miniraid-site");
    let children = (0..n_sites)
        .map(|i| {
            Command::new(bin)
                .args([
                    i.to_string(),
                    n_sites.to_string(),
                    base_port.to_string(),
                    db_size.to_string(),
                ])
                .spawn()
                .expect("spawn site process")
        })
        .collect();
    Procs(children)
}

/// Kill -9 the coordinator of an in-flight write — the crash lands
/// between Prepare and the commit decision reaching the participants —
/// then restart it from its write-ahead log and recover it. Whatever the
/// decision was, every site must end up with the SAME value for the item:
/// either the write committed everywhere (the WAL preserved it and the
/// participants' in-doubt fail-locks forced a refresh) or it is gone
/// everywhere. A split outcome is the classic 2PC failure this layer
/// exists to prevent.
#[test]
fn coordinator_crash_mid_2pc_uniform_outcome() {
    let base_port = 31000 + (std::process::id() % 500) as u16 * 8;
    let durable = std::env::temp_dir().join(format!("miniraid-2pc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable);
    std::fs::create_dir_all(&durable).expect("create durable dir");
    let spawn_durable = |i: u8| {
        Command::new(env!("CARGO_BIN_EXE_miniraid-site"))
            .args([
                i.to_string(),
                "3".to_string(),
                base_port.to_string(),
                "20".to_string(),
                durable.display().to_string(),
            ])
            .spawn()
            .expect("spawn durable site")
    };
    let mut procs = Procs((0..3).map(spawn_durable).collect());

    let plan = AddressPlan { base_port };
    let (transport, mailbox) = TcpEndpoint::bind(SiteId(3), plan).expect("bind manager");
    let mut client = ManagingClient::new(transport, mailbox, 3);

    // Baseline: item 7 = 10, committed everywhere.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Write(ItemId(7), 10)]),
            WAIT,
        )
        .expect("baseline commit");
    assert!(report.outcome.is_committed());

    // Fire a write at coordinator 0 and SIGKILL it immediately: the crash
    // races phase one/two of the commit protocol.
    let inflight = client.next_txn_id();
    client.submit_txn(
        SiteId(0),
        Transaction::new(inflight, vec![Operation::Write(ItemId(7), 999)]),
    );
    procs.0[0].kill().expect("kill coordinator");
    procs.0[0].wait().expect("reap coordinator");

    // Let the survivors' participant timeouts fire (they discard the
    // in-doubt updates and fail-lock their own copies), then restart the
    // coordinator from its WAL and re-integrate it.
    std::thread::sleep(Duration::from_millis(700));
    procs.0[0] = spawn_durable(0);
    std::thread::sleep(Duration::from_millis(400));
    client.fail(SiteId(0));
    std::thread::sleep(Duration::from_millis(100));
    let session = client
        .recover(SiteId(0), WAIT)
        .expect("coordinator rejoins");
    assert!(session.0 >= 2);

    // Did the decision escape before the kill?
    let observed_commit = client
        .drain_reports()
        .iter()
        .any(|r| r.txn == inflight && r.outcome.is_committed());

    // Every site must now report the same value for item 7 — reads at a
    // site with a fail-locked copy refresh it via a copier first, exactly
    // the path that repairs an in-doubt participant.
    let mut values = Vec::new();
    for site in 0..3u8 {
        let id = client.next_txn_id();
        let r = client
            .run_txn(
                SiteId(site),
                Transaction::new(id, vec![Operation::Read(ItemId(7))]),
                WAIT,
            )
            .expect("read after recovery");
        assert!(r.outcome.is_committed(), "read at site {site} aborted");
        values.push(r.read_results[0].1.data);
    }
    assert!(
        values.iter().all(|v| *v == values[0]),
        "split 2PC outcome: per-site values {values:?}"
    );
    assert!(
        values[0] == 10 || values[0] == 999,
        "unexpected value {}",
        values[0]
    );
    if observed_commit {
        assert_eq!(values[0], 999, "reported-committed write was lost");
    }

    client.terminate_all();
    for child in &mut procs.0 {
        let _ = child.wait();
    }
    procs.0.clear();
    let _ = std::fs::remove_dir_all(&durable);
}

#[test]
fn os_processes_commit_fail_and_recover() {
    let base_port = 26000 + (std::process::id() % 500) as u16 * 8;
    let mut procs = spawn_sites(3, base_port, 20);

    // Manager endpoint in this test process.
    let plan = AddressPlan { base_port };
    let (transport, mailbox) = TcpEndpoint::bind(SiteId(3), plan).expect("bind manager");
    let mut client = ManagingClient::new(transport, mailbox, 3);

    // A write replicates across the three processes.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Write(ItemId(4), 77)]),
            WAIT,
        )
        .expect("commit across processes");
    assert!(report.outcome.is_committed());

    // Kill one site process outright — a real crash, not a simulated one.
    procs.0[2].kill().expect("kill site 2");
    procs.0[2].wait().expect("reap site 2");

    // Detection abort, then commits continue among the survivors.
    let id = client.next_txn_id();
    let r = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Write(ItemId(5), 88)]),
            WAIT,
        )
        .expect("report");
    assert!(!r.outcome.is_committed(), "crash detected via timeout");
    let id = client.next_txn_id();
    let r = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Write(ItemId(5), 88)]),
            WAIT,
        )
        .expect("report");
    assert!(r.outcome.is_committed());
    assert_eq!(r.stats.faillocks_set, 1);

    // Restart the crashed site as a fresh process and recover it: the
    // type-1 control transaction re-integrates it, and a read of the
    // missed item triggers a copier transaction.
    let bin = env!("CARGO_BIN_EXE_miniraid-site");
    procs.0[2] = Command::new(bin)
        .args(["2", "3", &base_port.to_string(), "20"])
        .spawn()
        .expect("respawn site 2");
    // Its port was just freed; give the bind a moment, then recover. A
    // fresh process starts "up", so fail it first to mirror the protocol
    // state the survivors hold, then recover.
    std::thread::sleep(Duration::from_millis(300));
    client.fail(SiteId(2));
    std::thread::sleep(Duration::from_millis(100));
    let session = client.recover(SiteId(2), WAIT).expect("recovery");
    assert!(session.0 >= 2);

    let id = client.next_txn_id();
    let r = client
        .run_txn(
            SiteId(2),
            Transaction::new(id, vec![Operation::Read(ItemId(5))]),
            WAIT,
        )
        .expect("report");
    assert!(r.outcome.is_committed());
    assert_eq!(r.read_results[0].1.data, 88);
    assert_eq!(r.stats.copier_requests, 1, "refreshed via copier");

    client.terminate_all();
    for child in &mut procs.0 {
        let _ = child.wait();
    }
    procs.0.clear();
}
