//! End-to-end tests of the threaded cluster: real threads, real
//! transports, the full failure/recovery protocol.

use std::time::Duration;

use miniraid_cluster::{Cluster, ClusterTiming};
use miniraid_core::config::{ProtocolConfig, TwoStepRecovery};
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::ops::{Operation, Transaction};

const WAIT: Duration = Duration::from_secs(5);

fn config(n_sites: u8) -> ProtocolConfig {
    ProtocolConfig {
        db_size: 20,
        n_sites,
        ..ProtocolConfig::default()
    }
}

#[test]
fn commit_and_read_across_threaded_sites() {
    let (cluster, mut client) = Cluster::launch(config(3), ClusterTiming::default());
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Write(ItemId(4), 99)]),
            WAIT,
        )
        .unwrap();
    assert!(report.outcome.is_committed());

    // Read it back from a different coordinator.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(2),
            Transaction::new(id, vec![Operation::Read(ItemId(4))]),
            WAIT,
        )
        .unwrap();
    assert!(report.outcome.is_committed());
    assert_eq!(report.read_results[0].1.data, 99);

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn failure_recovery_and_copier_on_threads() {
    let mut cfg = config(2);
    cfg.two_step_recovery = Some(TwoStepRecovery {
        threshold: 1.0,
        batch_size: 20,
    });
    let (cluster, mut client) = Cluster::launch(cfg, ClusterTiming::default());

    client.fail(SiteId(0));
    // First write detects the failure (abort), second commits.
    let id = client.next_txn_id();
    let r1 = client
        .run_txn(
            SiteId(1),
            Transaction::new(id, vec![Operation::Write(ItemId(1), 7)]),
            WAIT,
        )
        .unwrap();
    assert!(!r1.outcome.is_committed());
    let id = client.next_txn_id();
    let r2 = client
        .run_txn(
            SiteId(1),
            Transaction::new(id, vec![Operation::Write(ItemId(1), 7)]),
            WAIT,
        )
        .unwrap();
    assert!(r2.outcome.is_committed());
    assert_eq!(r2.stats.faillocks_set, 1, "site 0 missed the update");

    // Recover site 0: type-1 control transaction, then batch copiers
    // refresh everything.
    let session = client.recover(SiteId(0), WAIT).unwrap();
    assert_eq!(session.0, 2);
    client.wait_data_recovered(WAIT).unwrap();

    // Site 0 now serves the refreshed item.
    let id = client.next_txn_id();
    let r3 = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Read(ItemId(1))]),
            WAIT,
        )
        .unwrap();
    assert!(r3.outcome.is_committed());
    assert_eq!(r3.read_results[0].1.data, 7);
    assert_eq!(r3.stats.copier_requests, 0, "already refreshed in batch");

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn on_demand_copier_over_threads() {
    let (cluster, mut client) = Cluster::launch(config(2), ClusterTiming::default());

    client.fail(SiteId(0));
    for _ in 0..2 {
        let id = client.next_txn_id();
        let _ = client.run_txn(
            SiteId(1),
            Transaction::new(id, vec![Operation::Write(ItemId(3), 42)]),
            WAIT,
        );
    }
    client.recover(SiteId(0), WAIT).unwrap();
    // No batch mode configured: the stale read triggers a copier.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(0),
            Transaction::new(id, vec![Operation::Read(ItemId(3))]),
            WAIT,
        )
        .unwrap();
    assert!(report.outcome.is_committed());
    assert_eq!(report.stats.copier_requests, 1);
    assert_eq!(report.read_results[0].1.data, 42);

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn tcp_cluster_commits() {
    let base_port = 24000 + (std::process::id() % 1000) as u16;
    let (cluster, mut client) =
        Cluster::launch_tcp(config(2), ClusterTiming::default(), base_port).unwrap();
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            SiteId(1),
            Transaction::new(
                id,
                vec![Operation::Write(ItemId(0), 5), Operation::Read(ItemId(0))],
            ),
            WAIT,
        )
        .unwrap();
    assert!(report.outcome.is_committed());
    client.terminate_all();
    cluster.join(WAIT);
}
