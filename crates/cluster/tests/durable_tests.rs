//! Durable cluster tests: committed state survives full-process
//! restarts; restarted sites rejoin through the recovery protocol.

use std::time::Duration;

use miniraid_cluster::{Cluster, ClusterTiming};
use miniraid_core::config::{ProtocolConfig, TwoStepRecovery};
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::ops::{Operation, Transaction};

const WAIT: Duration = Duration::from_secs(5);

/// Generous protocol timers: these tests exercise durability and
/// restart, not failure detection, and the default 150/500 ms timeouts
/// misfire as false failure suspicions when the whole workspace's test
/// binaries compete for cores (an unscheduled site loop looks dead).
fn timing() -> ClusterTiming {
    ClusterTiming {
        ack_timeout: Duration::from_millis(600),
        commit_ack_timeout: Duration::from_millis(600),
        participant_timeout: Duration::from_millis(2000),
        copier_timeout: Duration::from_millis(600),
        read_timeout: Duration::from_millis(600),
        recovery_timeout: Duration::from_millis(400),
        ..ClusterTiming::default()
    }
}

fn config() -> ProtocolConfig {
    ProtocolConfig {
        db_size: 12,
        n_sites: 3,
        two_step_recovery: Some(TwoStepRecovery {
            threshold: 1.0,
            batch_size: 12,
        }),
        ..ProtocolConfig::default()
    }
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "miniraid-durable-cluster-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn committed_writes_survive_a_full_cluster_restart() {
    let dir = tmpdir("full-restart");

    // First incarnation: commit some writes, shut down cleanly.
    {
        let (cluster, mut client) = Cluster::launch_durable(config(), timing(), &dir).unwrap();
        for item in 0..5u32 {
            let id = client.next_txn_id();
            let report = client
                .run_txn(
                    SiteId((item % 3) as u8),
                    Transaction::new(id, vec![Operation::Write(ItemId(item), 100 + item as u64)]),
                    WAIT,
                )
                .unwrap();
            assert!(report.outcome.is_committed());
        }
        client.terminate_all();
        cluster.join(WAIT);
    }

    // Second incarnation: the bootstrap site serves immediately; the
    // others rejoin through recovery.
    {
        let (cluster, mut client) = Cluster::launch_durable(config(), timing(), &dir).unwrap();
        // Bring the two non-bootstrap sites back. recover() on the
        // already-up bootstrap site times out harmlessly at the engine
        // level, and a site mid-rejoin can miss one fixed-size window
        // when the whole workspace's tests run in parallel — so the
        // wait is condition-based: keep retrying every site until two
        // distinct sites have rejoined, bounded only by an overall
        // deadline.
        let mut recovered = std::collections::HashSet::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while recovered.len() < 2 && std::time::Instant::now() < deadline {
            for s in 0..3u8 {
                if !recovered.contains(&s)
                    && client.recover(SiteId(s), Duration::from_secs(2)).is_ok()
                {
                    recovered.insert(s);
                }
            }
        }
        assert_eq!(
            recovered.len(),
            2,
            "two restarted sites rejoined (got {recovered:?})"
        );
        // Every site (including restarted ones) serves the durable data.
        for s in 0..3u8 {
            for item in 0..5u32 {
                let id = client.next_txn_id();
                let report = client
                    .run_txn(
                        SiteId(s),
                        Transaction::new(id, vec![Operation::Read(ItemId(item))]),
                        WAIT,
                    )
                    .unwrap();
                assert!(report.outcome.is_committed());
                assert_eq!(
                    report.read_results[0].1.data,
                    100 + item as u64,
                    "site {s} item {item}"
                );
            }
        }
        client.terminate_all();
        cluster.join(WAIT);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn instant_restart_serves_reads_during_background_replay() {
    let dir = tmpdir("instant-restart");
    let config = ProtocolConfig {
        db_size: 600,
        ..config()
    };

    // Incarnation 1: commit 600 items in 100 multi-write transactions,
    // so the REDO log holds far more items than one background
    // hydration chunk replays per loop iteration.
    {
        let (cluster, mut client) =
            Cluster::launch_durable(config.clone(), timing(), &dir).unwrap();
        for k in 0..100u32 {
            let id = client.next_txn_id();
            let writes: Vec<Operation> = (0..6)
                .map(|j| {
                    let item = k * 6 + j;
                    Operation::Write(ItemId(item), 1000 + item as u64)
                })
                .collect();
            let report = client
                .run_txn(SiteId((k % 3) as u8), Transaction::new(id, writes), WAIT)
                .unwrap();
            assert!(report.outcome.is_committed());
        }
        client.terminate_all();
        cluster.join(WAIT);
    }

    // Incarnation 2: the bootstrap site is operational immediately,
    // while its WAL image is still replaying in the background. Reads
    // issued right away — in reverse commit order, so the first probes
    // target items the background sweep reaches last — must already see
    // the committed values (on-demand chain replay).
    {
        let (cluster, mut client) = Cluster::launch_durable(config, timing(), &dir).unwrap();
        let bootstrap = (0..3u8)
            .find(|s| {
                let id = client.next_txn_id();
                client
                    .run_txn(
                        SiteId(*s),
                        Transaction::new(id, vec![Operation::Read(ItemId(599))]),
                        WAIT,
                    )
                    .is_ok_and(|r| {
                        r.outcome.is_committed() && r.read_results[0].1.data == 1000 + 599
                    })
            })
            .expect("one site bootstraps operational and serves reads instantly");
        for item in (0..599u32).rev().step_by(7) {
            let id = client.next_txn_id();
            let report = client
                .run_txn(
                    SiteId(bootstrap),
                    Transaction::new(id, vec![Operation::Read(ItemId(item))]),
                    WAIT,
                )
                .unwrap();
            assert!(report.outcome.is_committed());
            assert_eq!(
                report.read_results[0].1.data,
                1000 + item as u64,
                "item {item} read during background replay"
            );
        }
        client.terminate_all();
        cluster.join(WAIT);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restart_after_missing_commits_refreshes_via_recovery() {
    let dir = tmpdir("stale-restart");

    // Incarnation 1: write v1 everywhere, then keep writing while one
    // site is "failed" so its durable image goes stale.
    {
        let (cluster, mut client) = Cluster::launch_durable(config(), timing(), &dir).unwrap();
        let id = client.next_txn_id();
        client
            .run_txn(
                SiteId(0),
                Transaction::new(id, vec![Operation::Write(ItemId(0), 1)]),
                WAIT,
            )
            .unwrap();
        client.fail(SiteId(2));
        // One detection abort, then a commit site 2 misses.
        for _ in 0..2 {
            let id = client.next_txn_id();
            let _ = client.run_txn(
                SiteId(0),
                Transaction::new(id, vec![Operation::Write(ItemId(0), 2)]),
                WAIT,
            );
        }
        client.terminate_all();
        cluster.join(WAIT);
    }

    // Incarnation 2: site 2's durable image still has v1; the bootstrap
    // authority (site 0 or 1, which saw txn further) serves v2, and site
    // 2's recovery + batch copiers bring it to v2.
    {
        let (cluster, mut client) = Cluster::launch_durable(config(), timing(), &dir).unwrap();
        for s in 0..3u8 {
            let _ = client.recover(SiteId(s), Duration::from_secs(2));
        }
        // Drain data-recovery notifications so reads go to settled state.
        while client
            .wait_data_recovered(Duration::from_millis(600))
            .is_ok()
        {}
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                SiteId(2),
                Transaction::new(id, vec![Operation::Read(ItemId(0))]),
                WAIT,
            )
            .unwrap();
        assert!(report.outcome.is_committed());
        assert_eq!(report.read_results[0].1.data, 2, "stale restart refreshed");
        client.terminate_all();
        cluster.join(WAIT);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
