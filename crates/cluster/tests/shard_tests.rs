//! End-to-end tests of sharded replication groups: single-shard fast
//! path, cross-shard atomic commit, failure independence between
//! groups, and branch-coordinator failure repair via re-drive.

use std::time::Duration;

use miniraid_cluster::{Cluster, ClusterTiming};
use miniraid_core::config::ProtocolConfig;
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_shard::ShardSpec;

const WAIT: Duration = Duration::from_secs(5);

fn base_config() -> ProtocolConfig {
    // db_size/n_sites are narrowed per group by the launcher.
    ProtocolConfig::default()
}

/// 2 groups x 2 sites, 8 items per group. Items: even -> group 0
/// (sites 0,1), odd -> group 1 (sites 2,3).
fn spec() -> ShardSpec {
    ShardSpec::new(2, 2, 8)
}

#[test]
fn single_shard_transactions_commit_and_read_back() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    // One write per group (item 4 -> group 0, item 5 -> group 1).
    for item in [4u32, 5] {
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                Transaction::new(id, vec![Operation::Write(ItemId(item), 1000 + item as u64)]),
                WAIT,
            )
            .unwrap();
        assert!(report.committed(), "write of item {item}: {report:?}");
        assert!(!report.cross_shard);
    }

    // Read both back — again single-shard, global item names.
    for item in [4u32, 5] {
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                Transaction::new(id, vec![Operation::Read(ItemId(item))]),
                WAIT,
            )
            .unwrap();
        assert!(report.committed());
        assert_eq!(report.read_results.len(), 1);
        assert_eq!(report.read_results[0].0, ItemId(item));
        assert_eq!(report.read_results[0].1.data, 1000 + item as u64);
    }

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn cross_shard_transaction_commits_atomically() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    // Writes in both groups plus a read, in one transaction.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            Transaction::new(
                id,
                vec![
                    Operation::Write(ItemId(2), 21), // group 0
                    Operation::Write(ItemId(3), 31), // group 1
                    Operation::Read(ItemId(2)),
                ],
            ),
            WAIT,
        )
        .unwrap();
    assert!(report.committed(), "cross-shard commit: {report:?}");
    assert!(report.cross_shard);

    // Both groups applied their branch; read back through fresh
    // single-shard transactions. The version stamp is the writer's id.
    let writer = id;
    for (item, want) in [(2u32, 21u64), (3, 31)] {
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                Transaction::new(id, vec![Operation::Read(ItemId(item))]),
                WAIT,
            )
            .unwrap();
        assert!(report.committed());
        assert_eq!(report.read_results[0].1.data, want, "item {item}");
        assert_eq!(report.read_results[0].1.version, writer.0);
    }

    assert_eq!(client.xmetrics().committed, 1);
    assert_eq!(client.xmetrics().aborted, 0);
    assert!(client.cross_commit_latency.count() == 1);

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn cross_shard_read_results_use_global_names() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    // Seed both groups, then read both items in one cross-shard txn.
    for (item, data) in [(6u32, 66u64), (7, 77)] {
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                Transaction::new(id, vec![Operation::Write(ItemId(item), data)]),
                WAIT,
            )
            .unwrap();
        assert!(report.committed());
    }
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            Transaction::new(
                id,
                vec![Operation::Read(ItemId(6)), Operation::Read(ItemId(7))],
            ),
            WAIT,
        )
        .unwrap();
    assert!(report.committed(), "{report:?}");
    assert!(report.cross_shard);
    let values: Vec<(u32, u64)> = report
        .read_results
        .iter()
        .map(|(i, v)| (i.0, v.data))
        .collect();
    assert_eq!(values, vec![(6, 66), (7, 77)]);

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn group_failure_does_not_stall_other_group() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    // Kill one site of group 0. Group 1 traffic must keep committing
    // without any recovery-related delay or abort.
    client.fail(SiteId(0));
    for round in 0..5u64 {
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                Transaction::new(id, vec![Operation::Write(ItemId(1), round)]), // group 1
                WAIT,
            )
            .unwrap();
        assert!(
            report.committed(),
            "group 1 write during group 0 failure: {report:?}"
        );
    }

    // Group 0's survivor detects the failure on first contact (abort),
    // then commits with fail-locks — the paper's intra-group behavior.
    let mut committed = false;
    for _ in 0..3 {
        let id = client.next_txn_id();
        let report = client
            .run_txn(
                Transaction::new(id, vec![Operation::Write(ItemId(0), 5)]),
                WAIT,
            )
            .unwrap();
        if report.committed() {
            committed = true;
            break;
        }
    }
    assert!(committed, "group 0 should commit after failure detection");

    // Recover the failed site; group 1 is untouched throughout.
    client.recover(SiteId(0), WAIT).unwrap();
    let id = client.next_txn_id();
    let report = client
        .run_txn(Transaction::new(id, vec![Operation::Read(ItemId(1))]), WAIT)
        .unwrap();
    assert!(report.committed());
    assert_eq!(report.read_results[0].1.data, 4);

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn no_vote_aborts_all_branches() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    // Kill BOTH sites of group 1: its branch cannot prepare, so the
    // vote deadline forces a global abort; group 0's branch must be
    // rolled back (its write never becomes visible).
    client.fail(SiteId(2));
    client.fail(SiteId(3));
    std::thread::sleep(Duration::from_millis(100));

    let id = client.next_txn_id();
    let report = client
        .run_txn(
            Transaction::new(
                id,
                vec![
                    Operation::Write(ItemId(0), 999), // group 0
                    Operation::Write(ItemId(1), 999), // group 1 (dead)
                ],
            ),
            WAIT,
        )
        .unwrap();
    assert!(!report.committed(), "must abort: {report:?}");
    assert!(report.cross_shard);
    assert_eq!(client.xmetrics().aborted, 1);

    // Group 0 never exposed the aborted write.
    let id = client.next_txn_id();
    let report = client
        .run_txn(Transaction::new(id, vec![Operation::Read(ItemId(0))]), WAIT)
        .unwrap();
    assert!(report.committed());
    assert_eq!(report.read_results[0].1.data, 0, "aborted write leaked");
    assert_eq!(report.read_results[0].1.version, 0);

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn branch_coordinator_failure_after_decision_is_redriven() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    // Commit a cross-shard transaction, then kill the site that
    // coordinated group 0's branch *immediately* after submitting the
    // next one. Depending on timing the branch is parked or decided
    // when the kill lands; either way the transaction must reach a
    // consistent global outcome and, if committed, both groups must
    // show the writes (the re-drive loop repairs a lost branch).
    let warm = client.next_txn_id();
    let report = client
        .run_txn(
            Transaction::new(
                warm,
                vec![
                    Operation::Write(ItemId(0), 1),
                    Operation::Write(ItemId(1), 1),
                ],
            ),
            WAIT,
        )
        .unwrap();
    assert!(report.committed());

    let id = client.next_txn_id();
    client.submit(Transaction::new(
        id,
        vec![
            Operation::Write(ItemId(0), 42), // group 0
            Operation::Write(ItemId(1), 43), // group 1
        ],
    ));
    // Kill a group-0 site while the 2PC is in flight. The managed Fail
    // is management traffic, so it can land between prepare and decide.
    client.fail(SiteId(0));

    let report = client.wait_report(id, Duration::from_secs(10)).unwrap();

    if report.committed() {
        // Both branches must be visible, whichever path (parked resume
        // or re-drive) applied them. Survivor of group 0 is site 1.
        let rid = client.next_txn_id();
        let check = client
            .run_txn(
                Transaction::new(
                    rid,
                    vec![Operation::Read(ItemId(0)), Operation::Read(ItemId(1))],
                ),
                WAIT,
            )
            .unwrap();
        assert!(check.committed(), "{check:?}");
        let values: Vec<(u32, u64, u64)> = check
            .read_results
            .iter()
            .map(|(i, v)| (i.0, v.version, v.data))
            .collect();
        assert_eq!(
            values,
            vec![(0, id.0, 42), (1, id.0, 43)],
            "committed cross-shard writes must be atomic"
        );
    } else {
        // Aborted globally: neither branch's write may be visible.
        let rid = client.next_txn_id();
        let check = client
            .run_txn(
                Transaction::new(
                    rid,
                    vec![Operation::Read(ItemId(0)), Operation::Read(ItemId(1))],
                ),
                WAIT,
            )
            .unwrap();
        assert!(check.committed());
        for (item, v) in &check.read_results {
            assert_ne!(
                v.version, id.0,
                "aborted branch write leaked at item {item}"
            );
        }
    }

    client.recover(SiteId(0), WAIT).unwrap();
    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn sharded_metrics_scrapes_work_per_site() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    let id = client.next_txn_id();
    client
        .run_txn(
            Transaction::new(
                id,
                vec![
                    Operation::Write(ItemId(0), 7),
                    Operation::Write(ItemId(1), 8),
                ],
            ),
            WAIT,
        )
        .unwrap();

    for i in 0..spec().n_physical_sites() {
        let text = client.fetch_metrics(SiteId(i), WAIT).unwrap();
        assert!(
            text.contains("miniraid_msgs_sent"),
            "site {i} exposition missing counters"
        );
    }

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn duplicate_submissions_of_inflight_id_are_dropped() {
    // The engine-side idempotence guard the re-drive loop relies on:
    // submitting the same id twice must coordinate it exactly once.
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    let id = client.next_txn_id();
    let txn = Transaction::new(id, vec![Operation::Write(ItemId(0), 11)]);
    client.submit(txn.clone());
    let report = client.wait_report(id, WAIT).unwrap();
    assert!(report.committed());

    // Same id again, different payload: the engines' version ordering
    // (install only fresher) makes the re-run a no-op on the data even
    // though the first coordination already finished.
    let again = Transaction::new(id, vec![Operation::Write(ItemId(0), 12)]);
    client.submit(again);
    let _ = client.wait_report(id, Duration::from_secs(2));

    let rid = client.next_txn_id();
    let check = client
        .run_txn(
            Transaction::new(rid, vec![Operation::Read(ItemId(0))]),
            WAIT,
        )
        .unwrap();
    assert_eq!(
        check.read_results[0].1.data, 11,
        "stale re-run must not win"
    );

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn four_group_topology_commits_across_all_groups() {
    let spec = ShardSpec::new(4, 2, 4);
    let (cluster, mut client) =
        Cluster::launch_sharded(spec, base_config(), ClusterTiming::default());

    // One transaction touching all four groups (items 0,1,2,3).
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            Transaction::new(
                id,
                (0..4u32)
                    .map(|i| Operation::Write(ItemId(i), 100 + i as u64))
                    .collect(),
            ),
            WAIT,
        )
        .unwrap();
    assert!(report.committed(), "{report:?}");

    let rid = client.next_txn_id();
    let check = client
        .run_txn(
            Transaction::new(rid, (0..4u32).map(|i| Operation::Read(ItemId(i))).collect()),
            WAIT,
        )
        .unwrap();
    assert!(check.committed());
    let values: Vec<u64> = check.read_results.iter().map(|(_, v)| v.data).collect();
    assert_eq!(values, vec![100, 101, 102, 103]);

    client.terminate_all();
    cluster.join(WAIT);
}

#[test]
fn confirmed_cross_shard_decisions_are_retired_from_the_log() {
    let (cluster, mut client) =
        Cluster::launch_sharded(spec(), base_config(), ClusterTiming::default());

    // A cross-shard commit appends its decision record to the log
    // group; once every branch confirms, the coordinator broadcasts
    // `XLogRetire` and the replicas garbage-collect it.
    let id = client.next_txn_id();
    let report = client
        .run_txn(
            Transaction::new(
                id,
                vec![
                    Operation::Write(ItemId(2), 1), // group 0
                    Operation::Write(ItemId(3), 2), // group 1
                ],
            ),
            WAIT,
        )
        .unwrap();
    assert!(report.committed() && report.cross_shard, "{report:?}");

    // The retire broadcast is fire-and-forget, racing this probe to
    // the replicas; poll until a quorum read shows the record gone.
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let records = client.probe_xlog(WAIT).unwrap();
        if records.iter().all(|r| r.txn != id) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "decision record for {id} still replicated after quorum-ack: {records:?}"
        );
        client.pump_for(Duration::from_millis(50)).unwrap();
    }

    client.terminate_all();
    cluster.join(WAIT);
}
