//! Chaos harness CLI: run a seeded randomized schedule of site kills,
//! recoveries, partitions, and transport faults against a live cluster,
//! checking invariants continuously. Exits 0 when every invariant held;
//! exits 1 and writes the JSONL trace on a violation, printing the seed
//! for deterministic replay.
//!
//! ```text
//! chaos thread [--seed N] [--steps N] [--sites N] [--drop P] [--dup P]
//!              [--shards N] [--sites-per-group N] [--cross-pct N]
//!              [--kill-coordinator] [--kill-point POINT]
//!              [--reshard] [--reshard-kill donor|recipient|resharder]
//!              [--vote-timeout-ms N] [--redrive-ms N]
//!              [--no-reliable] [--trace-out FILE]
//! chaos proc   [--seed N] [--kills N] [--sites N] [--drop P] [--dup P]
//!              [--base-port N] [--no-reliable] [--trace-out FILE]
//! ```
//!
//! `thread` drives an in-process channel cluster (site kills are
//! protocol-level Fail commands; partitions are one-way link blocks).
//! With `--shards N` (N ≥ 2) it drives a *sharded* cluster instead: N
//! replication groups with single- and cross-shard traffic, and the
//! oracle additionally checks cross-shard atomicity. With
//! `--kill-coordinator` the cross-shard coordinator itself is
//! repeatedly killed at `--kill-point` (`after-prepare`, `after-votes`,
//! or `mid-decide`; default `after-votes`) and a successor must take
//! over from the replicated decision log — the atomicity oracle still
//! has to hold. With `--reshard` it runs a *live resharding* schedule
//! instead: a mapped cluster migrates a seed-chosen item range between
//! groups under foreground traffic, optionally killing a donor member,
//! a recipient member, or the resharder itself mid-copy
//! (`--reshard-kill`); the oracle checks no item is lost and no item
//! ends up double-owned.
//! `proc` drives real `miniraid-site` OS processes over TCP with
//! WAL-backed stores: kills are SIGKILL mid-transaction, restarts
//! replay the WAL — the paper's site failure model made literal.

use std::path::PathBuf;

use miniraid_cluster::chaos::{
    run_process_chaos, run_reshard_chaos, run_sharded_chaos, run_thread_chaos, ChaosOptions,
    ChaosOutcome, ProcChaosOptions, ReshardChaosOptions, ShardChaosOptions,
};
use miniraid_cluster::{CoordKillPoint, ReshardKillPoint};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn finish(outcome: ChaosOutcome, trace_out: Option<PathBuf>, seed: u64) -> ! {
    let violated = !outcome.passed();
    // Always write the trace when asked; on violation, write it even
    // unasked so the schedule is never lost.
    let trace_path =
        trace_out.or_else(|| violated.then(|| PathBuf::from(format!("chaos-trace-{seed}.jsonl"))));
    if let Some(path) = trace_path {
        let body = outcome.trace.join("\n") + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("chaos: failed to write trace {}: {e}", path.display());
        } else {
            eprintln!("chaos: trace written to {}", path.display());
        }
    }
    println!(
        "chaos: seed={seed} committed={} in_doubt={} aborted={} violations={}",
        outcome.committed_writes,
        outcome.in_doubt_writes,
        outcome.aborted,
        outcome.violations.len()
    );
    for v in &outcome.violations {
        println!("chaos: VIOLATION: {v}");
    }
    if violated {
        println!("chaos: FAILED (replay with --seed {seed})");
        std::process::exit(1);
    }
    println!("chaos: all invariants held");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("thread");
    let seed: u64 = parse_flag(&args, "--seed").unwrap_or(1);
    let sites: u8 = parse_flag(&args, "--sites").unwrap_or(4);
    let drop: f64 = parse_flag(&args, "--drop").unwrap_or(0.10);
    let dup: f64 = parse_flag(&args, "--dup").unwrap_or(0.05);
    let with_reliable = !args.iter().any(|a| a == "--no-reliable");
    let trace_out: Option<PathBuf> = parse_flag(&args, "--trace-out");

    match mode {
        "thread" => {
            let shards: u8 = parse_flag(&args, "--shards").unwrap_or(1);
            if args.iter().any(|a| a == "--reshard") {
                let kill_name: Option<String> = parse_flag(&args, "--reshard-kill");
                let kill = match kill_name.as_deref() {
                    None => None,
                    Some(name) => match ReshardKillPoint::parse(name) {
                        Some(kp) => Some(kp),
                        None => {
                            eprintln!(
                                "chaos: unknown --reshard-kill {name:?} \
                                 (use donor, recipient, or resharder)"
                            );
                            std::process::exit(2);
                        }
                    },
                };
                let opts = ReshardChaosOptions {
                    seed,
                    n_groups: shards.max(2),
                    sites_per_group: parse_flag(&args, "--sites-per-group").unwrap_or(2),
                    db_size: parse_flag(&args, "--db-size").unwrap_or(48),
                    kill,
                    // Reshard runs default to a clean network: the
                    // schedule's faults are the kills, and the oracle's
                    // read rounds assume recoveries eventually land.
                    drop: parse_flag(&args, "--drop").unwrap_or(0.0),
                    duplicate: parse_flag(&args, "--dup").unwrap_or(0.0),
                    with_reliable,
                };
                eprintln!("chaos: reshard thread mode, {opts:?}");
                let outcome = run_reshard_chaos(opts);
                println!(
                    "chaos: reshard items_migrated={} map_epoch={} stale_bounces={} resumes={}",
                    outcome.items_migrated,
                    outcome.map_epoch,
                    outcome.stale_bounces,
                    outcome.resharder_resumes
                );
                finish(outcome, trace_out, seed);
            }
            if shards > 1 {
                let kill_name: Option<String> = parse_flag(&args, "--kill-point");
                let kill_coordinator =
                    if args.iter().any(|a| a == "--kill-coordinator") || kill_name.is_some() {
                        let name = kill_name.as_deref().unwrap_or("after-votes");
                        match CoordKillPoint::parse(name) {
                            Some(kp) => Some(kp),
                            None => {
                                eprintln!(
                                    "chaos: unknown --kill-point {name:?} \
                                 (use after-prepare, after-votes, or mid-decide)"
                                );
                                std::process::exit(2);
                            }
                        }
                    } else {
                        None
                    };
                let opts = ShardChaosOptions {
                    seed,
                    steps: parse_flag(&args, "--steps").unwrap_or(60),
                    n_groups: shards,
                    sites_per_group: parse_flag(&args, "--sites-per-group").unwrap_or(2),
                    group_db_size: parse_flag(&args, "--db-size").unwrap_or(8),
                    cross_pct: parse_flag(&args, "--cross-pct").unwrap_or(30),
                    drop,
                    duplicate: dup,
                    with_reliable,
                    kill_coordinator,
                    shard_vote_timeout_ms: parse_flag(&args, "--vote-timeout-ms"),
                    shard_redrive_interval_ms: parse_flag(&args, "--redrive-ms"),
                };
                eprintln!("chaos: sharded thread mode, {opts:?}");
                finish(run_sharded_chaos(opts), trace_out, seed);
            }
            let opts = ChaosOptions {
                seed,
                steps: parse_flag(&args, "--steps").unwrap_or(60),
                n_sites: sites,
                db_size: parse_flag(&args, "--db-size").unwrap_or(16),
                drop,
                duplicate: dup,
                with_reliable,
            };
            eprintln!("chaos: thread mode, {opts:?}");
            finish(run_thread_chaos(opts), trace_out, seed);
        }
        "proc" => {
            // `miniraid-site` sits next to this binary in the target dir.
            let site_bin = std::env::current_exe()
                .expect("current exe")
                .with_file_name("miniraid-site");
            if !site_bin.exists() {
                eprintln!(
                    "chaos: {} not found (build with `cargo build --bin miniraid-site`)",
                    site_bin.display()
                );
                std::process::exit(2);
            }
            let durable_dir =
                std::env::temp_dir().join(format!("miniraid-chaos-{}-{seed}", std::process::id()));
            let opts = ProcChaosOptions {
                seed,
                kills: parse_flag(&args, "--kills").unwrap_or(3),
                writes_per_round: parse_flag(&args, "--writes").unwrap_or(6),
                n_sites: sites,
                db_size: parse_flag(&args, "--db-size").unwrap_or(16),
                base_port: parse_flag(&args, "--base-port")
                    .unwrap_or_else(|| 27000 + (std::process::id() % 500) as u16 * 8),
                site_bin,
                durable_dir: durable_dir.clone(),
                drop,
                duplicate: dup,
                with_reliable,
            };
            eprintln!("chaos: proc mode, {opts:?}");
            let outcome = run_process_chaos(&opts);
            let _ = std::fs::remove_dir_all(&durable_dir);
            finish(outcome, trace_out, seed);
        }
        other => {
            eprintln!("chaos: unknown mode {other:?} (use `thread` or `proc`)");
            std::process::exit(2);
        }
    }
}
