//! Trace smoke test: run a short 3-site cluster scenario with JSONL
//! tracing enabled, then validate that every emitted line parses back
//! under the trace schema and that the analyzer produces a report.
//!
//! ```text
//! trace-smoke [trace_dir]            # default: target/trace-smoke
//! trace-smoke --sharded [trace_dir]  # default: target/trace-smoke-sharded
//! ```
//!
//! `--sharded` runs a 2-group × 2-site topology with causal tracing,
//! WAL-backed durability and the reliable layer, drives cross-shard
//! transactions around a mid-run site kill/recover (annotated into the
//! client's trace stream), then reassembles the traces into span trees
//! and asserts a committed cross-shard transaction shows the client's
//! 2PC milestones, branch work on both groups, and a covering WAL
//! fsync — all from one JSONL stream set.
//!
//! Exits non-zero if any trace line fails to parse or no commits were
//! traced. CI runs this and uploads the trace directory as an artifact.

use std::time::Duration;

use miniraid_cluster::{Cluster, ClusterTiming};
use miniraid_core::config::ProtocolConfig;
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::messages::TxnOutcome;
use miniraid_core::ops::{Operation, Transaction};

const WAIT: Duration = Duration::from_secs(10);

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sharded = args.iter().any(|a| a == "--sharded");
    args.retain(|a| a != "--sharded");
    if sharded {
        let dir = args
            .first()
            .cloned()
            .unwrap_or_else(|| "target/trace-smoke-sharded".to_string());
        sharded_smoke(std::path::PathBuf::from(dir));
        return;
    }
    let dir = args
        .first()
        .cloned()
        .unwrap_or_else(|| "target/trace-smoke".to_string());
    let dir = std::path::PathBuf::from(dir);

    let config = ProtocolConfig {
        n_sites: 3,
        db_size: 20,
        max_inflight: 4,
        ..ProtocolConfig::default()
    };
    let (cluster, mut client, hubs) =
        Cluster::launch_observed(config, ClusterTiming::default(), Some(&dir))
            .expect("launch observed cluster");

    // Phase 1: all sites up.
    let mut committed = 0u64;
    for i in 0..20u64 {
        let txn = Transaction::new(
            client.next_txn_id(),
            vec![
                Operation::Read(ItemId((i % 20) as u32)),
                Operation::Write(ItemId(((i + 3) % 20) as u32), i),
            ],
        );
        let report = client
            .run_txn(SiteId((i % 3) as u8), txn, WAIT)
            .expect("transaction report");
        if report.outcome == TxnOutcome::Committed {
            committed += 1;
        }
    }

    // Phase 2: fail site 2, keep updating so fail-locks accumulate, then
    // recover it (type-1 control transaction + copier refresh).
    client.fail(SiteId(2));
    for i in 0..10u64 {
        let txn = Transaction::new(
            client.next_txn_id(),
            vec![Operation::Write(ItemId((i % 20) as u32), 1000 + i)],
        );
        let report = client
            .run_txn(SiteId((i % 2) as u8), txn, WAIT)
            .expect("transaction report");
        if report.outcome == TxnOutcome::Committed {
            committed += 1;
        }
    }
    let session = client.recover(SiteId(2), WAIT).expect("recovery");
    eprintln!("site 2 recovered in session {session}");

    // Phase 3: a few more transactions after recovery.
    for i in 0..10u64 {
        let txn = Transaction::new(
            client.next_txn_id(),
            vec![
                Operation::Read(ItemId((i % 20) as u32)),
                Operation::Write(ItemId((i % 20) as u32), 2000 + i),
            ],
        );
        let report = client
            .run_txn(SiteId((i % 3) as u8), txn, WAIT)
            .expect("transaction report");
        if report.outcome == TxnOutcome::Committed {
            committed += 1;
        }
    }

    client.terminate_all();
    cluster.join(Duration::from_secs(5));
    drop(hubs);

    // Validate: every line of every site's trace parses under the schema.
    let mut total_events = 0u64;
    let mut all_events = Vec::new();
    for i in 0..3 {
        let path = dir.join(format!("site-{i}.jsonl"));
        let events = miniraid_obs::read_trace(&path)
            .unwrap_or_else(|e| panic!("trace validation failed: {e}"));
        eprintln!(
            "site {i}: {} events parsed from {}",
            events.len(),
            path.display()
        );
        total_events += events.len() as u64;
        all_events.extend(events);
    }

    let analysis = miniraid_obs::analyze(&all_events);
    print!("{}", miniraid_obs::render_report(&analysis));

    let traced_commits = analysis
        .event_counts
        .get("commit")
        .copied()
        .unwrap_or_default();
    assert!(committed > 0, "no transactions committed");
    assert_eq!(
        traced_commits, committed,
        "trace commit count must match reported commits"
    );
    assert!(
        analysis.event_counts.contains_key("faillocks_set"),
        "failure phase must set fail-locks"
    );
    assert!(
        analysis.event_counts.contains_key("control"),
        "recovery must run a control transaction"
    );
    eprintln!(
        "trace-smoke OK: {total_events} events, {committed} commits, traces in {}",
        dir.display()
    );
}

/// Cross-shard traced scenario: 2 groups × 2 sites, reliable layer and
/// WAL durability on, causal tracing via `MINIRAID_CHAOS_TRACE_DIR`.
/// Validates the whole observability plane end to end: the client's
/// cross-shard 2PC, both groups' branch work, the covering WAL fsync
/// and the chaos kill/recover annotations all reassemble from one set
/// of JSONL streams.
fn sharded_smoke(dir: std::path::PathBuf) {
    use miniraid_core::trace::{ChaosAction, EventKind};
    use miniraid_net::fault::FaultPlan;
    use miniraid_shard::ShardSpec;

    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("MINIRAID_CHAOS_TRACE_DIR", &dir);
    std::env::set_var("MINIRAID_SHARD_DURABLE_DIR", dir.join("wal"));

    let spec = ShardSpec::new(2, 2, 10);
    let config = ProtocolConfig {
        max_inflight: 4,
        emit_persistence: true,
        ..ProtocolConfig::default()
    };
    let (cluster, mut client, _controls) = Cluster::launch_sharded_faulty(
        spec,
        config,
        ClusterTiming::default(),
        FaultPlan::none(7),
        true,
    );

    let run_cross = |client: &mut miniraid_cluster::ShardedClient<_, _>, i: u64| -> bool {
        // Items 2k and 2k+1 live in groups 0 and 1 respectively, so
        // every one of these transactions is cross-shard.
        let a = ItemId(((i * 2) % 20) as u32);
        let b = ItemId(((i * 2 + 1) % 20) as u32);
        let txn = Transaction::new(
            client.next_txn_id(),
            vec![Operation::Write(a, i), Operation::Write(b, 100 + i)],
        );
        let report = client.run_txn(txn, WAIT).expect("cross-shard report");
        report.committed()
    };

    let mut committed = 0u64;
    for i in 0..6 {
        committed += run_cross(&mut client, i) as u64;
    }

    // Kill group 0's second member mid-run, annotating the schedule into
    // the client's trace stream, and keep committing cross-shard work
    // while the group runs degraded.
    let victim = SiteId(1);
    client.tracer().emit_traced(
        None,
        0,
        EventKind::Chaos {
            action: ChaosAction::Kill,
            target: victim,
        },
    );
    client.fail(victim);
    for i in 6..12 {
        committed += run_cross(&mut client, i) as u64;
    }
    client.tracer().emit_traced(
        None,
        0,
        EventKind::Chaos {
            action: ChaosAction::Recover,
            target: victim,
        },
    );
    let session = client.recover(victim, WAIT).expect("sharded recovery");
    eprintln!("site {} recovered in session {session}", victim.0);
    for i in 12..16 {
        committed += run_cross(&mut client, i) as u64;
    }

    client.terminate_all();
    cluster.join(Duration::from_secs(5));
    // The client's JSONL sink buffers; only dropping the client flushes
    // its tail. Reading `client.jsonl` before this point silently loses
    // whatever sits past the last full buffer chunk.
    drop(client);
    assert!(committed > 0, "no cross-shard transactions committed");

    // Sharded engines run under group-local site ids (each group has its
    // own SiteId(0)); `read_trace_dir` re-stamps each stream with the
    // physical id from its file name before reassembly, so the two
    // groups' participants don't collapse onto each other in the span
    // tree.
    let all_events = miniraid_obs::read_trace_dir(&dir)
        .unwrap_or_else(|e| panic!("trace validation failed: {e}"));
    eprintln!(
        "{} events parsed from {} streams in {}",
        all_events.len(),
        spec.n_physical_sites() + 1,
        dir.display()
    );

    // The chaos schedule annotations landed in the same stream set.
    let kills = all_events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Chaos {
                    action: ChaosAction::Kill,
                    ..
                }
            )
        })
        .count();
    let recovers = all_events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Chaos {
                    action: ChaosAction::Recover,
                    ..
                }
            )
        })
        .count();
    assert!(kills > 0, "chaos kill annotation missing from trace stream");
    assert!(
        recovers > 0,
        "chaos recover annotation missing from trace stream"
    );

    let spans = miniraid_obs::assemble_spans(&all_events);
    print!("{}", miniraid_obs::render_spans(&spans));
    assert!(!spans.is_empty(), "no traced transactions reassembled");

    // At least one committed cross-shard trace must show the full
    // causal picture: client 2PC milestones, branch participants from
    // BOTH groups, and a covering WAL fsync.
    let full = spans.iter().find(|t| {
        if !t.committed {
            return false;
        }
        let client_ok = t.root.children.iter().any(|c| {
            c.label == "client"
                && c.events.iter().any(|e| e.starts_with("x_begin"))
                && c.events.iter().any(|e| e.starts_with("x_decide(commit)"))
        });
        let mut groups = std::collections::BTreeSet::new();
        let mut fsync = false;
        for branch in t
            .root
            .children
            .iter()
            .filter(|c| c.label.starts_with("branch"))
        {
            for site in &branch.children {
                let id: u8 = site
                    .label
                    .strip_prefix("site ")
                    .and_then(|s| s.parse().ok())
                    .expect("site label");
                groups.insert(spec.local_site(SiteId(id)).0);
                fsync |= site.events.iter().any(|e| e.starts_with("wal_fsync"));
            }
        }
        client_ok && groups.len() == 2 && fsync
    });
    let full = full.expect(
        "no committed trace with client 2PC, branches on both groups, and a covering wal_fsync",
    );
    eprintln!(
        "sharded trace-smoke OK: {committed} cross-shard commits, trace {:#x} spans {} txns across both groups, traces in {}",
        full.trace,
        full.txns.len(),
        dir.display()
    );
}
