//! Trace smoke test: run a short 3-site cluster scenario with JSONL
//! tracing enabled, then validate that every emitted line parses back
//! under the trace schema and that the analyzer produces a report.
//!
//! ```text
//! trace-smoke [trace_dir]     # default: target/trace-smoke
//! ```
//!
//! Exits non-zero if any trace line fails to parse or no commits were
//! traced. CI runs this and uploads the trace directory as an artifact.

use std::time::Duration;

use miniraid_cluster::{Cluster, ClusterTiming};
use miniraid_core::config::ProtocolConfig;
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::messages::TxnOutcome;
use miniraid_core::ops::{Operation, Transaction};

const WAIT: Duration = Duration::from_secs(10);

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace-smoke".to_string());
    let dir = std::path::PathBuf::from(dir);

    let config = ProtocolConfig {
        n_sites: 3,
        db_size: 20,
        max_inflight: 4,
        ..ProtocolConfig::default()
    };
    let (cluster, mut client, hubs) =
        Cluster::launch_observed(config, ClusterTiming::default(), Some(&dir))
            .expect("launch observed cluster");

    // Phase 1: all sites up.
    let mut committed = 0u64;
    for i in 0..20u64 {
        let txn = Transaction::new(
            client.next_txn_id(),
            vec![
                Operation::Read(ItemId((i % 20) as u32)),
                Operation::Write(ItemId(((i + 3) % 20) as u32), i),
            ],
        );
        let report = client
            .run_txn(SiteId((i % 3) as u8), txn, WAIT)
            .expect("transaction report");
        if report.outcome == TxnOutcome::Committed {
            committed += 1;
        }
    }

    // Phase 2: fail site 2, keep updating so fail-locks accumulate, then
    // recover it (type-1 control transaction + copier refresh).
    client.fail(SiteId(2));
    for i in 0..10u64 {
        let txn = Transaction::new(
            client.next_txn_id(),
            vec![Operation::Write(ItemId((i % 20) as u32), 1000 + i)],
        );
        let report = client
            .run_txn(SiteId((i % 2) as u8), txn, WAIT)
            .expect("transaction report");
        if report.outcome == TxnOutcome::Committed {
            committed += 1;
        }
    }
    let session = client.recover(SiteId(2), WAIT).expect("recovery");
    eprintln!("site 2 recovered in session {session}");

    // Phase 3: a few more transactions after recovery.
    for i in 0..10u64 {
        let txn = Transaction::new(
            client.next_txn_id(),
            vec![
                Operation::Read(ItemId((i % 20) as u32)),
                Operation::Write(ItemId((i % 20) as u32), 2000 + i),
            ],
        );
        let report = client
            .run_txn(SiteId((i % 3) as u8), txn, WAIT)
            .expect("transaction report");
        if report.outcome == TxnOutcome::Committed {
            committed += 1;
        }
    }

    client.terminate_all();
    cluster.join(Duration::from_secs(5));
    drop(hubs);

    // Validate: every line of every site's trace parses under the schema.
    let mut total_events = 0u64;
    let mut all_events = Vec::new();
    for i in 0..3 {
        let path = dir.join(format!("site-{i}.jsonl"));
        let events = miniraid_obs::read_trace(&path)
            .unwrap_or_else(|e| panic!("trace validation failed: {e}"));
        eprintln!(
            "site {i}: {} events parsed from {}",
            events.len(),
            path.display()
        );
        total_events += events.len() as u64;
        all_events.extend(events);
    }

    let analysis = miniraid_obs::analyze(&all_events);
    print!("{}", miniraid_obs::render_report(&analysis));

    let traced_commits = analysis
        .event_counts
        .get("commit")
        .copied()
        .unwrap_or_default();
    assert!(committed > 0, "no transactions committed");
    assert_eq!(
        traced_commits, committed,
        "trace commit count must match reported commits"
    );
    assert!(
        analysis.event_counts.contains_key("faillocks_set"),
        "failure phase must set fail-locks"
    );
    assert!(
        analysis.event_counts.contains_key("control"),
        "recovery must run a control transaction"
    );
    eprintln!(
        "trace-smoke OK: {total_events} events, {committed} commits, traces in {}",
        dir.display()
    );
}
