//! The managing site as a standalone process: drives `miniraid-site`
//! processes over TCP.
//!
//! ```text
//! miniraid-ctl <n_sites> <base_port> txn <site> <op>...   # r<item> / w<item>=<value>
//! miniraid-ctl <n_sites> <base_port> fail <site>
//! miniraid-ctl <n_sites> <base_port> recover <site>
//! miniraid-ctl <n_sites> <base_port> metrics <site>       # Prometheus-style text
//! miniraid-ctl <n_sites> <base_port> watch [interval_ms] [rounds] [--jsonl]
//! miniraid-ctl <n_sites> <base_port> terminate
//! miniraid-ctl trace <file.jsonl | trace-dir/>            # offline trace analysis
//! ```
//!
//! `trace` is offline: it replays a JSONL trace (written by a site run
//! with `MINIRAID_TRACE=<path>`, or by `trace-smoke`) into a
//! per-transaction phase breakdown, a critical-path summary, an ASCII
//! commit-latency chart and — when the trace carries causal trace ids —
//! one reassembled span tree per traced (possibly cross-shard)
//! transaction. It takes no cluster coordinates.
//!
//! `watch` scrapes every site's metrics exposition each interval and
//! renders a refreshing health table (liveness + session epoch, commit
//! p50/p99, lock-wait p99, per-interval abort deltas by reason,
//! fsyncs per committed transaction, reliable-layer retransmits). With
//! `--jsonl` it appends one machine-readable line per site per round to
//! stdout instead; `rounds = 0` watches forever.

use std::time::Duration;

use miniraid_cluster::control::ManagingClient;
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_net::tcp::{AddressPlan, TcpEndpoint};

const WAIT: Duration = Duration::from_secs(10);

fn main() {
    let usage = "usage: miniraid-ctl <n_sites> <base_port> <txn|fail|recover|metrics|watch|terminate> ...\n       miniraid-ctl trace <file.jsonl>";
    let mut args = std::env::args().skip(1);
    let first = args.next().expect(usage);
    if first == "trace" {
        let path = args.next().expect(usage);
        print!("{}", trace_report(&path).unwrap_or_else(|e| panic!("{e}")));
        return;
    }
    let n_sites: u8 = first.parse().expect(usage);
    let base_port: u16 = args.next().and_then(|s| s.parse().ok()).expect(usage);
    let command = args.next().expect(usage);

    let plan = AddressPlan { base_port };
    let (transport, mailbox) = TcpEndpoint::bind(SiteId(n_sites), plan).expect("bind manager port");
    let mut client = ManagingClient::new(transport, mailbox, n_sites);

    match command.as_str() {
        "txn" => {
            let site: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
            let mut ops = Vec::new();
            for word in args {
                ops.push(parse_op(&word).expect("op syntax: r<item> or w<item>=<value>"));
            }
            assert!(!ops.is_empty(), "txn needs at least one operation");
            let id = client.next_txn_id_from_clock();
            let report = client
                .run_txn(SiteId(site), Transaction::new(id, ops), WAIT)
                .expect("transaction report");
            println!("{}: {:?}", report.txn, report.outcome);
            for (item, value) in &report.read_results {
                println!(
                    "  read {item} -> {} (version {})",
                    value.data, value.version
                );
            }
        }
        "fail" => {
            let site: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
            client.fail(SiteId(site));
            println!("sent Fail to site {site}");
        }
        "recover" => {
            let site: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
            let session = client.recover(SiteId(site), WAIT).expect("recovery");
            println!("site {site} operational in session {session}");
        }
        "metrics" => {
            let site: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
            let text = client
                .fetch_metrics(SiteId(site), WAIT)
                .expect("metrics response");
            print!("{text}");
        }
        "watch" => {
            let rest: Vec<String> = args.collect();
            let jsonl = rest.iter().any(|a| a == "--jsonl");
            let mut nums = rest.iter().filter_map(|a| a.parse::<u64>().ok());
            let interval = Duration::from_millis(nums.next().unwrap_or(1000));
            let rounds = nums.next().unwrap_or(0);
            watch(&mut client, interval, rounds, jsonl);
        }
        "terminate" => {
            client.terminate_all();
            println!("sent Terminate to all {n_sites} sites");
        }
        other => panic!("unknown command '{other}'\n{usage}"),
    }
}

/// Scrape every site each `interval` and render the health view.
/// `rounds = 0` runs until interrupted. A site whose scrape times out
/// is rendered as an empty (down, all-zero) row rather than aborting
/// the watch — an unreachable site is exactly what the view is for.
fn watch<T, M>(client: &mut ManagingClient<T, M>, interval: Duration, rounds: u64, jsonl: bool)
where
    T: miniraid_net::Transport,
    M: miniraid_net::Mailbox,
{
    let timers = miniraid_core::config::ProtocolConfig::default();
    let header = format!(
        "miniraid watch — {} sites, every {}ms — cross-shard timers: vote {}ms, re-drive {}ms",
        client.n_sites(),
        interval.as_millis(),
        timers.shard_vote_timeout_ms,
        timers.shard_redrive_interval_ms,
    );
    let mut prev: Vec<miniraid_obs::SiteSample> = Vec::new();
    let mut round = 0u64;
    loop {
        let mut samples = Vec::new();
        for site in 0..client.n_sites() {
            let sample = match client.fetch_metrics(SiteId(site), Duration::from_secs(2)) {
                Ok(text) => miniraid_obs::parse_site_sample(site, &text),
                Err(_) => miniraid_obs::SiteSample {
                    site,
                    ..Default::default()
                },
            };
            samples.push(sample);
        }
        if jsonl {
            for s in &samples {
                let before = prev.iter().find(|p| p.site == s.site);
                println!("{}", miniraid_obs::render_watch_jsonl(round, s, before));
            }
        } else {
            println!("{}", miniraid_obs::render_watch(&header, &samples, &prev));
        }
        prev = samples;
        round += 1;
        if rounds != 0 && round >= rounds {
            break;
        }
        std::thread::sleep(interval);
    }
}

/// Analyze a JSONL trace: per-transaction phase breakdown,
/// critical-path summary, and a commit-latency-over-time ASCII chart.
/// A directory argument reads the whole stream set (`site-N.jsonl`
/// re-stamped with physical ids, plus `client.jsonl`) — the layout
/// `trace-smoke --sharded` and `MINIRAID_CHAOS_TRACE_DIR` write.
fn trace_report(path: &str) -> Result<String, String> {
    let events = if std::path::Path::new(path).is_dir() {
        miniraid_obs::read_trace_dir(path)?
    } else {
        miniraid_obs::read_trace(path)?
    };
    let analysis = miniraid_obs::analyze(&events);
    let mut out = miniraid_obs::render_report(&analysis);
    let (series, window) = miniraid_obs::analyze::latency_over_time(&analysis, 20);
    if !series.is_empty() {
        out.push('\n');
        out.push_str(&miniraid_sim::report::ascii_chart(
            &format!("commit latency over time ({} ms windows)", window / 1000),
            &series,
            12,
        ));
    }
    let spans = miniraid_obs::assemble_spans(&events);
    if !spans.is_empty() {
        out.push('\n');
        out.push_str(&miniraid_obs::render_spans(&spans));
    }
    Ok(out)
}

fn parse_op(word: &str) -> Option<Operation> {
    if let Some(rest) = word.strip_prefix('r') {
        return Some(Operation::Read(ItemId(rest.parse().ok()?)));
    }
    if let Some(rest) = word.strip_prefix('w') {
        let (item, value) = rest.split_once('=')?;
        return Some(Operation::Write(
            ItemId(item.parse().ok()?),
            value.parse().ok()?,
        ));
    }
    None
}
