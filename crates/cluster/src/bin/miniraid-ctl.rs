//! The managing site as a standalone process: drives `miniraid-site`
//! processes over TCP.
//!
//! ```text
//! miniraid-ctl <n_sites> <base_port> txn <site> <op>...   # r<item> / w<item>=<value>
//! miniraid-ctl <n_sites> <base_port> fail <site>
//! miniraid-ctl <n_sites> <base_port> recover <site>
//! miniraid-ctl <n_sites> <base_port> terminate
//! ```

use std::time::Duration;

use miniraid_cluster::control::ManagingClient;
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_net::tcp::{AddressPlan, TcpEndpoint};

const WAIT: Duration = Duration::from_secs(10);

fn main() {
    let usage = "usage: miniraid-ctl <n_sites> <base_port> <txn|fail|recover|terminate> ...";
    let mut args = std::env::args().skip(1);
    let n_sites: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
    let base_port: u16 = args.next().and_then(|s| s.parse().ok()).expect(usage);
    let command = args.next().expect(usage);

    let plan = AddressPlan { base_port };
    let (transport, mailbox) = TcpEndpoint::bind(SiteId(n_sites), plan).expect("bind manager port");
    let mut client = ManagingClient::new(transport, mailbox, n_sites);

    match command.as_str() {
        "txn" => {
            let site: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
            let mut ops = Vec::new();
            for word in args {
                ops.push(parse_op(&word).expect("op syntax: r<item> or w<item>=<value>"));
            }
            assert!(!ops.is_empty(), "txn needs at least one operation");
            let id = client.next_txn_id_from_clock();
            let report = client
                .run_txn(SiteId(site), Transaction::new(id, ops), WAIT)
                .expect("transaction report");
            println!("{}: {:?}", report.txn, report.outcome);
            for (item, value) in &report.read_results {
                println!(
                    "  read {item} -> {} (version {})",
                    value.data, value.version
                );
            }
        }
        "fail" => {
            let site: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
            client.fail(SiteId(site));
            println!("sent Fail to site {site}");
        }
        "recover" => {
            let site: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
            let session = client.recover(SiteId(site), WAIT).expect("recovery");
            println!("site {site} operational in session {session}");
        }
        "terminate" => {
            client.terminate_all();
            println!("sent Terminate to all {n_sites} sites");
        }
        other => panic!("unknown command '{other}'\n{usage}"),
    }
}

fn parse_op(word: &str) -> Option<Operation> {
    if let Some(rest) = word.strip_prefix('r') {
        return Some(Operation::Read(ItemId(rest.parse().ok()?)));
    }
    if let Some(rest) = word.strip_prefix('w') {
        let (item, value) = rest.split_once('=')?;
        return Some(Operation::Write(
            ItemId(item.parse().ok()?),
            value.parse().ok()?,
        ));
    }
    None
}
