//! Run one database site as a standalone OS process over TCP — the
//! paper's deployment shape ("database sites were implemented as Unix
//! processes"), but across real processes and sockets.
//!
//! ```text
//! miniraid-site <site_id> <n_sites> <base_port> [db_size] [durable_dir]
//! ```
//!
//! Site `i` listens on `base_port + i`; the managing process
//! (`miniraid-ctl`) uses id `n_sites` on `base_port + n_sites`. The
//! process exits when it receives a Terminate command.
//!
//! Observability is always on: the site answers `miniraid-ctl metrics`
//! scrapes with counters and latency histograms. Set
//! `MINIRAID_TRACE=<dir>` to additionally write a JSONL protocol trace
//! to `<dir>/site-<id>.jsonl` for offline `miniraid-ctl trace` analysis.
//!
//! Robustness knobs:
//! * `MINIRAID_FAULTS=seed:drop:dup[:delay_p:delay_ms]` wraps the TCP
//!   transport in a seeded fault injector (see `FaultPlan::parse`).
//! * `MINIRAID_RELIABLE=1` layers the reliable session protocol
//!   (sequence numbers + retransmission + dedup) over the transport, so
//!   the site tolerates the injected — or real — frame loss.

use miniraid_cluster::obs::SiteObs;
use miniraid_cluster::site::{run_site_full, ClusterTiming};
use miniraid_core::config::{ProtocolConfig, TwoStepRecovery};
use miniraid_core::engine::SiteEngine;
use miniraid_core::ids::SiteId;
use miniraid_net::fault::{FaultPlan, FaultTransport};
use miniraid_net::reliable::{reliable, ReliableConfig};
use miniraid_net::tcp::{AddressPlan, TcpEndpoint};
use miniraid_net::{Mailbox, Transport};
use miniraid_storage::DurableStore;

#[allow(clippy::too_many_arguments)]
fn serve<T: Transport + 'static, M: Mailbox>(
    engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    store: Option<DurableStore>,
    obs: SiteObs,
) {
    run_site_full(
        engine,
        transport,
        mailbox,
        manager,
        ClusterTiming::default(),
        store,
        Some(obs),
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: miniraid-site <site_id> <n_sites> <base_port> [db_size] [durable_dir]";
    let site_id: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
    let n_sites: u8 = args.next().and_then(|s| s.parse().ok()).expect(usage);
    let base_port: u16 = args.next().and_then(|s| s.parse().ok()).expect(usage);
    let db_size: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let durable_dir = args.next();

    let mut config = ProtocolConfig {
        db_size,
        n_sites,
        two_step_recovery: Some(TwoStepRecovery::default()),
        ..ProtocolConfig::default()
    };
    let plan = AddressPlan { base_port };
    let (transport, mailbox) = TcpEndpoint::bind(SiteId(site_id), plan).expect("bind site port");
    let manager = SiteId(n_sites);
    let trace_path = std::env::var_os("MINIRAID_TRACE").map(|dir| {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create trace dir");
        dir.join(format!("site-{site_id}.jsonl"))
    });
    eprintln!(
        "miniraid-site {site_id}/{n_sites} listening on {} ({} items{}{})",
        plan.addr(SiteId(site_id)),
        db_size,
        durable_dir.as_deref().map(|_| ", durable").unwrap_or(""),
        trace_path
            .as_deref()
            .map(|p| format!(", tracing to {}", p.display()))
            .unwrap_or_default()
    );

    let store = durable_dir.map(|dir| {
        config.emit_persistence = true;
        let dir = std::path::Path::new(&dir).join(format!("site-{site_id}"));
        miniraid_storage::DurableStore::open(&dir, db_size).expect("open durable store")
    });
    let mut engine = SiteEngine::new(SiteId(site_id), config);
    if let Some(store) = &store {
        if store.last_txn() > 0 {
            // Instant restart: checkpoint values load eagerly (already
            // in memory), WAL records replay lazily in the site loop's
            // background — the process is operational immediately.
            engine.preload_db(
                store
                    .mem()
                    .iter()
                    .filter(|(_, v)| v.version > 0)
                    .map(|(item, v)| (miniraid_core::ids::ItemId(item), v)),
            );
            engine.preload_lazy(store.image());
            engine.preload_faillocks(
                store
                    .faillocks()
                    .iter()
                    .map(|(item, word)| (miniraid_core::ids::ItemId(*item), *word)),
            );
            if store.session() > 0 {
                engine.preload_session(miniraid_core::ids::SessionNumber(store.session()));
            }
            // A restarted process rejoins via Recover.
            engine.assume_failed();
        }
    }
    let obs = SiteObs::attach(&mut engine, trace_path.as_deref()).expect("open trace file");

    let faults = std::env::var("MINIRAID_FAULTS")
        .ok()
        .map(|spec| FaultPlan::parse(&spec).expect("MINIRAID_FAULTS"));
    let reliable_on = std::env::var("MINIRAID_RELIABLE").is_ok_and(|v| v != "0");
    if faults.is_some() || reliable_on {
        eprintln!("miniraid-site {site_id}: faults={faults:?} reliable={reliable_on}");
    }
    // The default `ReliableConfig` derives a fresh epoch from the wall
    // clock, so peers recognise a restarted process and reset their
    // receive links instead of discarding its "stale" sequence numbers.
    match (faults, reliable_on) {
        (None, false) => serve(engine, transport, mailbox, manager, store, obs),
        (Some(plan), false) => {
            let (transport, _control) = FaultTransport::new(transport, plan);
            serve(engine, transport, mailbox, manager, store, obs);
        }
        (None, true) => {
            let (transport, mailbox) = reliable(transport, mailbox, ReliableConfig::default());
            serve(engine, transport, mailbox, manager, store, obs);
        }
        (Some(plan), true) => {
            let (transport, _control) = FaultTransport::new(transport, plan);
            let (transport, mailbox) = reliable(transport, mailbox, ReliableConfig::default());
            serve(engine, transport, mailbox, manager, store, obs);
        }
    }
    eprintln!("miniraid-site {site_id} terminated");
}
