//! The managing client: the paper's "managing site" for the threaded
//! deployment. It injects failures and recoveries, submits transactions,
//! and collects outcome reports over the same transport the sites use.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use miniraid_core::ids::{SessionNumber, SiteId, TxnId};
use miniraid_core::messages::{Command, Message, TxnReport};
use miniraid_core::ops::Transaction;
use miniraid_core::trace::{TraceId, TraceIdGen};
use miniraid_net::{Mailbox, RecvError, Transport};

/// Errors surfaced while driving the cluster.
#[derive(Debug)]
pub enum ControlError {
    /// No response arrived within the deadline.
    Timeout(&'static str),
    /// The network shut down.
    Disconnected,
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ControlError::Disconnected => f.write_str("cluster network disconnected"),
        }
    }
}

impl std::error::Error for ControlError {}

/// The managing site's client handle.
pub struct ManagingClient<T: Transport, M: Mailbox> {
    transport: T,
    mailbox: M,
    n_sites: u8,
    next_txn: u64,
    /// Reports that arrived while waiting for something else.
    stashed: Vec<Message>,
    /// When true, every submitted transaction gets a globally unique
    /// [`TraceId`] and its `Begin` is wrapped in [`Message::Traced`],
    /// so the coordinating engine binds the transaction to the causal
    /// trace before its first event.
    tracing: bool,
    trace_gen: TraceIdGen,
    /// Trace id of every in-flight submitted transaction.
    traces: HashMap<TxnId, TraceId>,
}

impl<T: Transport, M: Mailbox> ManagingClient<T, M> {
    /// Wrap the manager endpoint. `n_sites` is the database site count
    /// (the manager itself uses id `n_sites`).
    pub fn new(transport: T, mailbox: M, n_sites: u8) -> Self {
        ManagingClient {
            transport,
            mailbox,
            n_sites,
            next_txn: 1,
            stashed: Vec::new(),
            tracing: false,
            trace_gen: TraceIdGen::new(n_sites as u64),
            traces: HashMap::new(),
        }
    }

    /// Enable causal trace propagation: every subsequently submitted
    /// transaction is assigned a [`TraceId`] (origin = the manager's
    /// site id) and carried to its coordinator in a
    /// [`Message::Traced`] envelope.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// The trace id assigned to an in-flight transaction (0 when
    /// tracing is off or the transaction already finished).
    pub fn trace_of(&self, txn: TxnId) -> TraceId {
        self.traces.get(&txn).copied().unwrap_or(0)
    }

    /// Wrap `msg` in [`Message::Traced`] when its transaction was
    /// assigned a trace id.
    fn trace_wrap(&self, txn: TxnId, msg: Message) -> Message {
        match self.traces.get(&txn) {
            Some(&trace) => Message::Traced {
                trace,
                inner: Box::new(msg),
            },
            None => msg,
        }
    }

    /// Strip the trace envelope from an inbound frame (trace-id
    /// book-keeping for reports happens here too).
    fn trace_unwrap(&mut self, msg: Message) -> Message {
        match msg {
            Message::Traced { inner, .. } => *inner,
            other => other,
        }
    }

    /// Number of database sites.
    pub fn n_sites(&self) -> u8 {
        self.n_sites
    }

    /// Allocate the next globally unique transaction id.
    pub fn next_txn_id(&mut self) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        id
    }

    /// A transaction id derived from the wall clock — for one-shot
    /// managing processes (e.g. `miniraid-ctl`) whose in-memory counter
    /// does not persist between invocations. Microsecond resolution keeps
    /// ids unique and monotone across sequential invocations.
    pub fn next_txn_id_from_clock(&mut self) -> TxnId {
        let micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_micros() as u64;
        TxnId(micros)
    }

    /// Tell a site to fail (it stops participating in anything).
    pub fn fail(&mut self, site: SiteId) {
        let _ = self.transport.send(site, &Message::Mgmt(Command::Fail));
    }

    /// Tell a site to recover; waits until it reports operational.
    pub fn recover(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<SessionNumber, ControlError> {
        let _ = self.transport.send(site, &Message::Mgmt(Command::Recover));
        self.wait_for(deadline, "recovery", |msg| match msg {
            Message::MgmtRecovered { session } => Some(*session),
            _ => None,
        })
    }

    /// Tell a site to recover without a donor (total-failure bootstrap);
    /// waits until it reports operational. Only correct when the caller
    /// has certified the site was in the last operational set — its local
    /// state becomes the authoritative seed everyone else recovers from.
    pub fn bootstrap(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<SessionNumber, ControlError> {
        let _ = self
            .transport
            .send(site, &Message::Mgmt(Command::Bootstrap));
        self.wait_for(deadline, "bootstrap", |msg| match msg {
            Message::MgmtRecovered { session } => Some(*session),
            _ => None,
        })
    }

    /// Wait for a site to report complete data recovery (all fail-locks
    /// cleared).
    pub fn wait_data_recovered(
        &mut self,
        deadline: Duration,
    ) -> Result<SessionNumber, ControlError> {
        self.wait_for(deadline, "data recovery", |msg| match msg {
            Message::MgmtDataRecovered { session } => Some(*session),
            _ => None,
        })
    }

    /// Submit a transaction to a coordinating site and wait for its
    /// outcome report.
    pub fn run_txn(
        &mut self,
        site: SiteId,
        txn: Transaction,
        deadline: Duration,
    ) -> Result<TxnReport, ControlError> {
        let id = txn.id;
        self.submit_txn(site, txn);
        let report = self.wait_for(deadline, "transaction report", |msg| match msg {
            Message::MgmtReport(report) if report.txn == id => Some(report.clone()),
            _ => None,
        });
        self.traces.remove(&id);
        report
    }

    /// Submit a transaction without waiting for its outcome (open-loop
    /// driving; pair with [`drain_reports`](Self::drain_reports)). The
    /// coordinating site queues or admits it subject to its
    /// `max_inflight` pipeline bound.
    pub fn submit_txn(&mut self, site: SiteId, txn: Transaction) {
        let id = txn.id;
        if self.tracing {
            let trace = self.trace_gen.next_id();
            self.traces.insert(id, trace);
        }
        let msg = self.trace_wrap(id, Message::Mgmt(Command::Begin(txn)));
        let _ = self.transport.send(site, &msg);
    }

    /// Collect every outcome report that has already arrived, without
    /// blocking: stashed reports first, then whatever the mailbox holds.
    pub fn drain_reports(&mut self) -> Vec<TxnReport> {
        let mut reports = Vec::new();
        let mut i = 0;
        while i < self.stashed.len() {
            if matches!(self.stashed[i], Message::MgmtReport(_)) {
                let Message::MgmtReport(report) = self.stashed.remove(i) else {
                    unreachable!("matched above");
                };
                reports.push(report);
            } else {
                i += 1;
            }
        }
        while let Ok((_, msg)) = self.mailbox.try_recv() {
            match self.trace_unwrap(msg) {
                Message::MgmtReport(report) => {
                    self.traces.remove(&report.txn);
                    reports.push(report);
                }
                other => self.stashed.push(other),
            }
        }
        reports
    }

    /// Fetch the Prometheus-style metrics exposition text from a site.
    /// Sites answer even while "down" — the observer sits outside the
    /// failure model, like the paper's measurement harness.
    pub fn fetch_metrics(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<String, ControlError> {
        let _ = self.transport.send(site, &Message::MetricsRequest);
        self.wait_for(deadline, "metrics response", |msg| match msg {
            Message::MetricsResponse { text } => Some(text.clone()),
            _ => None,
        })
    }

    /// Terminate every site (clean shutdown).
    pub fn terminate_all(&mut self) {
        for i in 0..self.n_sites {
            let _ = self
                .transport
                .send(SiteId(i), &Message::Mgmt(Command::Terminate));
        }
    }

    fn wait_for<R>(
        &mut self,
        deadline: Duration,
        what: &'static str,
        mut select: impl FnMut(&Message) -> Option<R>,
    ) -> Result<R, ControlError> {
        // Check stashed messages first.
        if let Some(pos) = self.stashed.iter().position(|m| select(m).is_some()) {
            let msg = self.stashed.remove(pos);
            return Ok(select(&msg).expect("matched above"));
        }
        let until = Instant::now() + deadline;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ControlError::Timeout(what));
            }
            match self.mailbox.recv_timeout(left) {
                Ok((_, msg)) => {
                    let msg = self.trace_unwrap(msg);
                    if let Some(r) = select(&msg) {
                        return Ok(r);
                    }
                    self.stashed.push(msg);
                }
                Err(RecvError::Timeout) => return Err(ControlError::Timeout(what)),
                Err(RecvError::Disconnected) => return Err(ControlError::Disconnected),
            }
        }
    }
}
