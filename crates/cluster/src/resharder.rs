//! The resharding driver: executes a [`MigrationPlan`] against a live
//! mapped cluster.
//!
//! The resharder is the cluster-scope version of the paper's §3.2
//! copier machinery: `MapChange` announcements are its control
//! transactions (type 3 — replication-map changes), and the per-item
//! copy legs are its copier transactions, streaming each migrating
//! item's *committed* state from donor to recipient. One migration
//! walks the four-epoch state machine of [`ShardMap`]:
//!
//! 1. **Announce** (`e+1`): broadcast the migrating map and wait until
//!    every site acknowledges it. Donors keep serving reads and writes;
//!    recipients start admitting write-only copy legs; the client
//!    writes committed donor writes through as they happen.
//! 2. **Copy**: for every migrating item, read its committed value at
//!    the donor and install it at the recipient under the original
//!    version stamp (the writing transaction's id), so copies are
//!    idempotent and never clobber a fresher write-through.
//! 3. **Freeze** (`e+2`): donors go read-only on the migrating ranges.
//! 4. **Sweep**: re-copy every migrating item from the now
//!    write-quiesced donor — this pass closes the race where a write
//!    committed at the donor after the copier read it but its
//!    write-through leg was lost to a dying recipient coordinator.
//! 5. **Cutover** (`e+3`): recipients own the ranges outright; donors
//!    bounce every stale route with `WrongEpoch`. Finally the
//!    coordinator fence is raised through the decision log, so a
//!    resharder presumed dead cannot reap or append records later.
//!
//! Every step is idempotent and map installs are monotonic, so a
//! resharder killed anywhere in the middle is resumed by reading the
//! highest installed epoch back ([`Resharder::resume`]) and replaying
//! from the phase that epoch implies.

use std::time::Duration;

use miniraid_core::ids::{ItemId, TxnId};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::trace::EventKind;
use miniraid_net::{Mailbox, Transport};
use miniraid_shard::{MigrationPlan, ShardMap};

use crate::control::ControlError;
use crate::shard_client::ShardedClient;

/// Named points in a migration where a chaos schedule kills something
/// (the CI matrix iterates these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardKillPoint {
    /// Kill an operational member of a donor group mid-copy.
    Donor,
    /// Kill an operational member of a recipient group mid-copy.
    Recipient,
    /// Abandon the resharder itself between announce and cutover; a
    /// successor resumes from the installed epochs.
    Resharder,
}

impl ReshardKillPoint {
    /// Stable CLI/trace name.
    pub fn name(&self) -> &'static str {
        match self {
            ReshardKillPoint::Donor => "donor",
            ReshardKillPoint::Recipient => "recipient",
            ReshardKillPoint::Resharder => "resharder",
        }
    }

    /// Parse a CLI name (the inverse of [`ReshardKillPoint::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "donor" => Some(ReshardKillPoint::Donor),
            "recipient" => Some(ReshardKillPoint::Recipient),
            "resharder" => Some(ReshardKillPoint::Resharder),
            _ => None,
        }
    }

    /// All kill-points, in protocol order.
    pub fn all() -> [ReshardKillPoint; 3] {
        [
            ReshardKillPoint::Donor,
            ReshardKillPoint::Recipient,
            ReshardKillPoint::Resharder,
        ]
    }
}

/// What a finished (or abandoned) migration did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReshardStats {
    /// Items inside the plan's migrating ranges.
    pub items_total: u64,
    /// Copy legs that installed state at a recipient (both passes).
    pub items_copied: u64,
    /// Copy legs skipped because a live foreground transaction's
    /// write-through already covered the item.
    pub items_skipped: u64,
    /// The map epoch the cluster ended on.
    pub map_epoch: u64,
    /// False when the run was abandoned by the interleave hook (the
    /// resharder "died"; resume to finish).
    pub completed: bool,
}

/// Continue/abandon verdict from the interleave hook.
pub type KeepGoing = bool;

/// The migration driver. Holds the copying-phase map (epoch `e+1`) and
/// replays the remaining phases against a [`ShardedClient`].
#[derive(Debug, Clone)]
pub struct Resharder {
    copying: ShardMap,
    stats: ReshardStats,
    /// Per-step deadline for announcements and copy transactions.
    op_deadline: Duration,
}

impl Resharder {
    /// Derive a migration from `plan` against `base` (the currently
    /// installed steady-state map). Fails on a malformed plan.
    pub fn plan(
        base: &ShardMap,
        plan: &MigrationPlan,
        n_groups: u8,
        op_deadline: Duration,
    ) -> Result<Resharder, String> {
        let ranges = base.plan_ranges(plan, n_groups)?;
        if ranges.is_empty() {
            return Err("plan migrates nothing".to_string());
        }
        Ok(Resharder::from_copying(
            base.begin_migration(ranges),
            op_deadline,
        ))
    }

    /// Adopt an in-flight migration from its installed copying-phase
    /// (or frozen-phase) map — the resume path after a resharder death.
    pub fn from_copying(copying: ShardMap, op_deadline: Duration) -> Resharder {
        let total = copying.migrating_items().len() as u64;
        Resharder {
            copying,
            stats: ReshardStats {
                items_total: total,
                ..ReshardStats::default()
            },
            op_deadline,
        }
    }

    /// Resume an interrupted migration: read the highest installed
    /// epoch back from the cluster and replay from the phase it
    /// implies. Returns `None` when no migration is in flight (it
    /// finished, or never started).
    pub fn resume<T: Transport, M: Mailbox>(
        client: &mut ShardedClient<T, M>,
        op_deadline: Duration,
    ) -> Result<Option<Resharder>, ControlError> {
        client.refresh_map(op_deadline)?;
        match client.map() {
            Some(map) if !map.migrating.is_empty() => {
                Ok(Some(Resharder::from_copying(map.clone(), op_deadline)))
            }
            _ => Ok(None),
        }
    }

    /// The migrating map this driver announces (epoch `e+1`, or the
    /// frozen `e+2` map when resumed from the frozen window).
    pub fn map(&self) -> &ShardMap {
        &self.copying
    }

    /// Drive the migration to cutover. `interleave` runs after the
    /// announce and between item copies — the chaos harness uses it to
    /// push foreground traffic and schedule kills; returning `false`
    /// abandons the run exactly where it stands (the resharder's own
    /// death), leaving the cluster consistent and resumable.
    pub fn run<T, M, F>(
        &mut self,
        client: &mut ShardedClient<T, M>,
        mut interleave: F,
    ) -> Result<ReshardStats, ControlError>
    where
        T: Transport,
        M: Mailbox,
        F: FnMut(&mut ShardedClient<T, M>, u64, u64) -> KeepGoing,
    {
        let frozen_already = self.copying.migrating.iter().all(|r| r.frozen);
        let deadline = self.op_deadline;

        // Phase 1: announce. Idempotent — a resumed resharder simply
        // re-announces the epoch every site already has.
        client.announce_map(&self.copying.clone(), deadline)?;
        if client.tracer().is_enabled() {
            client.tracer().emit(
                None,
                EventKind::MigrateStart {
                    epoch: self.copying.epoch,
                },
            );
        }
        if !interleave(client, self.stats.items_copied, self.stats.items_total) {
            return Ok(self.abandoned(client));
        }

        // Phase 2: copy the backlog (skipped when resuming into the
        // frozen window — the sweep below re-copies everything anyway).
        if !frozen_already {
            let items = self.copying.migrating_items();
            for item in items {
                self.copy_item(client, item)?;
                if !interleave(client, self.stats.items_copied, self.stats.items_total) {
                    return Ok(self.abandoned(client));
                }
            }
        }

        // Phase 3: freeze. From here the donors are read-only on the
        // migrating ranges, so the sweep reads a quiesced state.
        let frozen = if frozen_already {
            self.copying.clone()
        } else {
            self.copying.freeze()
        };
        client.announce_map(&frozen, deadline)?;
        if !interleave(client, self.stats.items_copied, self.stats.items_total) {
            return Ok(self.abandoned(client));
        }

        // Phase 4: sweep — re-copy every migrating item from the
        // quiesced donor. Installs are version-stamped, so re-copying
        // an already current item is a no-op.
        for item in frozen.migrating_items() {
            self.copy_item(client, item)?;
        }

        // Phase 5: cutover, then raise the coordinator fence.
        let done = frozen.cutover();
        client.announce_map(&done, deadline)?;
        if client.tracer().is_enabled() {
            client
                .tracer()
                .emit(None, EventKind::MigrateCutover { epoch: done.epoch });
        }
        client.fence_stale_coordinators();
        self.stats.map_epoch = done.epoch;
        self.stats.completed = true;
        Ok(self.stats)
    }

    /// Copy one item's committed donor state to its recipient. Retries
    /// transient failures (a donor or recipient coordinator dying under
    /// the copier) a few times before giving up.
    fn copy_item<T: Transport, M: Mailbox>(
        &mut self,
        client: &mut ShardedClient<T, M>,
        item: u32,
    ) -> Result<(), ControlError> {
        let recipient = match self.copying.migration_for(item) {
            Some(range) => range.recipient,
            None => return Ok(()),
        };
        let mut last = ControlError::Timeout("copy transaction");
        for _ in 0..5 {
            // Read the committed value at the donor (mapped routing
            // sends reads of a migrating item to its donor).
            let read_id = client.next_txn_id();
            let report = match client.run_txn(
                Transaction::new(read_id, vec![Operation::Read(ItemId(item))]),
                self.op_deadline,
            ) {
                Ok(r) => r,
                Err(e) => {
                    last = e;
                    continue;
                }
            };
            let Some((_, value)) = report.read_results.first().copied() else {
                // Aborted read (coordinator mid-failure): try again.
                continue;
            };
            if value.version == 0 {
                // Never written: both copies still hold the initial
                // value, nothing to stream.
                return Ok(());
            }
            // Install at the recipient under the original version
            // stamp — the writing transaction's id — so the copy can
            // never clobber a fresher write-through.
            match client.run_copy(
                recipient,
                Transaction::new(
                    TxnId(value.version),
                    vec![Operation::Write(ItemId(item), value.data)],
                ),
                self.op_deadline,
            ) {
                Ok(None) => {
                    // The id is live in the client: that very version's
                    // foreground transaction is still in flight and its
                    // commit-time write-through covers the item.
                    self.stats.items_skipped += 1;
                    return Ok(());
                }
                Ok(Some(r)) if r.committed() => {
                    self.stats.items_copied += 1;
                    if client.tracer().is_enabled() {
                        client.tracer().emit(None, EventKind::MigrateCopy { item });
                    }
                    return Ok(());
                }
                Ok(Some(_)) => continue,
                Err(e) => {
                    last = e;
                    continue;
                }
            }
        }
        Err(last)
    }

    /// Bookkeeping for an interleave-hook abandonment.
    fn abandoned<T: Transport, M: Mailbox>(
        &mut self,
        client: &mut ShardedClient<T, M>,
    ) -> ReshardStats {
        self.stats.map_epoch = client.map().map_or(0, |m| m.epoch);
        self.stats.completed = false;
        self.stats
    }
}
