//! # miniraid-cluster — the protocol on real threads and sockets
//!
//! The non-simulated deployment of the replication engine: each database
//! site is an OS thread running the same
//! [`miniraid_core::engine::SiteEngine`] the simulator drives, connected
//! by a real transport (in-process channels or TCP on localhost), with a
//! managing client playing the paper's managing site. This is "real
//! transaction processing on real sites with real message passing".

#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod control;
pub mod obs;
pub mod resharder;
pub mod shard_client;
pub mod shard_site;
pub mod site;

pub use chaos::{
    run_process_chaos, run_reshard_chaos, run_sharded_chaos, run_thread_chaos, ChaosOptions,
    ChaosOutcome, ProcChaosOptions, ReshardChaosOptions, ShardChaosOptions,
};
pub use cluster::Cluster;
pub use control::{ControlError, ManagingClient};
pub use obs::SiteObs;
pub use resharder::{ReshardKillPoint, ReshardStats, Resharder};
pub use shard_client::{CoordKillPoint, ShardedClient, ShardedReport};
pub use shard_site::{ShardMailbox, ShardTransport};
pub use site::ClusterTiming;
