//! The managing client for a sharded cluster: routes transactions to
//! replication groups and plays the top-level coordinator for
//! cross-shard atomic commit.
//!
//! Single-group transactions take the fast path: the client localizes
//! the item names and forwards the transaction to one of the group's
//! sites exactly as the unsharded [`ManagingClient`] would — the
//! group's engine runs the paper's protocol unmodified. Multi-group
//! transactions are split into branches and driven through the
//! [`XCoordinator`]: prepare (each branch runs phase one and parks at
//! its local commit point), vote, decide, and — when a branch
//! coordinator dies after the commit decision — a re-drive loop that
//! repeats the decision and re-submits the branch's write residue
//! round-robin across the group's surviving sites until some
//! coordinator confirms the commit. Re-drives are idempotent: writes
//! carry the transaction id as their version stamp and sites install
//! only fresher versions, and engines drop duplicate submissions of an
//! in-flight id.
//!
//! Unlike the paper's managing site, the cross-shard coordinator is
//! *inside* the failure model. Before any branch prepare leaves, the
//! coordinator replicates a *begin* record of the transaction (id,
//! branches, no outcome) to a quorum of the designated log group's
//! sites via the `XDecisionLog` protocol, and before any
//! `ShardDecide(commit)` leaves it replicates a *commit* record
//! carrying the PREPARED votes and the outcome. If the coordinator
//! dies between prepare and decide (see [`CoordKillPoint`] for the
//! chaos kill-points), a successor — fenced by a fresh coordinator
//! epoch, the same wall-clock scheme the reliable session layer uses
//! for restarts — reads the log back from a quorum, adopts each
//! in-doubt transaction ([`XCoordinator::adopt_record`]), and
//! idempotently re-drives the outcome: a commit record re-drives the
//! commit, a begin record presumes abort (no decide can have left
//! without a quorum-replicated commit record, so nothing committed
//! anywhere). The classic "coordinator failed after prepare" blocking
//! case of 2PC is therefore bounded by the vote timeout instead of
//! unbounded. See DESIGN.md §13.
//!
//! [`ManagingClient`]: crate::control::ManagingClient

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use miniraid_core::config::ProtocolConfig;
use miniraid_core::error::AbortReason;
use miniraid_core::ids::{ItemId, SessionNumber, SiteId, TxnId};
use miniraid_core::messages::{Command, Message, TxnOutcome, XDecisionRecord};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::trace::{EventKind, TraceId, TraceIdGen, Tracer};
use miniraid_net::{Mailbox, RecvError, Transport};
use miniraid_obs::LatencyHistogram;
use miniraid_shard::{
    classify, RangeState, Route, ShardMap, ShardSpec, XAction, XCoordinator, XMetrics, XPhase,
};
use miniraid_storage::ItemValue;

use crate::control::ControlError;

/// The replication group whose members double as the decision-log
/// replicas (group 0 by convention — every topology has it).
const LOG_GROUP: u8 = 0;

/// The final outcome of a routed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedReport {
    /// The (global) transaction, as submitted.
    pub txn: TxnId,
    /// The id the transaction finally resolved under. Differs from
    /// `txn` only when a mapped-mode `WrongEpoch` bounce re-stamped the
    /// retry with a fresh id (versions are transaction ids, so a
    /// bounced write replayed after younger commits must serialize as a
    /// *later* transaction) — the data lands under *this* version.
    pub committed_as: TxnId,
    /// Whether it spanned more than one group.
    pub cross_shard: bool,
    /// Commit or abort. Cross-shard aborts carry
    /// [`AbortReason::GlobalAbort`].
    pub outcome: TxnOutcome,
    /// Read results with *global* item names, in item order.
    pub read_results: Vec<(ItemId, ItemValue)>,
}

impl ShardedReport {
    /// True if committed.
    pub fn committed(&self) -> bool {
        self.outcome.is_committed()
    }
}

/// Control-plane replies stashed while waiting for something else.
enum CtlEvent {
    Recovered {
        site: SiteId,
        session: SessionNumber,
    },
    Metrics {
        site: SiteId,
        text: String,
    },
}

/// Named points in the cross-shard commit where a chaos harness can
/// schedule the acting coordinator's death (one-shot; see
/// [`ShardedClient::arm_coordinator_kill`]). Every kill-point lies
/// *after* the begin record reached a log quorum — earlier deaths are
/// trivial (no prepare has left, nothing is parked anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordKillPoint {
    /// Die right after the released prepares are sent: branches park,
    /// votes arrive at a corpse. The successor finds only the begin
    /// record and presumes abort.
    AfterPrepare,
    /// Die right after the commit record's append is sent, before its
    /// quorum is acknowledged: no `ShardDecide` has left. The
    /// successor may find the commit record (→ re-drive the commit) or
    /// only the begin record (→ presumed abort); both are safe because
    /// no participant has acted on either outcome.
    AfterVotes,
    /// Die after announcing the commit decision to the *first* branch
    /// only. The commit record is on a quorum (decides are released
    /// only after it), so the successor is guaranteed to re-derive
    /// commit and re-drive the remaining branches.
    MidDecide,
}

impl CoordKillPoint {
    /// Stable CLI/trace name.
    pub fn name(&self) -> &'static str {
        match self {
            CoordKillPoint::AfterPrepare => "after-prepare",
            CoordKillPoint::AfterVotes => "after-votes",
            CoordKillPoint::MidDecide => "mid-decide",
        }
    }

    /// Parse a CLI name (the inverse of [`CoordKillPoint::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "after-prepare" => Some(CoordKillPoint::AfterPrepare),
            "after-votes" => Some(CoordKillPoint::AfterVotes),
            "mid-decide" => Some(CoordKillPoint::MidDecide),
            _ => None,
        }
    }

    /// All kill-points, in protocol order (the CI matrix iterates
    /// this).
    pub fn all() -> [CoordKillPoint; 3] {
        [
            CoordKillPoint::AfterPrepare,
            CoordKillPoint::AfterVotes,
            CoordKillPoint::MidDecide,
        ]
    }
}

/// Where a cross-shard transaction stands in the replicate-then-act
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XStage {
    /// Begin record sent to the log group; prepares are held until a
    /// quorum acknowledges it.
    BeginPending,
    /// Begin record on a quorum, prepares released; collecting votes.
    Prepared,
    /// Commit decided; commit record sent, decides held until a quorum
    /// acknowledges it.
    CommitPending,
    /// Commit record on a quorum, decides released; confirming.
    Released,
}

/// Book-keeping for one in-flight cross-shard transaction.
struct CrossState {
    started: Instant,
    stage: XStage,
    /// The routed branches, kept for building decision records.
    branches: Vec<(u8, Transaction)>,
    /// Actions gated behind the current stage's log quorum.
    held: Vec<XAction>,
    /// PREPARED votes observed so far (recorded into the commit
    /// record).
    votes: Vec<(u8, bool)>,
    /// Log replicas that acknowledged the current stage's record.
    acks: HashSet<SiteId>,
    /// When to re-send the current stage's append (management frames
    /// are droppable, so appends are retried, not retransmitted).
    next_append: Instant,
    vote_deadline: Instant,
    next_redrive: Instant,
    /// Physical coordinator each branch was prepared at.
    branch_coord: HashMap<u8, SiteId>,
    /// Next group-local site index to receive a re-drive submission.
    cursor: HashMap<u8, u8>,
    /// The global decision was already announced to the trace stream
    /// (re-drives repeat the decision message, not the `x_decide` event).
    decided: bool,
}

/// A successor coordinator's in-flight quorum read of the decision
/// log.
struct TakeoverQuery {
    /// Per-replica replies (the records each returned).
    replies: HashMap<SiteId, Vec<XDecisionRecord>>,
    /// When to re-broadcast the query.
    next_send: Instant,
}

/// State between a coordinator crash and the completed takeover.
struct CrashRecovery {
    /// When the acting coordinator died (takeover latency is measured
    /// from here).
    crashed_at: Instant,
    /// When the successor may start the takeover (models the vote
    /// timeout the participants grant the incumbent).
    takeover_at: Instant,
    /// The quorum read, once started.
    query: Option<TakeoverQuery>,
}

/// A coordinator epoch strictly above `after`, derived from the wall
/// clock exactly like the reliable session layer's restart epochs.
fn next_epoch(after: u64) -> u64 {
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    wall.max(after + 1)
}

/// Field-wise sum of two [`XMetrics`] — used to keep the client's
/// reported counters cumulative across coordinator crashes.
fn add_metrics(a: XMetrics, b: XMetrics) -> XMetrics {
    XMetrics {
        begun: a.begun + b.begun,
        committed: a.committed + b.committed,
        aborted: a.aborted + b.aborted,
        redrives: a.redrives + b.redrives,
        takeovers: a.takeovers + b.takeovers,
    }
}

/// Book-keeping for one in-flight single-group transaction.
struct SingleState {
    group: u8,
    started: Instant,
}

/// The managing client of a sharded cluster.
pub struct ShardedClient<T: Transport, M: Mailbox> {
    transport: T,
    mailbox: M,
    spec: ShardSpec,
    next_txn: u64,
    xcoord: XCoordinator,
    singles: HashMap<TxnId, SingleState>,
    cross: HashMap<TxnId, CrossState>,
    finished: HashMap<TxnId, ShardedReport>,
    events: Vec<CtlEvent>,
    /// Per-group round-robin cursor for picking coordinators.
    rr: Vec<u8>,
    /// Per-group physical sender of the most recent *committed* outcome
    /// report — the paper's "last site to fail" candidate: it was
    /// provably operational at the group's last commit, so its copy is
    /// as complete as any member's. Used by total-group-failure
    /// recovery to pick the bootstrap site.
    last_commit_coord: Vec<Option<SiteId>>,
    /// The client's own belief about which physical sites are up
    /// (driven by its `fail`/`recover` calls; used only to bias
    /// coordinator choice, never for correctness).
    up: Vec<bool>,
    /// The epoch this coordinator incarnation speaks from when
    /// appending to or querying the decision log. Replicas fence off
    /// anything older than the highest epoch they have seen.
    coord_epoch: u64,
    /// Armed one-shot kill-point (chaos only).
    kill_point: Option<CoordKillPoint>,
    /// Coordinator incarnations killed so far (also the generation
    /// guard that stops action batches that straddle a crash).
    crashes: u64,
    /// Crash → takeover state, when a takeover is due or running.
    crash_state: Option<CrashRecovery>,
    /// Transactions in flight at the moment of a crash, until the
    /// takeover resolves them.
    orphans: HashSet<TxnId>,
    /// Every cross-shard transaction that reached a final outcome —
    /// takeovers skip their stale log records.
    resolved: HashSet<TxnId>,
    /// Counters accumulated by coordinator incarnations that have been
    /// killed ([`xmetrics`](Self::xmetrics) stays cumulative).
    metrics_base: XMetrics,
    /// Crash → last orphan resolved, in microseconds (one sample per
    /// takeover).
    pub takeover_latency: LatencyHistogram,
    /// Client-observed commit latency of cross-shard transactions
    /// (prepare sent → all branches confirmed), in microseconds.
    pub cross_commit_latency: LatencyHistogram,
    /// Client-observed commit latency of single-group transactions.
    pub single_commit_latency: LatencyHistogram,
    /// Single-group commit latency split per group, indexed by group.
    pub per_group_commit_latency: Vec<LatencyHistogram>,
    /// How long the top-level 2PC waits for branch votes before
    /// counting stragglers as no
    /// ([`ProtocolConfig::shard_vote_timeout_ms`]).
    vote_timeout: Duration,
    /// Interval between re-drive rounds
    /// ([`ProtocolConfig::shard_redrive_interval_ms`]).
    redrive_interval: Duration,
    /// The client's own protocol-event tracer (disabled by default).
    /// When enabled, every submitted transaction gets a globally unique
    /// [`TraceId`], outbound frames are wrapped in
    /// [`Message::Traced`], and the cross-shard coordination milestones
    /// (`x_begin` → `x_prepare` → `x_vote` → `x_decide`) are emitted
    /// into the client's own trace stream.
    tracer: Tracer,
    trace_gen: TraceIdGen,
    /// Trace id of every in-flight submitted transaction.
    traces: HashMap<TxnId, TraceId>,
    /// Mapped mode: the client's installed epoch-versioned shard map.
    /// `None` leaves the client in spec-striped mode (classify +
    /// localize); `Some` routes whole transactions by the map with
    /// identity item names (see DESIGN.md §14).
    map: Option<ShardMap>,
    /// Original (global-name) transactions of in-flight mapped
    /// submissions, kept until the final outcome so a `WrongEpoch`
    /// bounce can be re-routed after a map refresh and a committed
    /// write inside a migrating range can be written through to the
    /// recipient.
    mapped_ops: HashMap<TxnId, Transaction>,
    /// Mapped transactions bounced by a stale route, awaiting the next
    /// refresh-and-retry round (original ids).
    retries: Vec<TxnId>,
    /// Fresh id → original id for re-stamped retries: a bounced write
    /// replayed after younger commits must carry a *later* transaction
    /// id, or its version-ordered apply would land on some copies and
    /// be rejected on others.
    retry_alias: HashMap<TxnId, TxnId>,
    /// When the next refresh-and-retry round may run.
    next_retry: Instant,
    /// Mapped transactions whose `WrongEpoch` bounce should surface as
    /// an `Aborted(StaleShardMap)` report instead of being retried —
    /// the chaos double-owner probe needs the rejection itself.
    no_retry: HashSet<TxnId>,
    /// Sites that acknowledged each announced map epoch.
    map_acks: HashMap<u64, HashSet<SiteId>>,
    /// Total `MapReply` frames received (refresh progress).
    map_replies: u64,
    /// Replies of an in-flight decision-log probe, when one is open.
    xlog_probe: Option<HashMap<SiteId, Vec<XDecisionRecord>>>,
    /// `WrongEpoch` bounces observed (stale routes caught by the gate).
    pub stale_bounces: u64,
}

impl<T: Transport, M: Mailbox> ShardedClient<T, M> {
    /// Wrap the manager's physical endpoint, with the default
    /// cross-shard timers (see [`ShardedClient::with_config`]).
    pub fn new(transport: T, mailbox: M, spec: ShardSpec) -> Self {
        Self::with_config(transport, mailbox, spec, &ProtocolConfig::default())
    }

    /// Wrap the manager's physical endpoint, taking the cross-shard
    /// 2PC timers (`shard_vote_timeout_ms`, `shard_redrive_interval_ms`)
    /// from `config`.
    pub fn with_config(transport: T, mailbox: M, spec: ShardSpec, config: &ProtocolConfig) -> Self {
        let n = spec.n_physical_sites() as usize;
        ShardedClient {
            transport,
            mailbox,
            spec,
            next_txn: 1,
            xcoord: XCoordinator::new(spec),
            singles: HashMap::new(),
            cross: HashMap::new(),
            finished: HashMap::new(),
            events: Vec::new(),
            rr: vec![0; spec.n_groups as usize],
            last_commit_coord: vec![None; spec.n_groups as usize],
            up: vec![true; n],
            coord_epoch: next_epoch(0),
            kill_point: None,
            crashes: 0,
            crash_state: None,
            orphans: HashSet::new(),
            resolved: HashSet::new(),
            metrics_base: XMetrics::default(),
            takeover_latency: LatencyHistogram::new(),
            cross_commit_latency: LatencyHistogram::new(),
            single_commit_latency: LatencyHistogram::new(),
            per_group_commit_latency: vec![LatencyHistogram::new(); spec.n_groups as usize],
            vote_timeout: Duration::from_millis(config.shard_vote_timeout_ms),
            redrive_interval: Duration::from_millis(config.shard_redrive_interval_ms),
            tracer: Tracer::disabled(),
            trace_gen: TraceIdGen::new(spec.n_physical_sites() as u64),
            traces: HashMap::new(),
            map: None,
            mapped_ops: HashMap::new(),
            retries: Vec::new(),
            retry_alias: HashMap::new(),
            next_retry: Instant::now(),
            no_retry: HashSet::new(),
            map_acks: HashMap::new(),
            map_replies: 0,
            xlog_probe: None,
            stale_bounces: 0,
        }
    }

    /// Install the client's tracer: subsequent submissions allocate
    /// trace ids, wrap their outbound frames, and emit the cross-shard
    /// coordination milestones. The trace-id origin is the physical
    /// manager id, so client-allocated ids never collide with another
    /// origin's.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The configured top-level vote timeout.
    pub fn vote_timeout(&self) -> Duration {
        self.vote_timeout
    }

    /// The configured re-drive interval.
    pub fn redrive_interval(&self) -> Duration {
        self.redrive_interval
    }

    /// The client's tracer (disabled unless
    /// [`ShardedClient::set_tracer`] was called) — chaos harnesses emit
    /// schedule annotations through it so failures are visible in the
    /// trace streams they perturb.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The topology this client drives.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Allocate the next globally unique transaction id.
    pub fn next_txn_id(&mut self) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        id
    }

    /// Cross-shard transactions still unresolved — in flight at the
    /// acting coordinator, or orphaned by a crash and awaiting
    /// takeover.
    pub fn pending_cross(&self) -> usize {
        self.xcoord.pending() + self.orphans.len()
    }

    /// Mapped-mode transactions still unresolved — awaiting a report,
    /// or bounced by `WrongEpoch` and queued for a retried route.
    pub fn pending_mapped(&self) -> usize {
        self.singles.len() + self.retries.len()
    }

    /// The cross-shard coordinator's own counters, cumulative across
    /// coordinator crashes.
    pub fn xmetrics(&self) -> miniraid_shard::XMetrics {
        add_metrics(self.metrics_base, self.xcoord.metrics)
    }

    /// Arm a one-shot coordinator kill at `kp`: the next transaction
    /// that reaches the kill-point takes the acting coordinator down
    /// with it (every in-flight cross-shard transaction is orphaned,
    /// exactly as if the coordinator process had been SIGKILLed), and a
    /// successor takes over after the vote timeout.
    pub fn arm_coordinator_kill(&mut self, kp: CoordKillPoint) {
        self.kill_point = Some(kp);
    }

    /// The armed kill-point, if any (`None` once it fired).
    pub fn armed_kill_point(&self) -> Option<CoordKillPoint> {
        self.kill_point
    }

    /// How many coordinator incarnations have been killed.
    pub fn coordinator_crashes(&self) -> u64 {
        self.crashes
    }

    /// True between a coordinator crash and the completed takeover.
    pub fn takeover_pending(&self) -> bool {
        self.crash_state.is_some()
    }

    /// The coordinator epoch the current incarnation speaks from.
    pub fn coord_epoch(&self) -> u64 {
        self.coord_epoch
    }

    /// The physical site that reported the group's most recent commit
    /// (it was operational at that commit, so its copy is as complete
    /// as any member's), or `None` if the group never committed.
    pub fn last_commit_coordinator(&self, group: u8) -> Option<SiteId> {
        self.last_commit_coord[group as usize]
    }

    /// Route and submit a transaction with global item names, without
    /// waiting for its outcome (open-loop driving; pair with
    /// [`drain_finished`](Self::drain_finished) or
    /// [`wait_report`](Self::wait_report)).
    pub fn submit(&mut self, txn: Transaction) {
        let now = Instant::now();
        if self.tracer.is_enabled() {
            let trace = self.trace_gen.next_id();
            self.traces.insert(txn.id, trace);
        }
        if self.map.is_some() {
            self.route_mapped(txn, now);
            return;
        }
        match classify(&self.spec, &txn) {
            Route::Single { group, txn } => {
                let coordinator = self.pick_coordinator(group);
                self.singles.insert(
                    txn.id,
                    SingleState {
                        group,
                        started: now,
                    },
                );
                self.send(coordinator, group, Message::Mgmt(Command::Begin(txn)));
            }
            Route::Multi { branches } => {
                self.emit(
                    txn.id,
                    EventKind::XBegin {
                        branches: branches.len().min(u8::MAX as usize) as u8,
                    },
                );
                // Replicate-then-act: the prepares the coordinator
                // wants to send are held until the begin record is on
                // a log quorum. The vote deadline still starts now, so
                // a transaction whose record cannot reach a quorum
                // (log group majority unreachable) aborts instead of
                // hanging.
                let held = self.xcoord.begin(branches.clone());
                self.cross.insert(
                    txn.id,
                    CrossState {
                        started: now,
                        stage: XStage::BeginPending,
                        branches: branches.clone(),
                        held,
                        votes: Vec::new(),
                        acks: HashSet::new(),
                        next_append: now + self.redrive_interval,
                        vote_deadline: now + self.vote_timeout,
                        next_redrive: now + self.redrive_interval,
                        branch_coord: HashMap::new(),
                        cursor: HashMap::new(),
                        decided: false,
                    },
                );
                self.append_to_log(XDecisionRecord {
                    txn: txn.id,
                    branches,
                    votes: Vec::new(),
                    outcome: None,
                });
            }
        }
    }

    /// Submit and wait for the final (global) outcome.
    pub fn run_txn(
        &mut self,
        txn: Transaction,
        deadline: Duration,
    ) -> Result<ShardedReport, ControlError> {
        let id = txn.id;
        self.submit(txn);
        self.wait_report(id, deadline)
    }

    /// Run a transaction at a *specific* physical site, bypassing the
    /// round-robin coordinator choice. The transaction (global item
    /// names) must be confined to that site's group — used by
    /// convergence checks that compare every member's copy. Panics on a
    /// transaction touching any other group.
    pub fn run_txn_at(
        &mut self,
        site: SiteId,
        txn: Transaction,
        deadline: Duration,
    ) -> Result<ShardedReport, ControlError> {
        let (group, _) = self.spec.local_site(site);
        match classify(&self.spec, &txn) {
            Route::Single {
                group: g,
                txn: localized,
            } if g == group => {
                let id = localized.id;
                self.singles.insert(
                    id,
                    SingleState {
                        group,
                        started: Instant::now(),
                    },
                );
                self.send(site, group, Message::Mgmt(Command::Begin(localized)));
                self.wait_report(id, deadline)
            }
            _ => panic!("run_txn_at requires a transaction confined to {site}'s group"),
        }
    }

    // ---- mapped mode (live resharding) -------------------------------

    /// Install a shard map into the client (newer epochs win). From
    /// then on submissions route by the map with identity item names
    /// instead of the spec's stripe, and `WrongEpoch` bounces are
    /// retried after a map refresh.
    pub fn set_map(&mut self, map: ShardMap) {
        if self.map.as_ref().is_none_or(|m| map.epoch > m.epoch) {
            self.map = Some(map);
        }
    }

    /// The client's installed shard map, if any.
    pub fn map(&self) -> Option<&ShardMap> {
        self.map.as_ref()
    }

    /// Route a mapped transaction: every item must resolve to the same
    /// group under the installed map — the owner, or the donor while
    /// the item's range is in flight (the donor stays authoritative for
    /// reads and writes until cutover; committed writes are written
    /// through). Panics on a transaction spanning owners: mapped mode
    /// trades cross-shard atomicity for live reconfiguration.
    fn route_mapped(&mut self, txn: Transaction, now: Instant) {
        let map = self.map.as_ref().expect("mapped routing requires a map");
        let mut group: Option<u8> = None;
        for op in &txn.ops {
            let item = match op {
                Operation::Read(i) | Operation::Write(i, _) => i.0,
            };
            let g = match map.state(item) {
                RangeState::Owned(g) => g,
                RangeState::Migrating { donor, .. } => donor,
            };
            match group {
                None => group = Some(g),
                Some(prev) => {
                    assert_eq!(prev, g, "mapped mode routes single-owner transactions only")
                }
            }
        }
        let group = group.expect("transaction with no operations");
        let coordinator = self.pick_coordinator(group);
        self.mapped_ops.insert(txn.id, txn.clone());
        self.singles.insert(
            txn.id,
            SingleState {
                group,
                started: now,
            },
        );
        self.send(coordinator, group, Message::Mgmt(Command::Begin(txn)));
    }

    /// Announce `map` to every physical site and wait until *all* of
    /// them acknowledge the epoch, then install it into the client.
    /// Full (not majority) acknowledgement is what makes cutover safe:
    /// no site is left admitting writes under a stale epoch. It is also
    /// reachable — map frames are management-plane (exempt from fault
    /// drops) and served by the site loop even while the engine is
    /// down, and installs re-ack idempotently, so the announcement is
    /// simply retried until everyone has answered.
    pub fn announce_map(&mut self, map: &ShardMap, deadline: Duration) -> Result<(), ControlError> {
        let epoch = map.epoch;
        let until = Instant::now() + deadline;
        let mut next_send = Instant::now();
        loop {
            let acked = self.map_acks.get(&epoch).map_or(0, |s| s.len());
            if acked >= self.spec.n_physical_sites() as usize {
                self.set_map(map.clone());
                return Ok(());
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("map-change acknowledgements"));
            }
            if Instant::now() >= next_send {
                next_send = Instant::now() + self.redrive_interval;
                for i in 0..self.spec.n_physical_sites() {
                    let site = SiteId(i);
                    let group = self.spec.local_site(site).0;
                    self.send(
                        site,
                        group,
                        Message::MapChange {
                            epoch,
                            assignment: map.assignment.clone(),
                            migrating: map.migrating.clone(),
                        },
                    );
                }
            }
            self.pump(Duration::from_millis(5))?;
            self.tick();
        }
    }

    /// Ask every site for its installed map and adopt the newest reply.
    /// Returns the epoch the client ends up on — used by a restarted
    /// resharder to re-derive where the migration stands, and by
    /// stale-route recovery. Waits for every site's reply or the
    /// deadline, whichever first (a reply quorum is not enough: the
    /// newest epoch may live on exactly the sites that answer last).
    pub fn refresh_map(&mut self, deadline: Duration) -> Result<u64, ControlError> {
        let start = self.map_replies;
        let want = self.spec.n_physical_sites() as u64;
        self.broadcast_map_query();
        let until = Instant::now() + deadline;
        while Instant::now() < until && self.map_replies - start < want {
            self.pump(Duration::from_millis(5))?;
            self.tick();
        }
        Ok(self.map.as_ref().map_or(0, |m| m.epoch))
    }

    /// Run a write-only copy leg at `group` and wait for its report.
    /// Returns `Ok(None)` without sending when `txn.id` is still live
    /// in the client — a foreground transaction owns that id, and its
    /// own commit-time write-through already covers the item. A
    /// `WrongEpoch` bounce surfaces as `Aborted(StaleShardMap)` (the
    /// resharder re-derives rather than re-routes).
    pub fn run_copy(
        &mut self,
        group: u8,
        txn: Transaction,
        deadline: Duration,
    ) -> Result<Option<ShardedReport>, ControlError> {
        let id = txn.id;
        if self.singles.contains_key(&id)
            || self.cross.contains_key(&id)
            || self.finished.contains_key(&id)
        {
            return Ok(None);
        }
        let coordinator = self.pick_coordinator(group);
        self.no_retry.insert(id);
        self.mapped_ops.insert(id, txn.clone());
        self.singles.insert(
            id,
            SingleState {
                group,
                started: Instant::now(),
            },
        );
        self.send(coordinator, group, Message::Mgmt(Command::Begin(txn)));
        self.wait_report(id, deadline).map(Some)
    }

    /// Run a mapped transaction at a *specific* physical site (the
    /// mapped-mode analogue of [`run_txn_at`](Self::run_txn_at), for
    /// convergence checks). With `retry` false, a `WrongEpoch` bounce
    /// surfaces as an `Aborted(StaleShardMap)` report instead of being
    /// re-routed — the chaos double-owner probe needs the rejection
    /// itself as evidence.
    pub fn run_mapped_at(
        &mut self,
        site: SiteId,
        txn: Transaction,
        retry: bool,
        deadline: Duration,
    ) -> Result<ShardedReport, ControlError> {
        let id = txn.id;
        let (group, _) = self.spec.local_site(site);
        if !retry {
            self.no_retry.insert(id);
        }
        self.mapped_ops.insert(id, txn.clone());
        self.singles.insert(
            id,
            SingleState {
                group,
                started: Instant::now(),
            },
        );
        self.send(site, group, Message::Mgmt(Command::Begin(txn)));
        self.wait_report(id, deadline)
    }

    /// Read the decision log back from the log group under a fresh
    /// coordinator epoch and return the merged records (one per
    /// transaction, decided outcomes winning), sorted by id. Used by
    /// retirement tests and post-migration audits; raising the epoch
    /// also fences any stale coordinator's later appends.
    pub fn probe_xlog(&mut self, deadline: Duration) -> Result<Vec<XDecisionRecord>, ControlError> {
        self.coord_epoch = next_epoch(self.coord_epoch);
        self.xlog_probe = Some(HashMap::new());
        let until = Instant::now() + deadline;
        let mut next_send = Instant::now();
        loop {
            let done = self
                .xlog_probe
                .as_ref()
                .is_some_and(|p| p.len() >= self.log_quorum());
            if done || Instant::now() >= until {
                let replies = self.xlog_probe.take().unwrap_or_default();
                if !done {
                    return Err(ControlError::Timeout("decision-log probe"));
                }
                let mut merged: HashMap<TxnId, XDecisionRecord> = HashMap::new();
                for (_, records) in replies {
                    for record in records {
                        match merged.get(&record.txn) {
                            Some(existing) if existing.outcome.is_some() => {}
                            _ => {
                                merged.insert(record.txn, record);
                            }
                        }
                    }
                }
                let mut out: Vec<XDecisionRecord> = merged.into_values().collect();
                out.sort_by_key(|r| r.txn);
                return Ok(out);
            }
            if Instant::now() >= next_send {
                next_send = Instant::now() + self.redrive_interval;
                for member in self.spec.group_members(LOG_GROUP) {
                    self.send_xlog(
                        member,
                        Message::XLogQuery {
                            epoch: self.coord_epoch,
                        },
                    );
                }
            }
            self.pump(Duration::from_millis(5))?;
            self.tick();
        }
    }

    /// Bump the coordinator epoch and push the new fence to the log
    /// group: any coordinator still speaking from an older epoch (a
    /// resharder presumed dead, a superseded client) has its later
    /// appends rejected by the replicas. Fire-and-forget — the fence is
    /// raised as the queries land.
    pub fn fence_stale_coordinators(&mut self) {
        self.coord_epoch = next_epoch(self.coord_epoch);
        for member in self.spec.group_members(LOG_GROUP) {
            self.send_xlog(
                member,
                Message::XLogQuery {
                    epoch: self.coord_epoch,
                },
            );
        }
    }

    /// Broadcast a `MapQuery` to every physical site.
    fn broadcast_map_query(&mut self) {
        for i in 0..self.spec.n_physical_sites() {
            let site = SiteId(i);
            let group = self.spec.local_site(site).0;
            self.send(site, group, Message::MapQuery);
        }
    }

    /// One refresh-and-retry round for bounced mapped transactions:
    /// ask the cluster for a newer map (replies install asynchronously)
    /// and re-route every bounced transaction under whatever the client
    /// believes now. A transaction bounced again simply re-queues — the
    /// rounds are paced by the re-drive interval, and the route
    /// converges once the migration's terminal epoch reaches the
    /// client.
    fn tick_mapped(&mut self, now: Instant) {
        if self.retries.is_empty() || now < self.next_retry {
            return;
        }
        self.next_retry = now + self.redrive_interval;
        self.broadcast_map_query();
        let due: Vec<TxnId> = std::mem::take(&mut self.retries);
        for orig in due {
            let Some(t) = self.mapped_ops.get(&orig).cloned() else {
                continue;
            };
            // Versions are transaction ids, so a bounced write retried
            // after younger commits must serialize as a *later*
            // transaction: replaying the original id would be accepted
            // by copies still behind it and rejected by copies past it,
            // permanently diverging the group. Re-stamp the retry with
            // a fresh id and resolve the report under the original.
            let fresh = self.next_txn_id();
            self.retry_alias.insert(fresh, orig);
            self.route_mapped(Transaction::new(fresh, t.ops), now);
        }
    }

    /// Wait for a previously submitted transaction's final outcome,
    /// driving votes, decisions and re-drives while waiting.
    pub fn wait_report(
        &mut self,
        txn: TxnId,
        deadline: Duration,
    ) -> Result<ShardedReport, ControlError> {
        let until = Instant::now() + deadline;
        loop {
            if let Some(report) = self.finished.remove(&txn) {
                return Ok(report);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("sharded transaction report"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Collect every transaction that reached a final outcome, without
    /// blocking (after a non-blocking pump of the inbox).
    pub fn drain_finished(&mut self) -> Vec<ShardedReport> {
        let _ = self.pump(Duration::ZERO);
        self.tick();
        let mut reports: Vec<ShardedReport> = self.finished.drain().map(|(_, r)| r).collect();
        reports.sort_by_key(|r| r.txn);
        reports
    }

    /// Process every message currently queued, without blocking — a
    /// zero-wait [`pump_for`](Self::pump_for). Benchmarks use this to
    /// drain background traffic (copy-leg reports, write-through acks)
    /// between measured operations without parking the thread.
    pub fn poll(&mut self) -> Result<(), ControlError> {
        loop {
            match self.mailbox.try_recv() {
                Ok((from, msg)) => self.process(from, msg),
                Err(RecvError::Timeout) => break,
                Err(RecvError::Disconnected) => return Err(ControlError::Disconnected),
            }
        }
        self.tick();
        Ok(())
    }

    /// Process inbox traffic and internal deadlines for `duration` —
    /// used to let in-flight cross-shard transactions resolve (votes,
    /// decisions, re-drives) without submitting new work.
    pub fn pump_for(&mut self, duration: Duration) -> Result<(), ControlError> {
        let until = Instant::now() + duration;
        while Instant::now() < until {
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
        Ok(())
    }

    /// Tell a physical site to fail.
    pub fn fail(&mut self, site: SiteId) {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::Mgmt(Command::Fail));
        self.up[site.index()] = false;
    }

    /// Tell a physical site to recover; waits until it reports
    /// operational (in-flight shard traffic keeps being driven).
    pub fn recover(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<SessionNumber, ControlError> {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::Mgmt(Command::Recover));
        let until = Instant::now() + deadline;
        loop {
            if let Some(pos) = self
                .events
                .iter()
                .position(|e| matches!(e, CtlEvent::Recovered { site: s, .. } if *s == site))
            {
                let CtlEvent::Recovered { session, .. } = self.events.remove(pos) else {
                    unreachable!("matched above");
                };
                self.up[site.index()] = true;
                return Ok(session);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("recovery"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Bootstrap a physical site as the first operational member of its
    /// group after a total group failure (the paper's "last site to
    /// fail recovers first from its own state").
    pub fn bootstrap(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<SessionNumber, ControlError> {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::Mgmt(Command::Bootstrap));
        let until = Instant::now() + deadline;
        loop {
            if let Some(pos) = self
                .events
                .iter()
                .position(|e| matches!(e, CtlEvent::Recovered { site: s, .. } if *s == site))
            {
                let CtlEvent::Recovered { session, .. } = self.events.remove(pos) else {
                    unreachable!("matched above");
                };
                self.up[site.index()] = true;
                return Ok(session);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("bootstrap"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Fetch a physical site's metrics exposition text.
    pub fn fetch_metrics(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<String, ControlError> {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::MetricsRequest);
        let until = Instant::now() + deadline;
        loop {
            if let Some(pos) = self
                .events
                .iter()
                .position(|e| matches!(e, CtlEvent::Metrics { site: s, .. } if *s == site))
            {
                let CtlEvent::Metrics { text, .. } = self.events.remove(pos) else {
                    unreachable!("matched above");
                };
                return Ok(text);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("metrics response"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Assemble the client-observed histogram state as a
    /// [`miniraid_obs::ShardedSnapshot`]: per-group single-shard commit
    /// latency in each shard's slot, plus the top-level cross-shard
    /// commit histogram.
    pub fn sharded_snapshot(&self) -> miniraid_obs::ShardedSnapshot {
        let mut snap = miniraid_obs::ShardedSnapshot::new(self.spec.n_groups as usize);
        for (shard, hist) in self.per_group_commit_latency.iter().enumerate() {
            snap.per_shard[shard].commit_latency.merge(hist);
        }
        snap.cross_commit.merge(&self.cross_commit_latency);
        snap
    }

    /// Scrape every physical site's metrics exposition and fold its
    /// engine counters into per-shard [`miniraid_obs::ShardEngineStats`]
    /// aggregates (inflight high-water takes the member max, event
    /// counters sum). `deadline` bounds each individual scrape.
    pub fn scrape_shard_engine_stats(
        &mut self,
        deadline: Duration,
    ) -> Result<Vec<miniraid_obs::ShardEngineStats>, ControlError> {
        let mut stats =
            vec![miniraid_obs::ShardEngineStats::default(); self.spec.n_groups as usize];
        for i in 0..self.spec.n_physical_sites() {
            let site = SiteId(i);
            let (group, _) = self.spec.local_site(site);
            let text = self.fetch_metrics(site, deadline)?;
            let s = &mut stats[group as usize];
            s.inflight_high_water = s
                .inflight_high_water
                .max(parse_exposition_counter(&text, "miniraid_inflight_high_water").unwrap_or(0));
            s.lock_waits += parse_exposition_counter(&text, "miniraid_lock_waits").unwrap_or(0);
            s.lock_grants_immediate +=
                parse_exposition_counter(&text, "miniraid_lock_grants_immediate").unwrap_or(0);
            s.wal_fsyncs += parse_exposition_counter(&text, "miniraid_wal_fsyncs").unwrap_or(0);
            s.wal_commit_records +=
                parse_exposition_counter(&text, "miniraid_wal_commit_records").unwrap_or(0);
        }
        Ok(stats)
    }

    /// [`sharded_snapshot`](Self::sharded_snapshot) plus a live scrape
    /// of every member's engine counters into the snapshot's per-shard
    /// `engine` slots — ready for `miniraid_obs::expo::render_sharded`.
    pub fn sharded_snapshot_with_engine(
        &mut self,
        deadline: Duration,
    ) -> Result<miniraid_obs::ShardedSnapshot, ControlError> {
        let engine = self.scrape_shard_engine_stats(deadline)?;
        let mut snap = self.sharded_snapshot();
        snap.engine = engine;
        Ok(snap)
    }

    /// Terminate every site (clean shutdown).
    pub fn terminate_all(&mut self) {
        for i in 0..self.spec.n_physical_sites() {
            let site = SiteId(i);
            let group = self.spec.local_site(site).0;
            self.send(site, group, Message::Mgmt(Command::Terminate));
        }
    }

    // ---- internals ---------------------------------------------------

    /// Emit a client-side coordination milestone for `txn`, stamped with
    /// its trace id (no-op when the tracer is disabled).
    fn emit(&self, txn: TxnId, kind: EventKind) {
        if self.tracer.is_enabled() {
            let trace = self.traces.get(&txn).copied().unwrap_or(0);
            self.tracer.emit_traced(Some(txn), trace, kind);
        }
    }

    /// Wrap `msg` for `group` and send it to physical site `to`. A
    /// message belonging to a traced transaction is additionally
    /// wrapped in [`Message::Traced`] (inside the shard envelope — the
    /// legal nesting is `ShardEnv { Traced { .. } }`), so the receiving
    /// site binds the transaction to its causal trace.
    fn send(&self, to: SiteId, group: u8, msg: Message) {
        let trace = msg
            .txn_id()
            .and_then(|t| self.traces.get(&t))
            .copied()
            .unwrap_or(0);
        let inner = if trace != 0 {
            Box::new(Message::Traced {
                trace,
                inner: Box::new(msg),
            })
        } else {
            Box::new(msg)
        };
        let _ = self.transport.send(
            to,
            &Message::ShardEnv {
                shard: group,
                inner,
            },
        );
    }

    /// Round-robin over a group's members, preferring sites the client
    /// believes are up. Falls back to the cursor site when the whole
    /// group looks down (the engine's own SiteNotOperational abort then
    /// reports the truth).
    fn pick_coordinator(&mut self, group: u8) -> SiteId {
        let spg = self.spec.sites_per_group;
        let start = self.rr[group as usize];
        self.rr[group as usize] = (start + 1) % spg;
        for k in 0..spg {
            let local = (start + k) % spg;
            let phys = self.spec.physical_site(group, SiteId(local));
            if self.up[phys.index()] {
                return phys;
            }
        }
        self.spec.physical_site(group, SiteId(start))
    }

    /// Drain the inbox: block up to `slice` for the first message, then
    /// take whatever else already arrived.
    fn pump(&mut self, slice: Duration) -> Result<(), ControlError> {
        match self.mailbox.recv_timeout(slice) {
            Ok((from, msg)) => self.process(from, msg),
            Err(RecvError::Timeout) => return Ok(()),
            Err(RecvError::Disconnected) => return Err(ControlError::Disconnected),
        }
        loop {
            match self.mailbox.try_recv() {
                Ok((from, msg)) => self.process(from, msg),
                Err(RecvError::Timeout) => return Ok(()),
                Err(RecvError::Disconnected) => return Err(ControlError::Disconnected),
            }
        }
    }

    fn process(&mut self, from: SiteId, msg: Message) {
        let (group, msg) = match msg {
            Message::ShardEnv { shard, inner } => (shard, *inner),
            other if from.index() < self.spec.n_physical_sites() as usize => {
                (self.spec.local_site(from).0, other)
            }
            _ => return,
        };
        // Sites wrap frames of traced transactions; the envelope is
        // transparent to the control plane.
        let msg = match msg {
            Message::Traced { inner, .. } => *inner,
            other => other,
        };
        let now = Instant::now();
        match msg {
            Message::MgmtReport(report) => {
                if report.outcome.is_committed()
                    && from.index() < self.spec.n_physical_sites() as usize
                {
                    self.last_commit_coord[group as usize] = Some(from);
                }
                if let Some(single) = self.singles.remove(&report.txn) {
                    // A re-stamped retry resolves under its fresh id;
                    // the caller waits on the original.
                    let orig = self.retry_alias.remove(&report.txn).unwrap_or(report.txn);
                    self.traces.remove(&report.txn);
                    self.traces.remove(&orig);
                    self.no_retry.remove(&orig);
                    self.retries.retain(|t| *t != orig);
                    let mapped = self.mapped_ops.remove(&report.txn);
                    if orig != report.txn {
                        self.mapped_ops.remove(&orig);
                    }
                    if report.outcome.is_committed() {
                        let micros = now.duration_since(single.started).as_micros() as u64;
                        self.single_commit_latency.record(micros);
                        self.per_group_commit_latency[single.group as usize].record(micros);
                    }
                    // Mapped transactions use identity item names; the
                    // spec's localize/globalize stripe applies only to
                    // the static sharded deployment.
                    let mut read_results: Vec<(ItemId, ItemValue)> = if mapped.is_some() {
                        report.read_results.clone()
                    } else {
                        report
                            .read_results
                            .iter()
                            .map(|(i, v)| (self.spec.globalize(single.group, *i), *v))
                            .collect()
                    };
                    read_results.sort_by_key(|(i, _)| *i);
                    // Commit-time write-through: a committed write
                    // inside a migrating range is immediately installed
                    // at the recipient under the same transaction id
                    // (same version stamp ⇒ idempotent against the
                    // copier), so the copier only covers the backlog
                    // instead of chasing the live write stream. A
                    // commit whose report raced past cutover chases the
                    // item to its new owner the same way.
                    let mut legs: Vec<(u8, Vec<Operation>)> = Vec::new();
                    if let (Some(src), true, Some(map)) =
                        (&mapped, report.outcome.is_committed(), self.map.as_ref())
                    {
                        for op in &src.ops {
                            if let Operation::Write(item, v) = op {
                                let to = match map.state(item.0) {
                                    RangeState::Migrating {
                                        donor, recipient, ..
                                    } if donor == single.group => Some(recipient),
                                    RangeState::Owned(owner) if owner != single.group => {
                                        Some(owner)
                                    }
                                    _ => None,
                                };
                                if let Some(g) = to {
                                    match legs.iter_mut().find(|(lg, _)| *lg == g) {
                                        Some((_, ops)) => ops.push(Operation::Write(*item, *v)),
                                        None => legs.push((g, vec![Operation::Write(*item, *v)])),
                                    }
                                }
                            }
                        }
                    }
                    for (g, ops) in legs {
                        let coordinator = self.pick_coordinator(g);
                        self.send(
                            coordinator,
                            g,
                            Message::Mgmt(Command::Begin(Transaction::new(report.txn, ops))),
                        );
                    }
                    self.finished.insert(
                        orig,
                        ShardedReport {
                            txn: orig,
                            committed_as: report.txn,
                            cross_shard: false,
                            outcome: report.outcome,
                            read_results,
                        },
                    );
                } else if self.xcoord.phase(report.txn).is_some() {
                    let actions = self.xcoord.on_branch_report(
                        group,
                        report.txn,
                        report.outcome.is_committed(),
                        &report.read_results,
                    );
                    self.perform(actions, now);
                }
                // Reports for unknown ids are late duplicates from
                // re-drives of already-finished transactions: drop.
            }
            Message::ShardVote { txn, ok } => {
                self.emit(txn, EventKind::XVote { shard: group, ok });
                if let Some(state) = self.cross.get_mut(&txn) {
                    // Remember the vote for the commit record
                    // (management frames are retried: dedup by group).
                    if !state.votes.iter().any(|(g, _)| *g == group) {
                        state.votes.push((group, ok));
                    }
                }
                let actions = self.xcoord.on_vote(group, txn, ok);
                self.perform(actions, now);
            }
            Message::XLogAck {
                txn,
                epoch,
                ok,
                decided,
            } if ok && epoch == self.coord_epoch => {
                self.on_log_ack(from, txn, decided, now);
            }
            // Acks for a superseded epoch (or fenced rejections): drop.
            Message::XLogAck { .. } => {}
            Message::XLogReply { epoch, records } if epoch == self.coord_epoch => {
                if let Some(CrashRecovery { query: Some(q), .. }) = &mut self.crash_state {
                    q.replies.insert(from, records);
                } else if let Some(probe) = &mut self.xlog_probe {
                    probe.insert(from, records);
                }
            }
            Message::XLogReply { .. } => {}
            Message::WrongEpoch { txn, epoch: _ } => {
                self.stale_bounces += 1;
                self.singles.remove(&txn);
                // A bounced re-stamped retry re-queues under its
                // *original* id; the fresh id is spent (the next retry
                // round allocates another).
                let orig = self.retry_alias.remove(&txn).unwrap_or(txn);
                if orig != txn {
                    self.mapped_ops.remove(&txn);
                }
                if self.no_retry.remove(&orig) {
                    self.mapped_ops.remove(&orig);
                    self.traces.remove(&orig);
                    self.finished.insert(
                        orig,
                        ShardedReport {
                            txn: orig,
                            committed_as: txn,
                            cross_shard: false,
                            outcome: TxnOutcome::Aborted(AbortReason::StaleShardMap),
                            read_results: Vec::new(),
                        },
                    );
                } else if self.mapped_ops.contains_key(&orig) && !self.retries.contains(&orig) {
                    self.retries.push(orig);
                }
            }
            Message::MapChangeAck { epoch, ok } if ok => {
                self.map_acks.entry(epoch).or_default().insert(from);
            }
            Message::MapChangeAck { .. } => {}
            Message::MapReply {
                epoch,
                assignment,
                migrating,
            } => {
                self.map_replies += 1;
                if epoch > 0 && self.map.as_ref().is_none_or(|m| epoch > m.epoch) {
                    self.map = Some(ShardMap {
                        epoch,
                        assignment,
                        migrating,
                    });
                }
            }
            Message::MgmtRecovered { session } => {
                self.events.push(CtlEvent::Recovered {
                    site: from,
                    session,
                });
            }
            Message::MetricsResponse { text } => {
                self.events.push(CtlEvent::Metrics { site: from, text });
            }
            // Data-recovery announcements and anything else the control
            // plane doesn't wait on.
            _ => {}
        }
    }

    fn perform(&mut self, actions: Vec<XAction>, now: Instant) {
        // A kill-point can fire while a batch is being performed; the
        // rest of the batch belongs to the dead incarnation.
        let generation = self.crashes;
        for action in actions {
            if self.crashes != generation {
                break;
            }
            // Commit decides are gated: the first one triggers the
            // commit record's replication, and the batch is held until
            // a log quorum acknowledges it.
            if let XAction::Decide {
                group,
                txn,
                commit: true,
            } = action
            {
                let gated = self
                    .cross
                    .get(&txn)
                    .is_some_and(|s| s.stage != XStage::Released);
                if gated {
                    self.hold_commit_decide(txn, group, now);
                    continue;
                }
            }
            match action {
                XAction::Prepare { group, branch } => {
                    let coordinator = self.pick_coordinator(group);
                    self.emit(branch.id, EventKind::XPrepare { shard: group });
                    if let Some(state) = self.cross.get_mut(&branch.id) {
                        state.branch_coord.insert(group, coordinator);
                        // Re-drives start at the site after the original
                        // coordinator.
                        let local = self.spec.local_site(coordinator).1;
                        state
                            .cursor
                            .insert(group, (local.0 + 1) % self.spec.sites_per_group);
                    }
                    self.send(coordinator, group, Message::ShardPrepare { txn: branch });
                }
                XAction::Decide { group, txn, commit } => {
                    let first = match self.cross.get_mut(&txn) {
                        Some(state) if !state.decided => {
                            state.decided = true;
                            true
                        }
                        _ => false,
                    };
                    if first {
                        self.emit(txn, EventKind::XDecide { commit });
                    }
                    let target = self
                        .cross
                        .get(&txn)
                        .and_then(|s| s.branch_coord.get(&group))
                        .copied()
                        .unwrap_or_else(|| self.spec.physical_site(group, SiteId(0)));
                    self.send(target, group, Message::ShardDecide { txn, commit });
                }
                XAction::Finished {
                    txn,
                    committed,
                    read_results,
                } => {
                    self.traces.remove(&txn);
                    self.resolved.insert(txn);
                    // The outcome is confirmed at every branch: nothing
                    // will ever need this decision record again, so
                    // retire it from the log replicas (quorum-acked
                    // garbage collection; the replicas fence retires by
                    // epoch, so a superseded coordinator cannot reap a
                    // successor's records).
                    for member in self.spec.group_members(LOG_GROUP) {
                        self.send_xlog(
                            member,
                            Message::XLogRetire {
                                epoch: self.coord_epoch,
                                txn,
                            },
                        );
                    }
                    if let Some(state) = self.cross.remove(&txn) {
                        if committed {
                            self.cross_commit_latency
                                .record(now.duration_since(state.started).as_micros() as u64);
                        }
                    }
                    let outcome = if committed {
                        TxnOutcome::Committed
                    } else {
                        TxnOutcome::Aborted(AbortReason::GlobalAbort)
                    };
                    self.finished.insert(
                        txn,
                        ShardedReport {
                            txn,
                            committed_as: txn,
                            cross_shard: true,
                            outcome,
                            read_results,
                        },
                    );
                }
            }
        }
    }

    /// Send a decision-log frame to a log-group replica. XLog frames
    /// are addressed to the site *loop* (the replica lives beside the
    /// engine), so they are wrapped in the log group's shard envelope
    /// but never in `Traced`.
    fn send_xlog(&self, to: SiteId, msg: Message) {
        let _ = self.transport.send(
            to,
            &Message::ShardEnv {
                shard: LOG_GROUP,
                inner: Box::new(msg),
            },
        );
    }

    /// Replicate a decision record: append it to every log-group
    /// member under the current coordinator epoch.
    fn append_to_log(&self, record: XDecisionRecord) {
        for member in self.spec.group_members(LOG_GROUP) {
            self.send_xlog(
                member,
                Message::XLogAppend {
                    epoch: self.coord_epoch,
                    record: record.clone(),
                },
            );
        }
    }

    /// A majority of the log group.
    fn log_quorum(&self) -> usize {
        (self.spec.sites_per_group / 2 + 1) as usize
    }

    /// A log replica acknowledged the current epoch's append for
    /// `txn`. `decided` tells begin-acks from commit-acks apart (late
    /// duplicates of the begin append must not count toward the commit
    /// quorum).
    fn on_log_ack(&mut self, from: SiteId, txn: TxnId, decided: bool, now: Instant) {
        let quorum = self.log_quorum();
        let Some(state) = self.cross.get_mut(&txn) else {
            return;
        };
        let wanted = match state.stage {
            XStage::BeginPending => !decided,
            XStage::CommitPending => decided,
            _ => return,
        };
        if !wanted {
            return;
        }
        state.acks.insert(from);
        if state.acks.len() >= quorum {
            match state.stage {
                XStage::BeginPending => self.release_begin(txn, now),
                XStage::CommitPending => self.release_commit(txn, now),
                _ => unreachable!("stage checked above"),
            }
        }
    }

    /// The first commit decide of a batch arrived while the commit
    /// record is not yet on a quorum: hold it (and every later one)
    /// and trigger the commit record's replication.
    fn hold_commit_decide(&mut self, txn: TxnId, group: u8, now: Instant) {
        let Some(state) = self.cross.get_mut(&txn) else {
            return;
        };
        state.held.push(XAction::Decide {
            group,
            txn,
            commit: true,
        });
        if state.stage != XStage::CommitPending {
            state.stage = XStage::CommitPending;
            state.acks.clear();
            state.next_append = now + self.redrive_interval;
            let record = XDecisionRecord {
                txn,
                branches: state.branches.clone(),
                votes: state.votes.clone(),
                outcome: Some(true),
            };
            self.append_to_log(record);
            if self.kill_point == Some(CoordKillPoint::AfterVotes) {
                self.crash_coordinator(now);
            }
        }
    }

    /// The begin record reached a quorum: release the held prepares
    /// and start the vote clock.
    fn release_begin(&mut self, txn: TxnId, now: Instant) {
        let Some(state) = self.cross.get_mut(&txn) else {
            return;
        };
        let replicas = state.acks.len().min(u8::MAX as usize) as u8;
        state.stage = XStage::Prepared;
        state.acks.clear();
        state.vote_deadline = now + self.vote_timeout;
        let held = std::mem::take(&mut state.held);
        self.emit(
            txn,
            EventKind::XLogReplicate {
                replicas,
                decided: false,
            },
        );
        self.perform(held, now);
        if self.kill_point == Some(CoordKillPoint::AfterPrepare) {
            self.crash_coordinator(now);
        }
    }

    /// The commit record reached a quorum: release the held decides.
    /// The mid-decide kill-point lets exactly one of them out first.
    fn release_commit(&mut self, txn: TxnId, now: Instant) {
        let Some(state) = self.cross.get_mut(&txn) else {
            return;
        };
        let replicas = state.acks.len().min(u8::MAX as usize) as u8;
        state.stage = XStage::Released;
        state.acks.clear();
        let held = std::mem::take(&mut state.held);
        self.emit(
            txn,
            EventKind::XLogReplicate {
                replicas,
                decided: true,
            },
        );
        if self.kill_point == Some(CoordKillPoint::MidDecide) {
            let mut held = held.into_iter();
            if let Some(first) = held.next() {
                self.perform(vec![first], now);
            }
            self.crash_coordinator(now);
            return;
        }
        self.perform(held, now);
    }

    /// The acting coordinator dies: every in-flight cross-shard
    /// transaction is orphaned (its client-side state and the
    /// in-memory [`XCoordinator`] state vanish, exactly as if the
    /// coordinator process had been SIGKILLed), and a successor
    /// incarnation is scheduled to take over after the vote timeout.
    fn crash_coordinator(&mut self, now: Instant) {
        self.kill_point = None;
        self.crashes += 1;
        self.metrics_base = add_metrics(self.metrics_base, self.xcoord.metrics);
        self.orphans.extend(self.cross.keys().copied());
        self.cross.clear();
        self.xcoord = XCoordinator::new(self.spec);
        self.crash_state = Some(CrashRecovery {
            crashed_at: now,
            takeover_at: now + self.vote_timeout,
            query: None,
        });
    }

    /// Drive a pending takeover: start the quorum read once the vote
    /// timeout has passed, retry the (droppable) query, and complete
    /// the takeover once a quorum of replicas replied.
    fn tick_takeover(&mut self, now: Instant) {
        enum Step {
            Start,
            Resend,
            Complete,
        }
        let step = match &self.crash_state {
            None => return,
            Some(cr) => match &cr.query {
                None if now >= cr.takeover_at => Step::Start,
                None => return,
                Some(q) if q.replies.len() >= self.log_quorum() => Step::Complete,
                Some(q) if now >= q.next_send => Step::Resend,
                Some(_) => return,
            },
        };
        match step {
            Step::Start => {
                // The successor fences the dead incarnation off with a
                // fresh epoch before reading the log back.
                self.coord_epoch = next_epoch(self.coord_epoch);
                for member in self.spec.group_members(LOG_GROUP) {
                    self.send_xlog(
                        member,
                        Message::XLogQuery {
                            epoch: self.coord_epoch,
                        },
                    );
                }
                if let Some(cr) = &mut self.crash_state {
                    cr.query = Some(TakeoverQuery {
                        replies: HashMap::new(),
                        next_send: now + self.redrive_interval,
                    });
                }
            }
            Step::Resend => {
                for member in self.spec.group_members(LOG_GROUP) {
                    self.send_xlog(
                        member,
                        Message::XLogQuery {
                            epoch: self.coord_epoch,
                        },
                    );
                }
                if let Some(CrashRecovery { query: Some(q), .. }) = &mut self.crash_state {
                    q.next_send = now + self.redrive_interval;
                }
            }
            Step::Complete => self.complete_takeover(now),
        }
    }

    /// A quorum of log replicas replied: adopt every unresolved
    /// record — commit records are re-driven, begin records presume
    /// abort — and finish orphans the log never heard of (their
    /// prepares were still held when the coordinator died, so nothing
    /// is parked anywhere).
    fn complete_takeover(&mut self, now: Instant) {
        let Some(cr) = self.crash_state.take() else {
            return;
        };
        let Some(query) = cr.query else {
            return;
        };
        // Merge the replies: one record per transaction, commit
        // outcome winning (quorum intersection guarantees a released
        // decision is visible in any majority read).
        let mut merged: HashMap<TxnId, XDecisionRecord> = HashMap::new();
        for (_, records) in query.replies {
            for record in records {
                if self.resolved.contains(&record.txn) {
                    continue;
                }
                match merged.get(&record.txn) {
                    Some(existing) if existing.outcome.is_some() => {}
                    _ => {
                        merged.insert(record.txn, record);
                    }
                }
            }
        }
        let orphans: Vec<TxnId> = self.orphans.drain().collect();
        for (txn, record) in merged {
            self.orphans.remove(&txn);
            let commit = record.outcome == Some(true);
            self.adopt(txn, record, commit, now);
        }
        for txn in orphans {
            if self.resolved.contains(&txn) || self.cross.contains_key(&txn) {
                continue;
            }
            // Never logged: the begin record missed its quorum, so the
            // prepares were never released — abort locally.
            self.emit(txn, EventKind::XTakeover { commit: false });
            self.traces.remove(&txn);
            self.resolved.insert(txn);
            self.metrics_base.aborted += 1;
            self.finished.insert(
                txn,
                ShardedReport {
                    txn,
                    committed_as: txn,
                    cross_shard: true,
                    outcome: TxnOutcome::Aborted(AbortReason::GlobalAbort),
                    read_results: Vec::new(),
                },
            );
        }
        self.takeover_latency
            .record(now.duration_since(cr.crashed_at).as_micros() as u64);
    }

    /// Adopt one in-doubt transaction from the decision log into the
    /// successor coordinator.
    fn adopt(&mut self, txn: TxnId, record: XDecisionRecord, commit: bool, now: Instant) {
        self.emit(txn, EventKind::XTakeover { commit });
        if commit {
            // Re-enter Committing: the commit record is re-replicated
            // under the successor's epoch, the re-announced decides
            // are held behind its quorum, and the ordinary re-drive
            // machinery (which broadcasts the decision to every group
            // member and re-submits write-only residues) confirms the
            // branches.
            let held = self.xcoord.adopt_record(record.branches.clone(), true);
            self.cross.insert(
                txn,
                CrossState {
                    started: now,
                    stage: XStage::CommitPending,
                    branches: record.branches.clone(),
                    held,
                    votes: record.votes.clone(),
                    acks: HashSet::new(),
                    next_append: now + self.redrive_interval,
                    vote_deadline: now + self.vote_timeout,
                    next_redrive: now,
                    branch_coord: HashMap::new(),
                    cursor: HashMap::new(),
                    decided: false,
                },
            );
            self.append_to_log(XDecisionRecord {
                txn,
                branches: record.branches,
                votes: record.votes,
                outcome: Some(true),
            });
        } else {
            // Presumed abort. The dead coordinator may have parked
            // branches at any member, so the abort is broadcast to the
            // whole group rather than a remembered coordinator.
            let actions = self.xcoord.adopt_record(record.branches.clone(), false);
            for (group, _) in &record.branches {
                for member in self.spec.group_members(*group) {
                    self.send(member, *group, Message::ShardDecide { txn, commit: false });
                }
            }
            let finishes: Vec<XAction> = actions
                .into_iter()
                .filter(|a| matches!(a, XAction::Finished { .. }))
                .collect();
            self.perform(finishes, now);
        }
    }

    /// Re-send the current stage's decision record for transactions
    /// whose append has not reached a quorum yet (the frames are
    /// management-plane: droppable, so retried).
    fn tick_appends(&mut self, now: Instant) {
        let due: Vec<(TxnId, Option<bool>)> = self
            .cross
            .iter()
            .filter(|(_, s)| now >= s.next_append)
            .filter_map(|(txn, s)| match s.stage {
                XStage::BeginPending => Some((*txn, None)),
                XStage::CommitPending => Some((*txn, Some(true))),
                _ => None,
            })
            .collect();
        for (txn, outcome) in due {
            let record = {
                let Some(state) = self.cross.get_mut(&txn) else {
                    continue;
                };
                state.next_append = now + self.redrive_interval;
                XDecisionRecord {
                    txn,
                    branches: state.branches.clone(),
                    votes: state.votes.clone(),
                    outcome,
                }
            };
            self.append_to_log(record);
        }
    }

    /// Fire internal deadlines: takeover progress, decision-record
    /// append retries, vote timeouts (missing votes become no), and
    /// re-drive rounds for committed-but-unconfirmed branches whose
    /// decides have been released.
    fn tick(&mut self) {
        let now = Instant::now();
        self.tick_takeover(now);
        self.tick_appends(now);
        self.tick_mapped(now);
        let ids: Vec<TxnId> = self.cross.keys().copied().collect();
        for txn in ids {
            match self.xcoord.phase(txn) {
                Some(XPhase::Voting) => {
                    let due = self.cross.get(&txn).is_some_and(|s| now >= s.vote_deadline);
                    if due {
                        let actions = self.xcoord.force_decision(txn);
                        self.perform(actions, now);
                    }
                }
                Some(XPhase::Committing) => {
                    let due = match self.cross.get_mut(&txn) {
                        Some(state)
                            if state.stage == XStage::Released && now >= state.next_redrive =>
                        {
                            state.next_redrive = now + self.redrive_interval;
                            true
                        }
                        _ => false,
                    };
                    if due {
                        self.redrive(txn);
                    }
                }
                None => {
                    // Finished between collecting ids and now.
                }
            }
        }
    }

    /// One re-drive round for every unconfirmed branch of a committed
    /// transaction: repeat the commit decision to *every* group member
    /// (the parked coordinator, wherever it is, resumes and commits),
    /// and re-submit the branch's write residue to the next site in the
    /// group's rotation (repairing the case where the original
    /// coordinator died and its parked state is gone). Per-sender FIFO
    /// makes the decision arrive before the re-submission at that site,
    /// and both are idempotent.
    fn redrive(&mut self, txn: TxnId) {
        let targets = self.xcoord.redrive_targets(txn);
        for (group, residue) in targets {
            for member in self.spec.group_members(group) {
                self.send(member, group, Message::ShardDecide { txn, commit: true });
            }
            let spg = self.spec.sites_per_group;
            let local = match self.cross.get_mut(&txn) {
                Some(state) => {
                    let cur = state.cursor.entry(group).or_insert(0);
                    let local = *cur;
                    *cur = (*cur + 1) % spg;
                    local
                }
                None => 0,
            };
            let target = self.spec.physical_site(group, SiteId(local));
            self.send(target, group, Message::Mgmt(Command::Begin(residue)));
        }
    }
}

/// Find `name{...} value` (or `name value`) in a Prometheus-style text
/// exposition and return the value. Label sets are skipped, but a name
/// that merely shares a prefix (`foo_total` vs `foo`) never matches.
fn parse_exposition_counter(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = match rest.as_bytes().first() {
            Some(b'{') => {
                let close = rest.find('}')?;
                &rest[close + 1..]
            }
            Some(b' ') => rest,
            _ => return None,
        };
        rest.trim().parse::<u64>().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::parse_exposition_counter;

    #[test]
    fn exposition_counter_parsing() {
        let text = "\
# TYPE miniraid_lock_waits counter
miniraid_lock_waits{site=\"2\"} 7
# TYPE miniraid_lock_wait_us summary
miniraid_lock_wait_us{site=\"2\",quantile=\"0.5\"} 120
miniraid_inflight_high_water{site=\"2\"} 4
miniraid_cross_shard_commit_latency_us_count 3
";
        assert_eq!(
            parse_exposition_counter(text, "miniraid_lock_waits"),
            Some(7)
        );
        assert_eq!(
            parse_exposition_counter(text, "miniraid_inflight_high_water"),
            Some(4)
        );
        // Unlabeled form.
        assert_eq!(
            parse_exposition_counter(text, "miniraid_cross_shard_commit_latency_us_count"),
            Some(3)
        );
        // Prefix of a longer name must not match.
        assert_eq!(parse_exposition_counter(text, "miniraid_lock_wait_u"), None);
        assert_eq!(parse_exposition_counter(text, "miniraid_wal_fsyncs"), None);
    }
}
