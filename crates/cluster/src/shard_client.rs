//! The managing client for a sharded cluster: routes transactions to
//! replication groups and plays the top-level coordinator for
//! cross-shard atomic commit.
//!
//! Single-group transactions take the fast path: the client localizes
//! the item names and forwards the transaction to one of the group's
//! sites exactly as the unsharded [`ManagingClient`] would — the
//! group's engine runs the paper's protocol unmodified. Multi-group
//! transactions are split into branches and driven through the
//! [`XCoordinator`]: prepare (each branch runs phase one and parks at
//! its local commit point), vote, decide, and — when a branch
//! coordinator dies after the commit decision — a re-drive loop that
//! repeats the decision and re-submits the branch's write residue
//! round-robin across the group's surviving sites until some
//! coordinator confirms the commit. Re-drives are idempotent: writes
//! carry the transaction id as their version stamp and sites install
//! only fresher versions, and engines drop duplicate submissions of an
//! in-flight id.
//!
//! Like the paper's managing site, the client sits outside the failure
//! model, so the top-level 2PC has no "coordinator failed after
//! prepare" blocking case; the blocking cases that remain are all
//! *inside* groups, where the paper's own failure machinery (2PC
//! timeouts, failure announcements, fail-locks) already resolves them.
//!
//! [`ManagingClient`]: crate::control::ManagingClient

use std::collections::HashMap;
use std::time::{Duration, Instant};

use miniraid_core::config::ProtocolConfig;
use miniraid_core::error::AbortReason;
use miniraid_core::ids::{ItemId, SessionNumber, SiteId, TxnId};
use miniraid_core::messages::{Command, Message, TxnOutcome};
use miniraid_core::ops::Transaction;
use miniraid_core::trace::{EventKind, TraceId, TraceIdGen, Tracer};
use miniraid_net::{Mailbox, RecvError, Transport};
use miniraid_obs::LatencyHistogram;
use miniraid_shard::{classify, Route, ShardSpec, XAction, XCoordinator, XPhase};
use miniraid_storage::ItemValue;

use crate::control::ControlError;

/// The final outcome of a routed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedReport {
    /// The (global) transaction.
    pub txn: TxnId,
    /// Whether it spanned more than one group.
    pub cross_shard: bool,
    /// Commit or abort. Cross-shard aborts carry
    /// [`AbortReason::GlobalAbort`].
    pub outcome: TxnOutcome,
    /// Read results with *global* item names, in item order.
    pub read_results: Vec<(ItemId, ItemValue)>,
}

impl ShardedReport {
    /// True if committed.
    pub fn committed(&self) -> bool {
        self.outcome.is_committed()
    }
}

/// Control-plane replies stashed while waiting for something else.
enum CtlEvent {
    Recovered {
        site: SiteId,
        session: SessionNumber,
    },
    Metrics {
        site: SiteId,
        text: String,
    },
}

/// Book-keeping for one in-flight cross-shard transaction.
struct CrossState {
    started: Instant,
    vote_deadline: Instant,
    next_redrive: Instant,
    /// Physical coordinator each branch was prepared at.
    branch_coord: HashMap<u8, SiteId>,
    /// Next group-local site index to receive a re-drive submission.
    cursor: HashMap<u8, u8>,
    /// The global decision was already announced to the trace stream
    /// (re-drives repeat the decision message, not the `x_decide` event).
    decided: bool,
}

/// Book-keeping for one in-flight single-group transaction.
struct SingleState {
    group: u8,
    started: Instant,
}

/// The managing client of a sharded cluster.
pub struct ShardedClient<T: Transport, M: Mailbox> {
    transport: T,
    mailbox: M,
    spec: ShardSpec,
    next_txn: u64,
    xcoord: XCoordinator,
    singles: HashMap<TxnId, SingleState>,
    cross: HashMap<TxnId, CrossState>,
    finished: HashMap<TxnId, ShardedReport>,
    events: Vec<CtlEvent>,
    /// Per-group round-robin cursor for picking coordinators.
    rr: Vec<u8>,
    /// Per-group physical sender of the most recent *committed* outcome
    /// report — the paper's "last site to fail" candidate: it was
    /// provably operational at the group's last commit, so its copy is
    /// as complete as any member's. Used by total-group-failure
    /// recovery to pick the bootstrap site.
    last_commit_coord: Vec<Option<SiteId>>,
    /// The client's own belief about which physical sites are up
    /// (driven by its `fail`/`recover` calls; used only to bias
    /// coordinator choice, never for correctness).
    up: Vec<bool>,
    /// Client-observed commit latency of cross-shard transactions
    /// (prepare sent → all branches confirmed), in microseconds.
    pub cross_commit_latency: LatencyHistogram,
    /// Client-observed commit latency of single-group transactions.
    pub single_commit_latency: LatencyHistogram,
    /// Single-group commit latency split per group, indexed by group.
    pub per_group_commit_latency: Vec<LatencyHistogram>,
    /// How long the top-level 2PC waits for branch votes before
    /// counting stragglers as no
    /// ([`ProtocolConfig::shard_vote_timeout_ms`]).
    vote_timeout: Duration,
    /// Interval between re-drive rounds
    /// ([`ProtocolConfig::shard_redrive_interval_ms`]).
    redrive_interval: Duration,
    /// The client's own protocol-event tracer (disabled by default).
    /// When enabled, every submitted transaction gets a globally unique
    /// [`TraceId`], outbound frames are wrapped in
    /// [`Message::Traced`], and the cross-shard coordination milestones
    /// (`x_begin` → `x_prepare` → `x_vote` → `x_decide`) are emitted
    /// into the client's own trace stream.
    tracer: Tracer,
    trace_gen: TraceIdGen,
    /// Trace id of every in-flight submitted transaction.
    traces: HashMap<TxnId, TraceId>,
}

impl<T: Transport, M: Mailbox> ShardedClient<T, M> {
    /// Wrap the manager's physical endpoint, with the default
    /// cross-shard timers (see [`ShardedClient::with_config`]).
    pub fn new(transport: T, mailbox: M, spec: ShardSpec) -> Self {
        Self::with_config(transport, mailbox, spec, &ProtocolConfig::default())
    }

    /// Wrap the manager's physical endpoint, taking the cross-shard
    /// 2PC timers (`shard_vote_timeout_ms`, `shard_redrive_interval_ms`)
    /// from `config`.
    pub fn with_config(transport: T, mailbox: M, spec: ShardSpec, config: &ProtocolConfig) -> Self {
        let n = spec.n_physical_sites() as usize;
        ShardedClient {
            transport,
            mailbox,
            spec,
            next_txn: 1,
            xcoord: XCoordinator::new(spec),
            singles: HashMap::new(),
            cross: HashMap::new(),
            finished: HashMap::new(),
            events: Vec::new(),
            rr: vec![0; spec.n_groups as usize],
            last_commit_coord: vec![None; spec.n_groups as usize],
            up: vec![true; n],
            cross_commit_latency: LatencyHistogram::new(),
            single_commit_latency: LatencyHistogram::new(),
            per_group_commit_latency: vec![LatencyHistogram::new(); spec.n_groups as usize],
            vote_timeout: Duration::from_millis(config.shard_vote_timeout_ms),
            redrive_interval: Duration::from_millis(config.shard_redrive_interval_ms),
            tracer: Tracer::disabled(),
            trace_gen: TraceIdGen::new(spec.n_physical_sites() as u64),
            traces: HashMap::new(),
        }
    }

    /// Install the client's tracer: subsequent submissions allocate
    /// trace ids, wrap their outbound frames, and emit the cross-shard
    /// coordination milestones. The trace-id origin is the physical
    /// manager id, so client-allocated ids never collide with another
    /// origin's.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The configured top-level vote timeout.
    pub fn vote_timeout(&self) -> Duration {
        self.vote_timeout
    }

    /// The configured re-drive interval.
    pub fn redrive_interval(&self) -> Duration {
        self.redrive_interval
    }

    /// The client's tracer (disabled unless
    /// [`ShardedClient::set_tracer`] was called) — chaos harnesses emit
    /// schedule annotations through it so failures are visible in the
    /// trace streams they perturb.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The topology this client drives.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Allocate the next globally unique transaction id.
    pub fn next_txn_id(&mut self) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        id
    }

    /// Cross-shard transactions still unresolved.
    pub fn pending_cross(&self) -> usize {
        self.xcoord.pending()
    }

    /// The cross-shard coordinator's own counters.
    pub fn xmetrics(&self) -> miniraid_shard::XMetrics {
        self.xcoord.metrics
    }

    /// The physical site that reported the group's most recent commit
    /// (it was operational at that commit, so its copy is as complete
    /// as any member's), or `None` if the group never committed.
    pub fn last_commit_coordinator(&self, group: u8) -> Option<SiteId> {
        self.last_commit_coord[group as usize]
    }

    /// Route and submit a transaction with global item names, without
    /// waiting for its outcome (open-loop driving; pair with
    /// [`drain_finished`](Self::drain_finished) or
    /// [`wait_report`](Self::wait_report)).
    pub fn submit(&mut self, txn: Transaction) {
        let now = Instant::now();
        if self.tracer.is_enabled() {
            let trace = self.trace_gen.next_id();
            self.traces.insert(txn.id, trace);
        }
        match classify(&self.spec, &txn) {
            Route::Single { group, txn } => {
                let coordinator = self.pick_coordinator(group);
                self.singles.insert(
                    txn.id,
                    SingleState {
                        group,
                        started: now,
                    },
                );
                self.send(coordinator, group, Message::Mgmt(Command::Begin(txn)));
            }
            Route::Multi { branches } => {
                self.emit(
                    txn.id,
                    EventKind::XBegin {
                        branches: branches.len().min(u8::MAX as usize) as u8,
                    },
                );
                self.cross.insert(
                    txn.id,
                    CrossState {
                        started: now,
                        vote_deadline: now + self.vote_timeout,
                        next_redrive: now + self.redrive_interval,
                        branch_coord: HashMap::new(),
                        cursor: HashMap::new(),
                        decided: false,
                    },
                );
                let actions = self.xcoord.begin(branches);
                self.perform(actions, now);
            }
        }
    }

    /// Submit and wait for the final (global) outcome.
    pub fn run_txn(
        &mut self,
        txn: Transaction,
        deadline: Duration,
    ) -> Result<ShardedReport, ControlError> {
        let id = txn.id;
        self.submit(txn);
        self.wait_report(id, deadline)
    }

    /// Run a transaction at a *specific* physical site, bypassing the
    /// round-robin coordinator choice. The transaction (global item
    /// names) must be confined to that site's group — used by
    /// convergence checks that compare every member's copy. Panics on a
    /// transaction touching any other group.
    pub fn run_txn_at(
        &mut self,
        site: SiteId,
        txn: Transaction,
        deadline: Duration,
    ) -> Result<ShardedReport, ControlError> {
        let (group, _) = self.spec.local_site(site);
        match classify(&self.spec, &txn) {
            Route::Single {
                group: g,
                txn: localized,
            } if g == group => {
                let id = localized.id;
                self.singles.insert(
                    id,
                    SingleState {
                        group,
                        started: Instant::now(),
                    },
                );
                self.send(site, group, Message::Mgmt(Command::Begin(localized)));
                self.wait_report(id, deadline)
            }
            _ => panic!("run_txn_at requires a transaction confined to {site}'s group"),
        }
    }

    /// Wait for a previously submitted transaction's final outcome,
    /// driving votes, decisions and re-drives while waiting.
    pub fn wait_report(
        &mut self,
        txn: TxnId,
        deadline: Duration,
    ) -> Result<ShardedReport, ControlError> {
        let until = Instant::now() + deadline;
        loop {
            if let Some(report) = self.finished.remove(&txn) {
                return Ok(report);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("sharded transaction report"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Collect every transaction that reached a final outcome, without
    /// blocking (after a non-blocking pump of the inbox).
    pub fn drain_finished(&mut self) -> Vec<ShardedReport> {
        let _ = self.pump(Duration::ZERO);
        self.tick();
        let mut reports: Vec<ShardedReport> = self.finished.drain().map(|(_, r)| r).collect();
        reports.sort_by_key(|r| r.txn);
        reports
    }

    /// Process inbox traffic and internal deadlines for `duration` —
    /// used to let in-flight cross-shard transactions resolve (votes,
    /// decisions, re-drives) without submitting new work.
    pub fn pump_for(&mut self, duration: Duration) -> Result<(), ControlError> {
        let until = Instant::now() + duration;
        while Instant::now() < until {
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
        Ok(())
    }

    /// Tell a physical site to fail.
    pub fn fail(&mut self, site: SiteId) {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::Mgmt(Command::Fail));
        self.up[site.index()] = false;
    }

    /// Tell a physical site to recover; waits until it reports
    /// operational (in-flight shard traffic keeps being driven).
    pub fn recover(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<SessionNumber, ControlError> {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::Mgmt(Command::Recover));
        let until = Instant::now() + deadline;
        loop {
            if let Some(pos) = self
                .events
                .iter()
                .position(|e| matches!(e, CtlEvent::Recovered { site: s, .. } if *s == site))
            {
                let CtlEvent::Recovered { session, .. } = self.events.remove(pos) else {
                    unreachable!("matched above");
                };
                self.up[site.index()] = true;
                return Ok(session);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("recovery"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Bootstrap a physical site as the first operational member of its
    /// group after a total group failure (the paper's "last site to
    /// fail recovers first from its own state").
    pub fn bootstrap(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<SessionNumber, ControlError> {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::Mgmt(Command::Bootstrap));
        let until = Instant::now() + deadline;
        loop {
            if let Some(pos) = self
                .events
                .iter()
                .position(|e| matches!(e, CtlEvent::Recovered { site: s, .. } if *s == site))
            {
                let CtlEvent::Recovered { session, .. } = self.events.remove(pos) else {
                    unreachable!("matched above");
                };
                self.up[site.index()] = true;
                return Ok(session);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("bootstrap"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Fetch a physical site's metrics exposition text.
    pub fn fetch_metrics(
        &mut self,
        site: SiteId,
        deadline: Duration,
    ) -> Result<String, ControlError> {
        let group = self.spec.local_site(site).0;
        self.send(site, group, Message::MetricsRequest);
        let until = Instant::now() + deadline;
        loop {
            if let Some(pos) = self
                .events
                .iter()
                .position(|e| matches!(e, CtlEvent::Metrics { site: s, .. } if *s == site))
            {
                let CtlEvent::Metrics { text, .. } = self.events.remove(pos) else {
                    unreachable!("matched above");
                };
                return Ok(text);
            }
            if Instant::now() >= until {
                return Err(ControlError::Timeout("metrics response"));
            }
            self.pump(Duration::from_millis(10))?;
            self.tick();
        }
    }

    /// Assemble the client-observed histogram state as a
    /// [`miniraid_obs::ShardedSnapshot`]: per-group single-shard commit
    /// latency in each shard's slot, plus the top-level cross-shard
    /// commit histogram.
    pub fn sharded_snapshot(&self) -> miniraid_obs::ShardedSnapshot {
        let mut snap = miniraid_obs::ShardedSnapshot::new(self.spec.n_groups as usize);
        for (shard, hist) in self.per_group_commit_latency.iter().enumerate() {
            snap.per_shard[shard].commit_latency.merge(hist);
        }
        snap.cross_commit.merge(&self.cross_commit_latency);
        snap
    }

    /// Scrape every physical site's metrics exposition and fold its
    /// engine counters into per-shard [`miniraid_obs::ShardEngineStats`]
    /// aggregates (inflight high-water takes the member max, event
    /// counters sum). `deadline` bounds each individual scrape.
    pub fn scrape_shard_engine_stats(
        &mut self,
        deadline: Duration,
    ) -> Result<Vec<miniraid_obs::ShardEngineStats>, ControlError> {
        let mut stats =
            vec![miniraid_obs::ShardEngineStats::default(); self.spec.n_groups as usize];
        for i in 0..self.spec.n_physical_sites() {
            let site = SiteId(i);
            let (group, _) = self.spec.local_site(site);
            let text = self.fetch_metrics(site, deadline)?;
            let s = &mut stats[group as usize];
            s.inflight_high_water = s
                .inflight_high_water
                .max(parse_exposition_counter(&text, "miniraid_inflight_high_water").unwrap_or(0));
            s.lock_waits += parse_exposition_counter(&text, "miniraid_lock_waits").unwrap_or(0);
            s.lock_grants_immediate +=
                parse_exposition_counter(&text, "miniraid_lock_grants_immediate").unwrap_or(0);
            s.wal_fsyncs += parse_exposition_counter(&text, "miniraid_wal_fsyncs").unwrap_or(0);
            s.wal_commit_records +=
                parse_exposition_counter(&text, "miniraid_wal_commit_records").unwrap_or(0);
        }
        Ok(stats)
    }

    /// [`sharded_snapshot`](Self::sharded_snapshot) plus a live scrape
    /// of every member's engine counters into the snapshot's per-shard
    /// `engine` slots — ready for `miniraid_obs::expo::render_sharded`.
    pub fn sharded_snapshot_with_engine(
        &mut self,
        deadline: Duration,
    ) -> Result<miniraid_obs::ShardedSnapshot, ControlError> {
        let engine = self.scrape_shard_engine_stats(deadline)?;
        let mut snap = self.sharded_snapshot();
        snap.engine = engine;
        Ok(snap)
    }

    /// Terminate every site (clean shutdown).
    pub fn terminate_all(&mut self) {
        for i in 0..self.spec.n_physical_sites() {
            let site = SiteId(i);
            let group = self.spec.local_site(site).0;
            self.send(site, group, Message::Mgmt(Command::Terminate));
        }
    }

    // ---- internals ---------------------------------------------------

    /// Emit a client-side coordination milestone for `txn`, stamped with
    /// its trace id (no-op when the tracer is disabled).
    fn emit(&self, txn: TxnId, kind: EventKind) {
        if self.tracer.is_enabled() {
            let trace = self.traces.get(&txn).copied().unwrap_or(0);
            self.tracer.emit_traced(Some(txn), trace, kind);
        }
    }

    /// Wrap `msg` for `group` and send it to physical site `to`. A
    /// message belonging to a traced transaction is additionally
    /// wrapped in [`Message::Traced`] (inside the shard envelope — the
    /// legal nesting is `ShardEnv { Traced { .. } }`), so the receiving
    /// site binds the transaction to its causal trace.
    fn send(&self, to: SiteId, group: u8, msg: Message) {
        let trace = msg
            .txn_id()
            .and_then(|t| self.traces.get(&t))
            .copied()
            .unwrap_or(0);
        let inner = if trace != 0 {
            Box::new(Message::Traced {
                trace,
                inner: Box::new(msg),
            })
        } else {
            Box::new(msg)
        };
        let _ = self.transport.send(
            to,
            &Message::ShardEnv {
                shard: group,
                inner,
            },
        );
    }

    /// Round-robin over a group's members, preferring sites the client
    /// believes are up. Falls back to the cursor site when the whole
    /// group looks down (the engine's own SiteNotOperational abort then
    /// reports the truth).
    fn pick_coordinator(&mut self, group: u8) -> SiteId {
        let spg = self.spec.sites_per_group;
        let start = self.rr[group as usize];
        self.rr[group as usize] = (start + 1) % spg;
        for k in 0..spg {
            let local = (start + k) % spg;
            let phys = self.spec.physical_site(group, SiteId(local));
            if self.up[phys.index()] {
                return phys;
            }
        }
        self.spec.physical_site(group, SiteId(start))
    }

    /// Drain the inbox: block up to `slice` for the first message, then
    /// take whatever else already arrived.
    fn pump(&mut self, slice: Duration) -> Result<(), ControlError> {
        match self.mailbox.recv_timeout(slice) {
            Ok((from, msg)) => self.process(from, msg),
            Err(RecvError::Timeout) => return Ok(()),
            Err(RecvError::Disconnected) => return Err(ControlError::Disconnected),
        }
        loop {
            match self.mailbox.try_recv() {
                Ok((from, msg)) => self.process(from, msg),
                Err(RecvError::Timeout) => return Ok(()),
                Err(RecvError::Disconnected) => return Err(ControlError::Disconnected),
            }
        }
    }

    fn process(&mut self, from: SiteId, msg: Message) {
        let (group, msg) = match msg {
            Message::ShardEnv { shard, inner } => (shard, *inner),
            other if from.index() < self.spec.n_physical_sites() as usize => {
                (self.spec.local_site(from).0, other)
            }
            _ => return,
        };
        // Sites wrap frames of traced transactions; the envelope is
        // transparent to the control plane.
        let msg = match msg {
            Message::Traced { inner, .. } => *inner,
            other => other,
        };
        let now = Instant::now();
        match msg {
            Message::MgmtReport(report) => {
                if report.outcome.is_committed()
                    && from.index() < self.spec.n_physical_sites() as usize
                {
                    self.last_commit_coord[group as usize] = Some(from);
                }
                if let Some(single) = self.singles.remove(&report.txn) {
                    self.traces.remove(&report.txn);
                    if report.outcome.is_committed() {
                        let micros = now.duration_since(single.started).as_micros() as u64;
                        self.single_commit_latency.record(micros);
                        self.per_group_commit_latency[single.group as usize].record(micros);
                    }
                    let mut read_results: Vec<(ItemId, ItemValue)> = report
                        .read_results
                        .iter()
                        .map(|(i, v)| (self.spec.globalize(single.group, *i), *v))
                        .collect();
                    read_results.sort_by_key(|(i, _)| *i);
                    self.finished.insert(
                        report.txn,
                        ShardedReport {
                            txn: report.txn,
                            cross_shard: false,
                            outcome: report.outcome,
                            read_results,
                        },
                    );
                } else if self.xcoord.phase(report.txn).is_some() {
                    let actions = self.xcoord.on_branch_report(
                        group,
                        report.txn,
                        report.outcome.is_committed(),
                        &report.read_results,
                    );
                    self.perform(actions, now);
                }
                // Reports for unknown ids are late duplicates from
                // re-drives of already-finished transactions: drop.
            }
            Message::ShardVote { txn, ok } => {
                self.emit(txn, EventKind::XVote { shard: group, ok });
                let actions = self.xcoord.on_vote(group, txn, ok);
                self.perform(actions, now);
            }
            Message::MgmtRecovered { session } => {
                self.events.push(CtlEvent::Recovered {
                    site: from,
                    session,
                });
            }
            Message::MetricsResponse { text } => {
                self.events.push(CtlEvent::Metrics { site: from, text });
            }
            // Data-recovery announcements and anything else the control
            // plane doesn't wait on.
            _ => {}
        }
    }

    fn perform(&mut self, actions: Vec<XAction>, now: Instant) {
        for action in actions {
            match action {
                XAction::Prepare { group, branch } => {
                    let coordinator = self.pick_coordinator(group);
                    self.emit(branch.id, EventKind::XPrepare { shard: group });
                    if let Some(state) = self.cross.get_mut(&branch.id) {
                        state.branch_coord.insert(group, coordinator);
                        // Re-drives start at the site after the original
                        // coordinator.
                        let local = self.spec.local_site(coordinator).1;
                        state
                            .cursor
                            .insert(group, (local.0 + 1) % self.spec.sites_per_group);
                    }
                    self.send(coordinator, group, Message::ShardPrepare { txn: branch });
                }
                XAction::Decide { group, txn, commit } => {
                    let first = match self.cross.get_mut(&txn) {
                        Some(state) if !state.decided => {
                            state.decided = true;
                            true
                        }
                        _ => false,
                    };
                    if first {
                        self.emit(txn, EventKind::XDecide { commit });
                    }
                    let target = self
                        .cross
                        .get(&txn)
                        .and_then(|s| s.branch_coord.get(&group))
                        .copied()
                        .unwrap_or_else(|| self.spec.physical_site(group, SiteId(0)));
                    self.send(target, group, Message::ShardDecide { txn, commit });
                }
                XAction::Finished {
                    txn,
                    committed,
                    read_results,
                } => {
                    self.traces.remove(&txn);
                    if let Some(state) = self.cross.remove(&txn) {
                        if committed {
                            self.cross_commit_latency
                                .record(now.duration_since(state.started).as_micros() as u64);
                        }
                    }
                    let outcome = if committed {
                        TxnOutcome::Committed
                    } else {
                        TxnOutcome::Aborted(AbortReason::GlobalAbort)
                    };
                    self.finished.insert(
                        txn,
                        ShardedReport {
                            txn,
                            cross_shard: true,
                            outcome,
                            read_results,
                        },
                    );
                }
            }
        }
    }

    /// Fire internal deadlines: vote timeouts (missing votes become
    /// no), and re-drive rounds for committed-but-unconfirmed branches.
    fn tick(&mut self) {
        let now = Instant::now();
        let ids: Vec<TxnId> = self.cross.keys().copied().collect();
        for txn in ids {
            match self.xcoord.phase(txn) {
                Some(XPhase::Voting) => {
                    let due = self.cross.get(&txn).is_some_and(|s| now >= s.vote_deadline);
                    if due {
                        let actions = self.xcoord.force_decision(txn);
                        self.perform(actions, now);
                    }
                }
                Some(XPhase::Committing) => {
                    let due = match self.cross.get_mut(&txn) {
                        Some(state) if now >= state.next_redrive => {
                            state.next_redrive = now + self.redrive_interval;
                            true
                        }
                        _ => false,
                    };
                    if due {
                        self.redrive(txn);
                    }
                }
                None => {
                    // Finished between collecting ids and now.
                }
            }
        }
    }

    /// One re-drive round for every unconfirmed branch of a committed
    /// transaction: repeat the commit decision to *every* group member
    /// (the parked coordinator, wherever it is, resumes and commits),
    /// and re-submit the branch's write residue to the next site in the
    /// group's rotation (repairing the case where the original
    /// coordinator died and its parked state is gone). Per-sender FIFO
    /// makes the decision arrive before the re-submission at that site,
    /// and both are idempotent.
    fn redrive(&mut self, txn: TxnId) {
        let targets = self.xcoord.redrive_targets(txn);
        for (group, residue) in targets {
            for member in self.spec.group_members(group) {
                self.send(member, group, Message::ShardDecide { txn, commit: true });
            }
            let spg = self.spec.sites_per_group;
            let local = match self.cross.get_mut(&txn) {
                Some(state) => {
                    let cur = state.cursor.entry(group).or_insert(0);
                    let local = *cur;
                    *cur = (*cur + 1) % spg;
                    local
                }
                None => 0,
            };
            let target = self.spec.physical_site(group, SiteId(local));
            self.send(target, group, Message::Mgmt(Command::Begin(residue)));
        }
    }
}

/// Find `name{...} value` (or `name value`) in a Prometheus-style text
/// exposition and return the value. Label sets are skipped, but a name
/// that merely shares a prefix (`foo_total` vs `foo`) never matches.
fn parse_exposition_counter(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = match rest.as_bytes().first() {
            Some(b'{') => {
                let close = rest.find('}')?;
                &rest[close + 1..]
            }
            Some(b' ') => rest,
            _ => return None,
        };
        rest.trim().parse::<u64>().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::parse_exposition_counter;

    #[test]
    fn exposition_counter_parsing() {
        let text = "\
# TYPE miniraid_lock_waits counter
miniraid_lock_waits{site=\"2\"} 7
# TYPE miniraid_lock_wait_us summary
miniraid_lock_wait_us{site=\"2\",quantile=\"0.5\"} 120
miniraid_inflight_high_water{site=\"2\"} 4
miniraid_cross_shard_commit_latency_us_count 3
";
        assert_eq!(
            parse_exposition_counter(text, "miniraid_lock_waits"),
            Some(7)
        );
        assert_eq!(
            parse_exposition_counter(text, "miniraid_inflight_high_water"),
            Some(4)
        );
        // Unlabeled form.
        assert_eq!(
            parse_exposition_counter(text, "miniraid_cross_shard_commit_latency_us_count"),
            Some(3)
        );
        // Prefix of a longer name must not match.
        assert_eq!(parse_exposition_counter(text, "miniraid_lock_wait_u"), None);
        assert_eq!(parse_exposition_counter(text, "miniraid_wal_fsyncs"), None);
    }
}
