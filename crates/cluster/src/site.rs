//! A database site as an OS thread: the sans-IO engine plus a real
//! transport, a mailbox, and a local timer wheel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use miniraid_core::engine::{Input, Output, SiteEngine, TimerId};
use miniraid_core::ids::{SiteId, TxnId};
use miniraid_core::messages::{Command, Message};
use miniraid_core::session::SiteStatus;
use miniraid_core::trace::EventKind;
use miniraid_net::{Mailbox, RecvError, Transport};
use miniraid_shard::{MapStore, XLogStore};
use miniraid_storage::DurableStore;

use crate::obs::{render_plain, SiteObs};

/// Real-time timer durations for a threaded deployment. Participant
/// timeouts exceed coordinator timeouts (see the simulator's
/// `TimingConfig` for the rationale).
#[derive(Debug, Clone, Copy)]
pub struct ClusterTiming {
    /// Coordinator waiting for phase-one acks.
    pub ack_timeout: Duration,
    /// Coordinator waiting for commit acks.
    pub commit_ack_timeout: Duration,
    /// Participant waiting for commit/abort.
    pub participant_timeout: Duration,
    /// Coordinator waiting for a copy response.
    pub copier_timeout: Duration,
    /// Coordinator waiting for a remote read response.
    pub read_timeout: Duration,
    /// Recovering site waiting for `RecoveryInfo`.
    pub recovery_timeout: Duration,
    /// Delay between batch copier rounds.
    pub batch_copier_delay: Duration,
}

impl Default for ClusterTiming {
    fn default() -> Self {
        ClusterTiming {
            ack_timeout: Duration::from_millis(150),
            commit_ack_timeout: Duration::from_millis(150),
            participant_timeout: Duration::from_millis(500),
            copier_timeout: Duration::from_millis(150),
            read_timeout: Duration::from_millis(150),
            recovery_timeout: Duration::from_millis(200),
            batch_copier_delay: Duration::from_millis(10),
        }
    }
}

impl ClusterTiming {
    fn duration(&self, id: TimerId) -> Duration {
        match id {
            TimerId::AckTimeout(_) => self.ack_timeout,
            TimerId::CommitAckTimeout(_) => self.commit_ack_timeout,
            TimerId::ParticipantTimeout(_) => self.participant_timeout,
            TimerId::CopierTimeout(_) => self.copier_timeout,
            TimerId::ReadTimeout(_) => self.read_timeout,
            TimerId::RecoveryInfoTimeout(_) => self.recovery_timeout,
            TimerId::BatchCopier => self.batch_copier_delay,
        }
    }
}

struct Armed(Instant, u64, TimerId);
impl PartialEq for Armed {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Armed {}
impl PartialOrd for Armed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Armed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Run one site until it terminates. Intended to be the body of a
/// dedicated thread (see `Cluster::launch`).
pub fn run_site<T: Transport, M: Mailbox>(
    engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    timing: ClusterTiming,
) {
    run_site_full(engine, transport, mailbox, manager, timing, None, None)
}

/// Like [`run_site`], with an optional WAL-backed durable store: every
/// `Output::Persist` is logged and fsynced before processing continues,
/// so a restarted process can preload the committed image (see
/// `Cluster::launch_durable`).
pub fn run_site_durable<T: Transport, M: Mailbox>(
    engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    timing: ClusterTiming,
    store: Option<DurableStore>,
) {
    run_site_full(engine, transport, mailbox, manager, timing, store, None)
}

/// Items hydrated per event-loop iteration while a restart image is
/// draining in the background (instant restart).
const HYDRATE_CHUNK: u32 = 256;

/// Durable-mode state carried by the site loop: the store plus the
/// group-commit machinery. Outbound messages that would announce a
/// not-yet-synced record are *held* here until the group fsync covering
/// it completes — a participant's ACK/vote thus waits on its group's
/// fsync, never on a private one.
struct DurableCtx {
    store: DurableStore,
    /// Messages held back until the next group fsync, per peer (FIFO
    /// order within a peer is preserved: once anything is held, all
    /// later sends queue behind it until the sync).
    held: Vec<(SiteId, Vec<Message>)>,
    /// Deadline for syncing a partial batch (armed when the first
    /// unsynced record starts waiting).
    linger_until: Option<Instant>,
    /// Sync as soon as this many commit records await one.
    batch: u32,
    /// Maximum wait for a partial batch.
    linger: Duration,
    /// Reused conversion buffers (`ItemId`-keyed engine output to
    /// `u32`-keyed storage input) — the commit hot path allocates
    /// nothing in steady state.
    write_scratch: Vec<(u32, miniraid_storage::ItemValue)>,
    lock_scratch: Vec<(u32, u64)>,
    /// Transactions whose commit records await the covering group
    /// fsync, in append order — each gets a `wal_fsync` trace event
    /// when the sync retires it.
    pending_txns: Vec<TxnId>,
}

impl DurableCtx {
    fn new(store: DurableStore, batch: u32, linger: Duration) -> DurableCtx {
        DurableCtx {
            store,
            held: Vec::new(),
            linger_until: None,
            batch: batch.max(1),
            linger,
            write_scratch: Vec::new(),
            lock_scratch: Vec::new(),
            pending_txns: Vec::new(),
        }
    }
}

/// Fsync the REDO log; on success emit one `wal_fsync` trace event per
/// commit record the sync durably retired (the tracer's registry stamps
/// each with its transaction's causal trace, so a covering group fsync
/// shows up inside the cross-shard span tree it unblocked).
fn sync_durable(
    engine: &SiteEngine,
    d: &mut DurableCtx,
) -> Result<(), miniraid_storage::StorageError> {
    let res = d.store.sync();
    if res.is_ok() {
        let retired = d.pending_txns.len() as u32;
        for txn in d.pending_txns.drain(..) {
            engine
                .tracer()
                .emit(Some(txn), EventKind::WalFsync { retired });
        }
    }
    res
}

/// Wrap an outbound message in [`Message::Traced`] when its transaction
/// is bound to a causal trace (one relaxed atomic load when no traces
/// are live, so untraced deployments pay essentially nothing).
fn wrap_traced(engine: &SiteEngine, msg: Message) -> Message {
    match msg.txn_id().map(|t| engine.tracer().trace_of(t)) {
        Some(trace) if trace != 0 => Message::Traced {
            trace,
            inner: Box::new(msg),
        },
        _ => msg,
    }
}

/// Send every queued frame, returning the inner buffers to the pool.
fn flush_outbound<T: Transport>(
    engine: &mut SiteEngine,
    transport: &T,
    list: &mut Vec<(SiteId, Vec<Message>)>,
    pool: &mut Vec<Vec<Message>>,
) {
    for (to, mut msgs) in list.drain(..) {
        if msgs.len() > 1 {
            engine.note_batch_frame(msgs.len());
        }
        let _ = transport.send_batch(to, &msgs);
        msgs.clear();
        pool.push(msgs);
    }
}

/// Discard queued frames (durable failure: nothing may announce state
/// that didn't reach stable storage).
fn discard_outbound(list: &mut Vec<(SiteId, Vec<Message>)>, pool: &mut Vec<Vec<Message>>) {
    for (_, mut msgs) in list.drain(..) {
        msgs.clear();
        pool.push(msgs);
    }
}

/// A durable write or sync failed: the site goes down instead of
/// panicking. Held and pending outbound messages are discarded, the
/// store handle is dropped, and the loop keeps serving metrics scrapes
/// — the observer sits outside the failure model.
fn fail_durable(
    engine: &mut SiteEngine,
    durable: &mut Option<DurableCtx>,
    timers: &mut BinaryHeap<Reverse<Armed>>,
    manager: SiteId,
    outbound: &mut Vec<(SiteId, Vec<Message>)>,
    pool: &mut Vec<Vec<Message>>,
    err: miniraid_storage::StorageError,
) {
    eprintln!(
        "site {}: durable write failed ({err}); transitioning to down",
        engine.id().0
    );
    if let Some(d) = durable.as_mut() {
        discard_outbound(&mut d.held, pool);
    }
    discard_outbound(outbound, pool);
    *durable = None;
    timers.clear();
    let _ = engine.handle_owned(Input::Deliver {
        from: manager,
        msg: Message::Mgmt(Command::Fail),
    });
}

/// Serve a metrics scrape without touching the engine state machine:
/// the reply goes straight out on the transport. Transport-layer and
/// WAL counters are folded into the engine's metrics just before
/// rendering.
fn serve_metrics<T: Transport>(
    engine: &mut SiteEngine,
    transport: &T,
    obs: &Option<SiteObs>,
    durable: &Option<DurableCtx>,
    map: &Option<MapStore>,
    from: SiteId,
) {
    let stats = transport.stats();
    engine.note_transport(stats.retransmits, stats.dup_drops, stats.reconnects);
    if let Some(d) = durable {
        let c = d.store.counters();
        engine.note_wal(c.fsyncs(), c.commits(), c.records());
    }
    let mut text = match obs {
        Some(obs) => obs.render(engine),
        None => render_plain(engine),
    };
    if let Some(store) = map {
        text.push_str(&miniraid_obs::expo::render_reshard(
            engine.id(),
            store.epoch(),
            store.migrating_items(),
            store.copy_installs(),
        ));
    }
    let _ = transport.send(from, &Message::MetricsResponse { text });
}

/// Serve the site's `XDecisionLog` replica without touching the engine
/// state machine: like metrics scrapes, decision-log appends and
/// queries are answered even while the site is "down" — the log plays
/// the role of the site's stable storage, which survives an engine
/// crash the way the WAL does, and the quorum rule covers replicas
/// whose whole host is unreachable.
fn serve_xlog<T: Transport>(transport: &T, xlog: &mut XLogStore, from: SiteId, msg: Message) {
    let reply = match msg {
        Message::XLogAppend { epoch, record } => xlog.append(epoch, record),
        Message::XLogQuery { epoch } => xlog.query(epoch),
        _ => return,
    };
    let _ = transport.send(from, &reply);
}

/// Serve the site's shard-map store without touching the engine state
/// machine. Map installs and queries are answered even while the site
/// is "down" (like metrics scrapes and the decision log — the map is
/// routing state, not database state), `XLogRetire` garbage-collects
/// the decision-log replica once a cross-shard outcome is fully
/// acknowledged, and `Mgmt(Begin)` frames pass the admission gate: a
/// transaction routed under a stale or wrong-owner map is answered
/// with `WrongEpoch` instead of ever reaching the engine, which is
/// what makes stale-map coordinators unable to commit after a cutover.
///
/// Returns the message the engine should still see, or `None` when it
/// was fully handled (or rejected) here.
fn gate_map<T: Transport>(
    transport: &T,
    map: &mut Option<MapStore>,
    xlog: &mut XLogStore,
    from: SiteId,
    msg: Message,
) -> Option<Message> {
    match msg {
        Message::MapChange {
            epoch,
            assignment,
            migrating,
        } => {
            if let Some(store) = map.as_mut() {
                let ack = store.install(epoch, assignment, migrating);
                let _ = transport.send(from, &ack);
            }
            None
        }
        Message::MapQuery => {
            if let Some(store) = map.as_ref() {
                let _ = transport.send(from, &store.serve_query());
            }
            None
        }
        Message::XLogRetire { epoch, txn } => {
            // GC is fenced like appends: only the current coordinator
            // epoch (or a newer one) may drop a decision record.
            if epoch >= xlog.highest_epoch() {
                xlog.retire(txn);
            }
            None
        }
        msg @ (Message::Mgmt(Command::Begin(_)) | Message::Traced { .. }) => {
            let Some(store) = map.as_mut() else {
                return Some(msg);
            };
            let txn = match &msg {
                Message::Mgmt(Command::Begin(txn)) => Some(txn),
                Message::Traced { inner, .. } => match inner.as_ref() {
                    Message::Mgmt(Command::Begin(txn)) => Some(txn),
                    _ => None,
                },
                _ => None,
            };
            match txn {
                Some(t) => match store.admits(t) {
                    Ok(()) => Some(msg),
                    Err(epoch) => {
                        let _ = transport.send(from, &Message::WrongEpoch { txn: t.id, epoch });
                        None
                    }
                },
                None => Some(msg),
            }
        }
        msg => Some(msg),
    }
}

/// Full-featured site loop: optional durable store, optional
/// observability ([`SiteObs`]). When observability is attached the site
/// answers [`Message::MetricsRequest`] with a Prometheus-style text
/// exposition of its counters and latency histograms; without it, with
/// counters only. Metrics requests are answered even while the site is
/// "down" — the observer is outside the failure model, like the paper's
/// measurement harness.
pub fn run_site_full<T: Transport, M: Mailbox>(
    engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    timing: ClusterTiming,
    store: Option<DurableStore>,
    obs: Option<SiteObs>,
) {
    run_site_mapped(
        engine, transport, mailbox, manager, timing, store, obs, None,
    )
}

/// [`run_site_full`] plus a live shard-map store: the site answers
/// `MapChange`/`MapQuery`, GC's its decision-log replica on
/// `XLogRetire`, gates every incoming `Mgmt(Begin)` through the
/// installed map (stale routes bounce with `WrongEpoch`), and appends
/// the `miniraid_reshard_*` family to its metrics exposition. Used by
/// mapped (live-reshardable) deployments — see
/// `Cluster::launch_mapped_faulty`.
#[allow(clippy::too_many_arguments)]
pub fn run_site_mapped<T: Transport, M: Mailbox>(
    mut engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    timing: ClusterTiming,
    store: Option<DurableStore>,
    obs: Option<SiteObs>,
    map: Option<MapStore>,
) {
    let mut timers: BinaryHeap<Reverse<Armed>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut out: Vec<Output> = Vec::new();
    // This site's XDecisionLog replica (populated only when it belongs
    // to the designated log group of a sharded topology).
    let mut xlog = XLogStore::new();
    let mut map = map;
    // Per-peer outbound frames under construction, and the buffer pool
    // they recycle through (no per-drain allocation in steady state).
    let mut outbound: Vec<(SiteId, Vec<Message>)> = Vec::new();
    let mut pool: Vec<Vec<Message>> = Vec::new();
    let mut durable = store.map(|s| {
        let cfg = engine.config();
        DurableCtx::new(
            s,
            cfg.group_commit_batch,
            Duration::from_micros(cfg.group_commit_linger_us),
        )
    });

    loop {
        // Background replay after an instant restart: hydrate a chunk of
        // the engine's (and store's) restart image per iteration, and
        // keep iterations short until replay completes.
        let hydrating = {
            let mut pending = 0u32;
            if engine.hydration_remaining() > 0 {
                pending += engine.hydrate_step(HYDRATE_CHUNK);
            }
            if let Some(d) = durable.as_mut() {
                if d.store.pending_items() > 0 {
                    pending += d.store.hydrate_step(HYDRATE_CHUNK).unwrap_or(0);
                }
            }
            pending > 0
        };

        // Wait until the next timer deadline (or a polling default),
        // capped by the group-commit linger and by background replay.
        let mut wait = timers
            .peek()
            .map(|Reverse(Armed(due, _, _))| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        if let Some(until) = durable.as_ref().and_then(|d| d.linger_until) {
            wait = wait.min(until.saturating_duration_since(Instant::now()));
        }
        if hydrating {
            wait = wait.min(Duration::from_millis(1));
        }

        // Drain the whole mailbox this iteration: block for the first
        // message, then take whatever else is already queued. All outputs
        // accumulate so sends to the same peer coalesce into one frame —
        // and commit records from every transaction in the drain share
        // one group fsync.
        out.clear();
        let mut drained = false;
        match mailbox.recv_timeout(wait) {
            Ok((from, msg)) => {
                drained = true;
                match msg {
                    Message::MetricsRequest => {
                        serve_metrics(&mut engine, &transport, &obs, &durable, &map, from)
                    }
                    msg @ (Message::XLogAppend { .. } | Message::XLogQuery { .. }) => {
                        serve_xlog(&transport, &mut xlog, from, msg)
                    }
                    msg => {
                        if let Some(msg) = gate_map(&transport, &mut map, &mut xlog, from, msg) {
                            engine.handle(Input::Deliver { from, msg }, &mut out)
                        }
                    }
                }
                loop {
                    match mailbox.try_recv() {
                        Ok((from, Message::MetricsRequest)) => {
                            serve_metrics(&mut engine, &transport, &obs, &durable, &map, from)
                        }
                        Ok((
                            from,
                            msg @ (Message::XLogAppend { .. } | Message::XLogQuery { .. }),
                        )) => serve_xlog(&transport, &mut xlog, from, msg),
                        Ok((from, msg)) => {
                            if let Some(msg) = gate_map(&transport, &mut map, &mut xlog, from, msg)
                            {
                                engine.handle(Input::Deliver { from, msg }, &mut out)
                            }
                        }
                        Err(RecvError::Timeout) => break,
                        Err(RecvError::Disconnected) => return,
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Disconnected) => return,
        }
        if drained {
            perform(
                &mut engine,
                &transport,
                manager,
                &timing,
                &mut timers,
                &mut timer_seq,
                &mut out,
                &mut durable,
                &mut outbound,
                &mut pool,
            );
        }

        // Fire due timers.
        let now = Instant::now();
        while let Some(Reverse(Armed(due, _, _))) = timers.peek() {
            if *due > now {
                break;
            }
            let Reverse(Armed(_, _, id)) = timers.pop().expect("peeked");
            out.clear();
            engine.handle(Input::Timer(id), &mut out);
            perform(
                &mut engine,
                &transport,
                manager,
                &timing,
                &mut timers,
                &mut timer_seq,
                &mut out,
                &mut durable,
                &mut outbound,
                &mut pool,
            );
        }

        // Linger expired: fsync the partial group and release what it
        // was holding back.
        if let Some(d) = durable.as_mut() {
            if d.linger_until.is_some_and(|until| Instant::now() >= until) {
                match sync_durable(&engine, d) {
                    Ok(()) => {
                        d.linger_until = None;
                        flush_outbound(&mut engine, &transport, &mut d.held, &mut pool);
                    }
                    Err(err) => fail_durable(
                        &mut engine,
                        &mut durable,
                        &mut timers,
                        manager,
                        &mut outbound,
                        &mut pool,
                        err,
                    ),
                }
            }
        }

        if engine.status() == SiteStatus::Terminating {
            // Clean shutdown: make the tail durable, then release
            // anything still held.
            if let Some(d) = durable.as_mut() {
                if sync_durable(&engine, d).is_ok() {
                    flush_outbound(&mut engine, &transport, &mut d.held, &mut pool);
                }
            }
            if let Some(obs) = &obs {
                obs.flush();
            }
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn perform<T: Transport>(
    engine: &mut SiteEngine,
    transport: &T,
    manager: SiteId,
    timing: &ClusterTiming,
    timers: &mut BinaryHeap<Reverse<Armed>>,
    timer_seq: &mut u64,
    out: &mut Vec<Output>,
    durable: &mut Option<DurableCtx>,
    outbound: &mut Vec<(SiteId, Vec<Message>)>,
    pool: &mut Vec<Vec<Message>>,
) {
    // Sends are grouped per destination and flushed as one frame each
    // (`Transport::send_batch`), preserving per-peer FIFO order. Persist
    // outputs only *append* REDO records; the fsync is deferred to the
    // group-commit decision below, and every message queued in this
    // drain is held until the fsync that covers those records — so
    // durability still precedes every message that announces it.
    let mut persist_error: Option<miniraid_storage::StorageError> = None;
    for output in out.drain(..) {
        if persist_error.is_some() {
            break;
        }
        let mut queue =
            |to: SiteId, msg: Message| match outbound.iter_mut().find(|(peer, _)| *peer == to) {
                Some((_, msgs)) => msgs.push(msg),
                None => {
                    let mut msgs = pool.pop().unwrap_or_default();
                    msgs.push(msg);
                    outbound.push((to, msgs));
                }
            };
        match output {
            Output::Persist {
                txn,
                writes,
                faillocks,
            } => {
                if let Some(d) = durable.as_mut() {
                    d.write_scratch.clear();
                    d.write_scratch
                        .extend(writes.iter().map(|(item, v)| (item.0, *v)));
                    d.lock_scratch.clear();
                    d.lock_scratch
                        .extend(faillocks.iter().map(|(item, w)| (item.0, *w)));
                    // One self-contained REDO record carries the write
                    // set and its fail-lock words; lock-only traffic
                    // (e.g. clears) rides a standalone record. Neither
                    // forces an fsync of its own.
                    let res = if d.write_scratch.is_empty() {
                        d.store.log_faillocks(&d.lock_scratch)
                    } else {
                        d.pending_txns.push(txn);
                        d.store
                            .commit_with_locks(txn.0, &d.write_scratch, &d.lock_scratch)
                    };
                    if let Err(err) = res {
                        persist_error = Some(err);
                    } else if d.store.pending_commits() >= d.batch {
                        // The group is full: fsync right away (with
                        // `batch = 1` this is the one-fsync-per-commit
                        // baseline discipline). Held messages are
                        // released by the end-of-drain policy below.
                        if let Err(err) = sync_durable(engine, d) {
                            persist_error = Some(err);
                        }
                    }
                }
            }
            Output::Send { to, msg } => queue(to, wrap_traced(engine, msg)),
            Output::SetTimer(id) => {
                *timer_seq += 1;
                timers.push(Reverse(Armed(
                    Instant::now() + timing.duration(id),
                    *timer_seq,
                    id,
                )));
            }
            Output::Report(report) => {
                queue(manager, wrap_traced(engine, Message::MgmtReport(report)))
            }
            Output::BecameOperational { session } => {
                if let Some(d) = durable.as_mut() {
                    // Buffered append: the MgmtRecovered announcement
                    // below is held until the group fsync covers it.
                    if let Err(err) = d.store.log_session(session.0) {
                        persist_error = Some(err);
                        continue;
                    }
                }
                queue(manager, Message::MgmtRecovered { session });
            }
            Output::DataRecoveryComplete => {
                let session = engine.session();
                queue(manager, Message::MgmtDataRecovered { session });
            }
            Output::RecoveryFailed | Output::Work(_) => {} // Persist handled above.
        }
    }
    if let Some(err) = persist_error {
        fail_durable(engine, durable, timers, manager, outbound, pool, err);
        return;
    }

    // Group-commit decision. While records await their fsync, *every*
    // queued message is held (per-peer FIFO must not let a later message
    // overtake a held one); the group syncs when it reaches `batch`
    // commit records, and the linger deadline bounds how long a partial
    // group may wait.
    match durable.as_mut() {
        Some(d) if d.store.has_unsynced() => {
            if d.store.pending_commits() >= d.batch || d.linger.is_zero() {
                match sync_durable(engine, d) {
                    Ok(()) => {
                        d.linger_until = None;
                        flush_outbound(engine, transport, &mut d.held, pool);
                        flush_outbound(engine, transport, outbound, pool);
                    }
                    Err(err) => fail_durable(engine, durable, timers, manager, outbound, pool, err),
                }
            } else {
                for (to, mut msgs) in outbound.drain(..) {
                    match d.held.iter_mut().find(|(peer, _)| *peer == to) {
                        Some((_, held)) => {
                            held.append(&mut msgs);
                            pool.push(msgs);
                        }
                        None => d.held.push((to, msgs)),
                    }
                }
                if d.linger_until.is_none() {
                    d.linger_until = Some(Instant::now() + d.linger);
                }
            }
        }
        _ => {
            if let Some(d) = durable.as_mut() {
                // Nothing unsynced: anything still held is covered.
                flush_outbound(engine, transport, &mut d.held, pool);
            }
            flush_outbound(engine, transport, outbound, pool);
        }
    }
}
