//! A database site as an OS thread: the sans-IO engine plus a real
//! transport, a mailbox, and a local timer wheel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use miniraid_core::engine::{Input, Output, SiteEngine, TimerId};
use miniraid_core::ids::SiteId;
use miniraid_core::messages::{Command, Message};
use miniraid_core::session::SiteStatus;
use miniraid_net::{Mailbox, RecvError, Transport};
use miniraid_storage::DurableStore;

use crate::obs::{render_plain, SiteObs};

/// Real-time timer durations for a threaded deployment. Participant
/// timeouts exceed coordinator timeouts (see the simulator's
/// `TimingConfig` for the rationale).
#[derive(Debug, Clone, Copy)]
pub struct ClusterTiming {
    /// Coordinator waiting for phase-one acks.
    pub ack_timeout: Duration,
    /// Coordinator waiting for commit acks.
    pub commit_ack_timeout: Duration,
    /// Participant waiting for commit/abort.
    pub participant_timeout: Duration,
    /// Coordinator waiting for a copy response.
    pub copier_timeout: Duration,
    /// Coordinator waiting for a remote read response.
    pub read_timeout: Duration,
    /// Recovering site waiting for `RecoveryInfo`.
    pub recovery_timeout: Duration,
    /// Delay between batch copier rounds.
    pub batch_copier_delay: Duration,
}

impl Default for ClusterTiming {
    fn default() -> Self {
        ClusterTiming {
            ack_timeout: Duration::from_millis(150),
            commit_ack_timeout: Duration::from_millis(150),
            participant_timeout: Duration::from_millis(500),
            copier_timeout: Duration::from_millis(150),
            read_timeout: Duration::from_millis(150),
            recovery_timeout: Duration::from_millis(200),
            batch_copier_delay: Duration::from_millis(10),
        }
    }
}

impl ClusterTiming {
    fn duration(&self, id: TimerId) -> Duration {
        match id {
            TimerId::AckTimeout(_) => self.ack_timeout,
            TimerId::CommitAckTimeout(_) => self.commit_ack_timeout,
            TimerId::ParticipantTimeout(_) => self.participant_timeout,
            TimerId::CopierTimeout(_) => self.copier_timeout,
            TimerId::ReadTimeout(_) => self.read_timeout,
            TimerId::RecoveryInfoTimeout(_) => self.recovery_timeout,
            TimerId::BatchCopier => self.batch_copier_delay,
        }
    }
}

struct Armed(Instant, u64, TimerId);
impl PartialEq for Armed {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Armed {}
impl PartialOrd for Armed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Armed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Run one site until it terminates. Intended to be the body of a
/// dedicated thread (see `Cluster::launch`).
pub fn run_site<T: Transport, M: Mailbox>(
    engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    timing: ClusterTiming,
) {
    run_site_full(engine, transport, mailbox, manager, timing, None, None)
}

/// Like [`run_site`], with an optional WAL-backed durable store: every
/// `Output::Persist` is logged and fsynced before processing continues,
/// so a restarted process can preload the committed image (see
/// `Cluster::launch_durable`).
pub fn run_site_durable<T: Transport, M: Mailbox>(
    engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    timing: ClusterTiming,
    store: Option<DurableStore>,
) {
    run_site_full(engine, transport, mailbox, manager, timing, store, None)
}

/// Full-featured site loop: optional durable store, optional
/// observability ([`SiteObs`]). When observability is attached the site
/// answers [`Message::MetricsRequest`] with a Prometheus-style text
/// exposition of its counters and latency histograms; without it, with
/// counters only. Metrics requests are answered even while the site is
/// "down" — the observer is outside the failure model, like the paper's
/// measurement harness.
pub fn run_site_full<T: Transport, M: Mailbox>(
    mut engine: SiteEngine,
    transport: T,
    mailbox: M,
    manager: SiteId,
    timing: ClusterTiming,
    mut store: Option<DurableStore>,
    obs: Option<SiteObs>,
) {
    let mut timers: BinaryHeap<Reverse<Armed>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut out: Vec<Output> = Vec::new();

    // Serve a metrics scrape without touching the engine state machine:
    // the reply goes straight out on the transport. Transport-layer
    // counters (retransmits, duplicate drops, reconnect attempts) are
    // folded into the engine's metrics just before rendering.
    let serve_metrics = |engine: &mut SiteEngine, from: SiteId| {
        let stats = transport.stats();
        engine.note_transport(stats.retransmits, stats.dup_drops, stats.reconnects);
        let text = match &obs {
            Some(obs) => obs.render(engine),
            None => render_plain(engine),
        };
        let _ = transport.send(from, &Message::MetricsResponse { text });
    };

    loop {
        // Wait until the next timer deadline (or a polling default).
        let wait = timers
            .peek()
            .map(|Reverse(Armed(due, _, _))| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));

        // Drain the whole mailbox this iteration: block for the first
        // message, then take whatever else is already queued. All outputs
        // accumulate so sends to the same peer coalesce into one frame.
        out.clear();
        let mut drained = false;
        match mailbox.recv_timeout(wait) {
            Ok((from, msg)) => {
                drained = true;
                if matches!(msg, Message::MetricsRequest) {
                    serve_metrics(&mut engine, from);
                } else {
                    engine.handle(Input::Deliver { from, msg }, &mut out);
                }
                loop {
                    match mailbox.try_recv() {
                        Ok((from, Message::MetricsRequest)) => serve_metrics(&mut engine, from),
                        Ok((from, msg)) => engine.handle(Input::Deliver { from, msg }, &mut out),
                        Err(RecvError::Timeout) => break,
                        Err(RecvError::Disconnected) => return,
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Disconnected) => return,
        }
        if drained {
            perform(
                &mut engine,
                &transport,
                manager,
                &timing,
                &mut timers,
                &mut timer_seq,
                &mut out,
                &mut store,
            );
        }

        // Fire due timers.
        let now = Instant::now();
        while let Some(Reverse(Armed(due, _, _))) = timers.peek() {
            if *due > now {
                break;
            }
            let Reverse(Armed(_, _, id)) = timers.pop().expect("peeked");
            out.clear();
            engine.handle(Input::Timer(id), &mut out);
            perform(
                &mut engine,
                &transport,
                manager,
                &timing,
                &mut timers,
                &mut timer_seq,
                &mut out,
                &mut store,
            );
        }

        if engine.status() == SiteStatus::Terminating {
            if let Some(obs) = &obs {
                obs.flush();
            }
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn perform<T: Transport>(
    engine: &mut SiteEngine,
    transport: &T,
    manager: SiteId,
    timing: &ClusterTiming,
    timers: &mut BinaryHeap<Reverse<Armed>>,
    timer_seq: &mut u64,
    out: &mut Vec<Output>,
    store: &mut Option<DurableStore>,
) {
    // Sends are grouped per destination and flushed as one frame each at
    // the end (`Transport::send_batch`), preserving per-peer FIFO order.
    // Persist outputs are fsynced inline, so durability still precedes
    // every message that announces it. If a durable write fails the site
    // goes down instead of panicking: the drain's outbound messages are
    // discarded (nothing announces state that didn't reach stable
    // storage), the store handle is dropped, and the loop keeps serving
    // metrics scrapes — the observer sits outside the failure model.
    let mut outbound: Vec<(SiteId, Vec<Message>)> = Vec::new();
    let mut queue =
        |to: SiteId, msg: Message| match outbound.iter_mut().find(|(peer, _)| *peer == to) {
            Some((_, msgs)) => msgs.push(msg),
            None => outbound.push((to, vec![msg])),
        };
    let mut persist_error: Option<miniraid_storage::StorageError> = None;
    for output in out.drain(..) {
        if persist_error.is_some() {
            break;
        }
        match output {
            Output::Persist {
                txn,
                writes,
                faillocks,
            } => {
                if let Some(store) = store.as_mut() {
                    let raw: Vec<(u32, miniraid_storage::ItemValue)> =
                        writes.iter().map(|(item, v)| (item.0, *v)).collect();
                    if !raw.is_empty() {
                        if let Err(err) = store.commit(txn.0, &raw) {
                            persist_error = Some(err);
                            continue;
                        }
                    }
                    let words: Vec<(u32, u64)> =
                        faillocks.iter().map(|(item, w)| (item.0, *w)).collect();
                    if let Err(err) = store.log_faillocks(&words) {
                        persist_error = Some(err);
                    }
                }
            }
            Output::Send { to, msg } => queue(to, msg),
            Output::SetTimer(id) => {
                *timer_seq += 1;
                timers.push(Reverse(Armed(
                    Instant::now() + timing.duration(id),
                    *timer_seq,
                    id,
                )));
            }
            Output::Report(report) => queue(manager, Message::MgmtReport(report)),
            Output::BecameOperational { session } => {
                if let Some(store) = store.as_mut() {
                    if let Err(err) = store.log_session(session.0) {
                        persist_error = Some(err);
                        continue;
                    }
                }
                queue(manager, Message::MgmtRecovered { session });
            }
            Output::DataRecoveryComplete => {
                let session = engine.session();
                queue(manager, Message::MgmtDataRecovered { session });
            }
            Output::RecoveryFailed | Output::Work(_) => {} // Persist handled above.
        }
    }
    if let Some(err) = persist_error {
        eprintln!(
            "site {}: durable write failed ({err}); transitioning to down",
            engine.id().0
        );
        *store = None;
        timers.clear();
        let _ = engine.handle_owned(Input::Deliver {
            from: manager,
            msg: Message::Mgmt(Command::Fail),
        });
        return;
    }
    for (to, msgs) in outbound {
        if msgs.len() > 1 {
            engine.note_batch_frame(msgs.len());
        }
        let _ = transport.send_batch(to, &msgs);
    }
}
