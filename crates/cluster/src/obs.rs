//! Site-side observability wiring for the threaded deployment: attach a
//! tracer (latency hub plus optional JSONL trace file) to an engine and
//! answer metrics exposition requests over the normal transport.

use std::path::Path;
use std::sync::Arc;

use miniraid_core::engine::SiteEngine;
use miniraid_core::trace::{SystemClock, TraceSink, Tracer};
use miniraid_obs::json::JsonlSink;
use miniraid_obs::sink::TeeSink;
use miniraid_obs::{expo, MetricsHub};

/// Observability state for one running site: the latency hub folded from
/// the engine's event stream, and the JSONL sink (if tracing to a file)
/// so it can be flushed at shutdown.
pub struct SiteObs {
    hub: Arc<MetricsHub>,
    trace: Option<Arc<JsonlSink>>,
}

impl SiteObs {
    /// Install a tracer on `engine` that feeds a fresh [`MetricsHub`],
    /// and — when `trace_path` is given — also appends every event to a
    /// JSONL trace file at that path. Uses the wall clock, so traces from
    /// different sites of one cluster share a timebase.
    pub fn attach(engine: &mut SiteEngine, trace_path: Option<&Path>) -> std::io::Result<SiteObs> {
        let hub = Arc::new(MetricsHub::new());
        let trace = match trace_path {
            Some(path) => Some(Arc::new(JsonlSink::create(path)?)),
            None => None,
        };
        let sink: Arc<dyn TraceSink> = match &trace {
            Some(jsonl) => Arc::new(TeeSink::new(vec![
                hub.clone() as Arc<dyn TraceSink>,
                jsonl.clone() as Arc<dyn TraceSink>,
            ])),
            None => hub.clone(),
        };
        engine.set_tracer(Tracer::new(engine.id(), Arc::new(SystemClock::new()), sink));
        Ok(SiteObs { hub, trace })
    }

    /// The latency hub fed by this site's tracer.
    pub fn hub(&self) -> &Arc<MetricsHub> {
        &self.hub
    }

    /// Render the Prometheus-style exposition text for this site,
    /// status gauges (`miniraid_site_up`, `miniraid_site_session`)
    /// first so a live health view can tell a down site from a live one.
    pub fn render(&self, engine: &SiteEngine) -> String {
        expo::render_with_status(
            engine.id(),
            engine.is_up(),
            engine.session().0,
            engine.metrics(),
            Some(&self.hub.snapshot()),
        )
    }

    /// Flush the JSONL trace file, if any.
    pub fn flush(&self) {
        if let Some(trace) = &self.trace {
            let _ = trace.flush();
        }
    }
}

/// Exposition text for a site with no tracer attached: engine counters
/// only, no latency histograms.
pub fn render_plain(engine: &SiteEngine) -> String {
    expo::render_with_status(
        engine.id(),
        engine.is_up(),
        engine.session().0,
        engine.metrics(),
        None,
    )
}
