//! Chaos harness: randomized schedules of site kills, recoveries,
//! one-way partitions, and transport faults against a *live* cluster,
//! with continuous invariant checks.
//!
//! The schedule is drawn from a seeded RNG, so a violating run is
//! reproducible from one number. Every action and every observation is
//! appended to an in-memory JSONL trace; on violation the harness
//! reports the seed and the trace so the exact schedule can be replayed.
//!
//! Invariants checked while the schedule runs and at the end:
//!
//! 1. **No committed write is lost.** Once the managing client sees a
//!    commit report for a write of item `x`, every later committed read
//!    of `x` returns that value or a *newer* acceptable one (a write
//!    whose outcome report timed out is "in doubt" and stays acceptable
//!    — it may have committed inside the cluster).
//! 2. **All available copies converge.** After partitions heal and every
//!    site is failed-and-recovered, full-database reads through each
//!    site return identical `(version, data)` vectors, and each item's
//!    final value is acceptable to the oracle.
//! 3. **The observer stays served.** Metrics scrapes succeed throughout,
//!    even against sites that are down — the paper's measurement harness
//!    sits outside the failure model.
//!
//! Uniform 2PC decisions are implied by (1)+(2) for this closed-loop
//! driver: a split decision leaves one copy with a write the others
//! never apply, which the convergence check reports as divergence.
//!
//! Partitions are *full isolations* of a single site: every link to and
//! from the victim is blocked, which is the network analogue of the
//! paper's fail-stop site failure (the survivors detect it through 2PC
//! timeouts and set fail-locks — a different code path than a managed
//! `Fail` command). Arbitrary one-way partitions are deliberately *not*
//! scheduled: the paper's protocol assumes failure detection is
//! accurate, and a half-open link lets an excluded site keep serving
//! stale reads — a model violation, not a protocol bug (see DESIGN.md
//! §9). The `FaultTransport` still supports one-way blocks for targeted
//! tests of that very phenomenon.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use miniraid_core::config::ProtocolConfig;
use miniraid_core::error::AbortReason;
use miniraid_core::ids::{ItemId, SiteId};
use miniraid_core::messages::TxnOutcome;
use miniraid_core::ops::{Operation, Transaction};
use miniraid_core::trace::{ChaosAction, EventKind};
use miniraid_net::fault::{FaultControl, FaultPlan};
use miniraid_net::{Mailbox, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use miniraid_shard::{MigrationPlan, PlanOp, ShardMap, ShardSpec};

use crate::cluster::Cluster;
use crate::control::{ControlError, ManagingClient};
use crate::resharder::{ReshardKillPoint, ReshardStats, Resharder};
use crate::shard_client::{CoordKillPoint, ShardedClient};
use crate::site::ClusterTiming;

/// Knobs for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Master seed: drives the schedule RNG and the per-site fault RNGs.
    pub seed: u64,
    /// Schedule steps (each step is one action: a txn, a kill, a
    /// recovery, or a partition change).
    pub steps: u32,
    /// Database sites.
    pub n_sites: u8,
    /// Items per database copy.
    pub db_size: u32,
    /// Per-frame drop probability on every site's transport.
    pub drop: f64,
    /// Per-frame duplication probability.
    pub duplicate: f64,
    /// Layer the reliable session protocol over the faulty links. With
    /// faults on and this off, the run is the negative control: the
    /// paper's protocol assumes reliable delivery and is expected to
    /// violate convergence under loss.
    pub with_reliable: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 1,
            steps: 60,
            n_sites: 4,
            db_size: 16,
            drop: 0.10,
            duplicate: 0.05,
            with_reliable: true,
        }
    }
}

/// What one chaos run produced.
#[derive(Debug, Default)]
pub struct ChaosOutcome {
    /// Invariant violations, in discovery order. Empty means the run
    /// passed.
    pub violations: Vec<String>,
    /// JSONL trace of every action and observation.
    pub trace: Vec<String>,
    /// Writes the managing client saw commit.
    pub committed_writes: u32,
    /// Writes whose outcome report timed out (in doubt).
    pub in_doubt_writes: u32,
    /// Transactions the cluster aborted.
    pub aborted: u32,
    /// The converged database image `(item, version, data)`, when the
    /// convergence phase completed.
    pub final_db: Vec<(u32, u64, u64)>,
    /// Coordinator crashes injected (sharded runs with
    /// [`ShardChaosOptions::kill_coordinator`]; zero otherwise).
    pub coordinator_crashes: u64,
    /// In-doubt transactions adopted from the decision log by a
    /// successor coordinator.
    pub takeovers: u64,
    /// Takeover latency (crash to every orphan resolved), median, µs.
    pub takeover_p50_us: u64,
    /// Takeover latency, 99th percentile, µs.
    pub takeover_p99_us: u64,
    /// Copy legs the resharder installed (reshard runs; zero otherwise).
    pub items_migrated: u64,
    /// The shard-map epoch the cluster ended on (reshard runs).
    pub map_epoch: u64,
    /// `WrongEpoch` bounces the client retried (reshard runs).
    pub stale_bounces: u64,
    /// Times an abandoned resharder was resumed by a successor.
    pub resharder_resumes: u64,
}

impl ChaosOutcome {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The oracle's view of one item: the last write known committed, plus
/// every write whose outcome the managing client never learned. A read
/// returning anything outside this set — or the initial value after a
/// known commit — is a violation.
#[derive(Debug, Default, Clone)]
struct ItemOracle {
    last_committed: Option<(u64, u64)>,
    in_doubt: Vec<(u64, u64)>,
}

impl ItemOracle {
    fn acceptable(&self, version: u64, data: u64) -> bool {
        if version == 0 && data == 0 {
            return self.last_committed.is_none();
        }
        self.last_committed == Some((version, data)) || self.in_doubt.contains(&(version, data))
    }

    /// `acceptable`, widened for mapped-mode retries: a bounced write
    /// re-stamped with a fresh (later) transaction id may commit under
    /// a version the oracle never learned (the report itself can be
    /// lost to a kill). Harness write data is the *original* txn id —
    /// globally unique per logical write — so a value whose data
    /// matches an in-doubt write and whose version is no older than
    /// that write's original id can only be that write's re-stamped
    /// resolution.
    fn acceptable_retried(&self, version: u64, data: u64) -> bool {
        self.acceptable(version, data)
            || self
                .in_doubt
                .iter()
                .any(|&(v, d)| d == data && version >= v)
    }

    fn describe(&self) -> String {
        format!(
            "last_committed={:?} in_doubt={:?}",
            self.last_committed, self.in_doubt
        )
    }
}

const TXN_WAIT: Duration = Duration::from_secs(3);
const MGMT_WAIT: Duration = Duration::from_secs(5);

struct Harness<T: Transport, M: Mailbox> {
    client: ManagingClient<T, M>,
    controls: Vec<FaultControl>,
    oracle: HashMap<u32, ItemOracle>,
    /// Sites the harness believes are up (its own actions; the protocol
    /// may additionally consider a partitioned site down).
    up: Vec<bool>,
    /// Sites currently cut off from every peer (network-level failure).
    isolated: Vec<bool>,
    /// Coordinator of the most recent write the client saw commit — the
    /// bootstrap choice if the run ends in total failure (it participated
    /// in every commit before its own last one, so its fail-lock table
    /// and session vector are as complete as any site's).
    last_commit_coordinator: Option<u8>,
    outcome: ChaosOutcome,
    opts: ChaosOptions,
}

impl<T: Transport, M: Mailbox> Harness<T, M> {
    fn trace(&mut self, line: String) {
        self.outcome.trace.push(line);
    }

    fn violation(&mut self, step: u32, what: String) {
        self.outcome
            .trace
            .push(format!("{{\"step\":{step},\"violation\":\"{what}\"}}"));
        self.outcome.violations.push(format!("step {step}: {what}"));
    }

    /// Harvest outcome reports that arrived after their submitter gave
    /// up waiting: a late *abort* removes the write from the in-doubt
    /// set (the oracle gets stricter); a late commit leaves it
    /// acceptable.
    fn harvest_late_reports(&mut self) {
        for report in self.client.drain_reports() {
            if matches!(report.outcome, TxnOutcome::Aborted(_)) {
                for oracle in self.oracle.values_mut() {
                    oracle.in_doubt.retain(|(v, _)| *v != report.txn.0);
                }
            }
        }
    }

    fn run_write(&mut self, step: u32, rng: &mut StdRng) {
        let ups: Vec<u8> = (0..self.opts.n_sites)
            .filter(|i| self.up[*i as usize])
            .collect();
        let Some(&site) = ups.get(rng.random_range(0..ups.len())) else {
            return;
        };
        let item = rng.random_range(0..self.opts.db_size);
        let id = self.client.next_txn_id();
        let data = id.0; // unique payload: the txn id itself
        self.trace(format!(
            "{{\"step\":{step},\"action\":\"write\",\"site\":{site},\"item\":{item},\"txn\":{}}}",
            id.0
        ));
        let txn = Transaction::new(id, vec![Operation::Write(ItemId(item), data)]);
        match self.client.run_txn(SiteId(site), txn, TXN_WAIT) {
            Ok(report) => {
                let oracle = self.oracle.entry(item).or_default();
                if report.outcome.is_committed() {
                    oracle.last_committed = Some((id.0, data));
                    self.last_commit_coordinator = Some(site);
                    self.outcome.committed_writes += 1;
                    self.trace(format!(
                        "{{\"step\":{step},\"observed\":\"committed\",\"txn\":{}}}",
                        id.0
                    ));
                } else {
                    self.outcome.aborted += 1;
                    self.trace(format!(
                        "{{\"step\":{step},\"observed\":\"aborted\",\"txn\":{}}}",
                        id.0
                    ));
                }
            }
            Err(ControlError::Timeout(_)) => {
                // In doubt: it may yet commit inside the cluster.
                self.oracle
                    .entry(item)
                    .or_default()
                    .in_doubt
                    .push((id.0, data));
                self.outcome.in_doubt_writes += 1;
                self.trace(format!(
                    "{{\"step\":{step},\"observed\":\"in_doubt\",\"txn\":{}}}",
                    id.0
                ));
            }
            Err(ControlError::Disconnected) => {
                self.violation(step, "manager disconnected".into());
            }
        }
    }

    fn run_read(&mut self, step: u32, rng: &mut StdRng) {
        let ups: Vec<u8> = (0..self.opts.n_sites)
            .filter(|i| self.up[*i as usize])
            .collect();
        let Some(&site) = ups.get(rng.random_range(0..ups.len())) else {
            return;
        };
        let item = rng.random_range(0..self.opts.db_size);
        let id = self.client.next_txn_id();
        self.trace(format!(
            "{{\"step\":{step},\"action\":\"read\",\"site\":{site},\"item\":{item},\"txn\":{}}}",
            id.0
        ));
        let txn = Transaction::new(id, vec![Operation::Read(ItemId(item))]);
        match self.client.run_txn(SiteId(site), txn, TXN_WAIT) {
            Ok(report) if report.outcome.is_committed() => {
                let (version, data) = report
                    .read_results
                    .first()
                    .map(|(_, v)| (v.version, v.data))
                    .unwrap_or((0, 0));
                let oracle = self.oracle.entry(item).or_default().clone();
                if !oracle.acceptable(version, data) {
                    self.violation(
                        step,
                        format!(
                            "read of item {item} via site {site} returned \
                             version={version} data={data}, outside the \
                             acceptable set ({})",
                            oracle.describe()
                        ),
                    );
                }
            }
            Ok(_) => self.outcome.aborted += 1,
            Err(ControlError::Timeout(_)) => {
                self.trace(format!("{{\"step\":{step},\"observed\":\"read_timeout\"}}"));
            }
            Err(ControlError::Disconnected) => {
                self.violation(step, "manager disconnected".into());
            }
        }
    }

    /// Scrape a random site's metrics — works even against down sites.
    fn scrape(&mut self, step: u32, rng: &mut StdRng) {
        let site = rng.random_range(0..self.opts.n_sites);
        if self.client.fetch_metrics(SiteId(site), MGMT_WAIT).is_err() {
            self.violation(step, format!("metrics scrape of site {site} failed"));
        }
    }

    /// Re-derive every site's outbound block set from the `isolated`
    /// flags: the link i→j is blocked iff either endpoint is isolated.
    /// Computing the whole matrix (instead of editing blocks
    /// incrementally) means healing one site can never accidentally
    /// reopen links that belong to a *different* site's isolation.
    /// New blocks are installed before old ones are lifted, so no frame
    /// slips through mid-update.
    fn apply_blocks(&self) {
        for (i, control) in self.controls.iter().enumerate() {
            for peer in 0..self.opts.n_sites {
                if peer as usize == i {
                    continue;
                }
                if self.isolated[i] || self.isolated[peer as usize] {
                    control.block_to(SiteId(peer));
                } else {
                    control.unblock_to(SiteId(peer));
                }
            }
        }
    }

    /// Cut a site off from every peer: block its outbound links and
    /// every peer's link toward it. The survivors will detect the
    /// "failure" through their 2PC timeouts.
    fn isolate(&mut self, step: u32, site: u8) {
        self.isolated[site as usize] = true;
        self.apply_blocks();
        self.up[site as usize] = false;
        self.trace(format!(
            "{{\"step\":{step},\"action\":\"isolate\",\"site\":{site}}}"
        ));
    }

    /// Reconnect an isolated site and re-integrate it: its protocol
    /// state is arbitrary after the survivors excluded it, so it rejoins
    /// the way a restarted site does — fail, then recover. The fail is
    /// issued *before* the links reopen (management traffic bypasses the
    /// blocks): a still-Up site behind a partition holds a stale
    /// worldview, and letting it speak first can poison the survivors —
    /// its leftover 2PC state yields failure announcements carrying
    /// live session numbers that mark healthy sites down in everyone's
    /// vectors, and a later recovery may then pick the stale site as its
    /// state donor. A down engine ignores all non-management traffic, so
    /// failing first makes the rejoin indistinguishable from a crash.
    fn heal_isolation(&mut self, step: u32, site: u8) {
        self.client.fail(SiteId(site));
        std::thread::sleep(Duration::from_millis(50));
        self.isolated[site as usize] = false;
        self.apply_blocks();
        self.trace(format!(
            "{{\"step\":{step},\"action\":\"heal\",\"site\":{site}}}"
        ));
        match self.client.recover(SiteId(site), MGMT_WAIT) {
            Ok(_) => self.up[site as usize] = true,
            Err(ControlError::Timeout(_)) => {
                // Stays down; a later recover step or the convergence
                // phase retries.
                self.trace(format!(
                    "{{\"step\":{step},\"observed\":\"recover_timeout\",\"site\":{site}}}"
                ));
            }
            Err(ControlError::Disconnected) => {
                self.violation(step, "manager disconnected".into());
            }
        }
    }

    /// Heal everything, fail-and-recover every site (normalizing any
    /// divergent up/down perception the failures caused), then read
    /// the full database through every site and compare.
    fn converge(&mut self) {
        let step = self.opts.steps; // trace label for the final phase

        // Fail every still-isolated site *before* reconnecting it (same
        // rationale as `heal_isolation`: a stale-Up site speaking first
        // can poison the survivors' session vectors and get picked as a
        // recovery-state donor). Management commands bypass the blocks.
        for i in 0..self.opts.n_sites {
            if self.isolated[i as usize] {
                self.client.fail(SiteId(i));
            }
        }
        std::thread::sleep(Duration::from_millis(50));

        for flag in self.isolated.iter_mut() {
            *flag = false;
        }
        for control in &self.controls {
            control.unblock_all();
        }
        self.trace(format!("{{\"step\":{step},\"action\":\"heal_all\"}}"));
        // Let in-flight transactions resolve before normalizing.
        std::thread::sleep(Duration::from_millis(1200));
        self.harvest_late_reports();

        // First bring every down site back while the surviving up sites
        // can serve as state donors. (Failing a survivor first could
        // leave zero operational sites; recovery needs a donor.)
        let mut stuck: Vec<u8> = Vec::new();
        for i in 0..self.opts.n_sites {
            if self.up[i as usize] {
                continue;
            }
            match self.client.recover(SiteId(i), MGMT_WAIT) {
                Ok(session) => {
                    self.up[i as usize] = true;
                    self.trace(format!(
                        "{{\"step\":{step},\"action\":\"rejoin\",\"site\":{i},\"session\":{}}}",
                        session.0
                    ));
                }
                Err(ControlError::Timeout(_)) => stuck.push(i),
                Err(e) => {
                    self.violation(step, format!("site {i} failed to rejoin: {e}"));
                    return;
                }
            }
        }

        // A recovery that found no donor means the run ended in *total
        // failure*: under message loss, crossing failure announcements
        // can make the last two operational sites each exclude the other
        // — and the fail-stop step-down then takes both down, invisibly
        // to the harness's own up/down bookkeeping. The paper's answer
        // is that the last site to fail recovers first from its own
        // state. Fail everything (a no-op on already-down engines, and
        // the normalization pass below re-recovers every site anyway),
        // bootstrap the coordinator of the last committed write, and
        // retry the rejoins with it as the donor.
        if !stuck.is_empty() {
            for i in 0..self.opts.n_sites {
                self.client.fail(SiteId(i));
                self.up[i as usize] = false;
            }
            std::thread::sleep(Duration::from_millis(50));
            let seed_site = self.last_commit_coordinator.unwrap_or(0);
            match self.client.bootstrap(SiteId(seed_site), MGMT_WAIT) {
                Ok(session) => {
                    self.up[seed_site as usize] = true;
                    self.trace(format!(
                        "{{\"step\":{step},\"action\":\"bootstrap\",\"site\":{seed_site},\"session\":{}}}",
                        session.0
                    ));
                }
                Err(e) => {
                    self.violation(
                        step,
                        format!("total-failure bootstrap of site {seed_site} failed: {e}"),
                    );
                    return;
                }
            }
            for i in 0..self.opts.n_sites {
                if self.up[i as usize] {
                    continue;
                }
                match self.client.recover(SiteId(i), MGMT_WAIT) {
                    Ok(session) => {
                        self.up[i as usize] = true;
                        self.trace(format!(
                            "{{\"step\":{step},\"action\":\"rejoin\",\"site\":{i},\"session\":{}}}",
                            session.0
                        ));
                    }
                    Err(e) => {
                        self.violation(step, format!("site {i} failed to rejoin: {e}"));
                        return;
                    }
                }
            }
        }

        // Then cycle every site through fail + recover: each one rebuilds
        // its session vector and fail-lock table from an operational peer,
        // clearing any divergent up/down perception left by the schedule.
        for i in 0..self.opts.n_sites {
            self.client.fail(SiteId(i));
            std::thread::sleep(Duration::from_millis(50));
            match self.client.recover(SiteId(i), MGMT_WAIT) {
                Ok(session) => self.trace(format!(
                    "{{\"step\":{step},\"action\":\"normalize\",\"site\":{i},\"session\":{}}}",
                    session.0
                )),
                Err(e) => {
                    self.violation(step, format!("site {i} failed to recover: {e}"));
                    return;
                }
            }
            self.up[i as usize] = true;
        }
        self.harvest_late_reports();

        // Up to two read rounds: the first may race a just-resolved
        // in-doubt transaction; a repeat must agree.
        for attempt in 0..2 {
            match self.read_all_sites(step) {
                Ok(db) => {
                    for &(item, version, data) in &db {
                        let oracle = self.oracle.entry(item).or_default().clone();
                        if !oracle.acceptable(version, data) {
                            self.violation(
                                step,
                                format!(
                                    "converged item {item} has version={version} \
                                     data={data}, outside the acceptable set ({})",
                                    oracle.describe()
                                ),
                            );
                        }
                    }
                    self.outcome.final_db = db;
                    return;
                }
                Err(divergence) if attempt == 0 => {
                    self.trace(format!(
                        "{{\"step\":{step},\"observed\":\"divergence_retry\",\"detail\":\"{divergence}\"}}"
                    ));
                    std::thread::sleep(Duration::from_millis(1000));
                }
                Err(divergence) => {
                    self.violation(step, format!("copies diverged: {divergence}"));
                    return;
                }
            }
        }
    }

    /// One full-database read through every site. `Ok` carries the
    /// agreed image; `Err` describes the first divergence.
    #[allow(clippy::type_complexity)]
    fn read_all_sites(&mut self, step: u32) -> Result<Vec<(u32, u64, u64)>, String> {
        let mut reference: Option<(u8, Vec<(u32, u64, u64)>)> = None;
        for site in 0..self.opts.n_sites {
            let ops: Vec<Operation> = (0..self.opts.db_size)
                .map(|i| Operation::Read(ItemId(i)))
                .collect();
            let id = self.client.next_txn_id();
            let report = self
                .client
                .run_txn(SiteId(site), Transaction::new(id, ops), MGMT_WAIT)
                .map_err(|e| format!("full read via site {site}: {e}"))?;
            if !report.outcome.is_committed() {
                return Err(format!(
                    "full read via site {site} aborted: {:?}",
                    report.outcome
                ));
            }
            let image: Vec<(u32, u64, u64)> = report
                .read_results
                .iter()
                .map(|(item, v)| (item.0, v.version, v.data))
                .collect();
            self.trace(format!(
                "{{\"step\":{step},\"observed\":\"full_read\",\"site\":{site},\"items\":{}}}",
                image.len()
            ));
            match &reference {
                None => reference = Some((site, image)),
                Some((ref_site, ref_image)) => {
                    if *ref_image != image {
                        let detail = ref_image
                            .iter()
                            .zip(&image)
                            .find(|(a, b)| a != b)
                            .map(|(a, b)| {
                                format!(
                                    "item {}: site {ref_site} has (v{},d{}), site {site} has (v{},d{})",
                                    a.0, a.1, a.2, b.1, b.2
                                )
                            })
                            .unwrap_or_else(|| "length mismatch".into());
                        return Err(detail);
                    }
                }
            }
        }
        Ok(reference.map(|(_, image)| image).unwrap_or_default())
    }
}

/// Run one randomized chaos schedule against a threaded channel cluster
/// and return what happened. The caller decides what to do with
/// violations (tests assert emptiness; the `chaos` binary prints the
/// trace and exits nonzero).
pub fn run_thread_chaos(opts: ChaosOptions) -> ChaosOutcome {
    let config = ProtocolConfig {
        db_size: opts.db_size,
        n_sites: opts.n_sites,
        ..ProtocolConfig::default()
    };
    let plan = FaultPlan {
        drop: opts.drop,
        duplicate: opts.duplicate,
        ..FaultPlan::none(opts.seed)
    };
    let (cluster, client, controls) =
        Cluster::launch_faulty(config, ClusterTiming::default(), plan, opts.with_reliable);

    let mut harness = Harness {
        client,
        controls,
        oracle: HashMap::new(),
        up: vec![true; opts.n_sites as usize],
        isolated: vec![false; opts.n_sites as usize],
        last_commit_coordinator: None,
        outcome: ChaosOutcome::default(),
        opts,
    };
    harness.trace(format!(
        "{{\"seed\":{},\"steps\":{},\"n_sites\":{},\"drop\":{},\"duplicate\":{},\"reliable\":{}}}",
        opts.seed, opts.steps, opts.n_sites, opts.drop, opts.duplicate, opts.with_reliable
    ));

    let mut rng = StdRng::seed_from_u64(opts.seed);
    for step in 0..opts.steps {
        if !harness.outcome.violations.is_empty() {
            break; // stop at first violation; the trace explains it
        }
        harness.harvest_late_reports();
        let up_count = harness.up.iter().filter(|u| **u).count();
        let roll = rng.random_range(0..100u32);
        if roll < 8 && up_count > 1 {
            // Kill a random up site.
            let victims: Vec<u8> = (0..opts.n_sites)
                .filter(|i| harness.up[*i as usize])
                .collect();
            let site = victims[rng.random_range(0..victims.len())];
            harness.client.fail(SiteId(site));
            harness.up[site as usize] = false;
            harness.trace(format!(
                "{{\"step\":{step},\"action\":\"kill\",\"site\":{site}}}"
            ));
        } else if roll < 18 && up_count < opts.n_sites as usize {
            // Recover a random down site (isolated sites can't: they are
            // unreachable from the peers recovery needs).
            let downs: Vec<u8> = (0..opts.n_sites)
                .filter(|i| !harness.up[*i as usize] && !harness.isolated[*i as usize])
                .collect();
            if downs.is_empty() {
                continue;
            }
            let site = downs[rng.random_range(0..downs.len())];
            harness.trace(format!(
                "{{\"step\":{step},\"action\":\"recover\",\"site\":{site}}}"
            ));
            match harness.client.recover(SiteId(site), MGMT_WAIT) {
                Ok(_) => harness.up[site as usize] = true,
                Err(ControlError::Timeout(_)) => {
                    // Recovery can stall while its peers are faulted or
                    // partitioned; the site stays down and a later step
                    // (or the convergence phase) retries.
                    harness.trace(format!(
                        "{{\"step\":{step},\"observed\":\"recover_timeout\",\"site\":{site}}}"
                    ));
                }
                Err(ControlError::Disconnected) => {
                    harness.violation(step, "manager disconnected".into());
                }
            }
        } else if roll < 24 && up_count > 1 {
            // Network-isolate a random up site (full cut, both ways).
            let candidates: Vec<u8> = (0..opts.n_sites)
                .filter(|i| harness.up[*i as usize] && !harness.isolated[*i as usize])
                .collect();
            if !candidates.is_empty() {
                let site = candidates[rng.random_range(0..candidates.len())];
                harness.isolate(step, site);
            }
        } else if roll < 30 {
            // Heal a random isolated site and re-integrate it.
            let isolated: Vec<u8> = (0..opts.n_sites)
                .filter(|i| harness.isolated[*i as usize])
                .collect();
            if !isolated.is_empty() {
                let site = isolated[rng.random_range(0..isolated.len())];
                harness.heal_isolation(step, site);
            }
        } else if roll < 34 {
            harness.scrape(step, &mut rng);
        } else if roll < 75 {
            harness.run_write(step, &mut rng);
        } else {
            harness.run_read(step, &mut rng);
        }
    }

    if harness.outcome.violations.is_empty() {
        harness.converge();
    }

    let mut outcome = std::mem::take(&mut harness.outcome);
    harness.client.terminate_all();
    cluster.join(Duration::from_secs(5));
    outcome.trace.push(format!(
        "{{\"summary\":{{\"committed\":{},\"in_doubt\":{},\"aborted\":{},\"violations\":{}}}}}",
        outcome.committed_writes,
        outcome.in_doubt_writes,
        outcome.aborted,
        outcome.violations.len()
    ));
    outcome
}

/// Knobs for a sharded chaos run: several independent replication
/// groups under one [`ShardedClient`], with single- and cross-shard
/// traffic, site kills and recoveries, and faulty links.
#[derive(Debug, Clone, Copy)]
pub struct ShardChaosOptions {
    /// Master seed: drives the schedule RNG and the per-site fault RNGs.
    pub seed: u64,
    /// Schedule steps.
    pub steps: u32,
    /// Replication groups.
    pub n_groups: u8,
    /// Database sites per group.
    pub sites_per_group: u8,
    /// Items per group (each group's sites replicate this slice).
    pub group_db_size: u32,
    /// Percent of data writes that span two groups (cross-shard 2PC).
    pub cross_pct: u32,
    /// Per-frame drop probability on every site's transport.
    pub drop: f64,
    /// Per-frame duplication probability.
    pub duplicate: f64,
    /// Layer the reliable session protocol over the faulty links.
    pub with_reliable: bool,
    /// Repeatedly kill the cross-shard coordinator at this kill-point:
    /// the harness arms the one-shot kill, lets the takeover run, and
    /// re-arms once the successor has resolved every orphan. `None`
    /// leaves the coordinator immortal (the pre-decision-log model).
    pub kill_coordinator: Option<CoordKillPoint>,
    /// Override [`ProtocolConfig::shard_vote_timeout_ms`] — the
    /// successor's takeover delay after a coordinator crash. `None`
    /// keeps the config default (the timer-sweep lever).
    pub shard_vote_timeout_ms: Option<u64>,
    /// Override [`ProtocolConfig::shard_redrive_interval_ms`] — the
    /// decide/append retry cadence. `None` keeps the config default.
    pub shard_redrive_interval_ms: Option<u64>,
}

impl Default for ShardChaosOptions {
    fn default() -> Self {
        ShardChaosOptions {
            seed: 1,
            steps: 60,
            n_groups: 2,
            sites_per_group: 2,
            group_db_size: 8,
            cross_pct: 30,
            drop: 0.10,
            duplicate: 0.05,
            with_reliable: true,
            kill_coordinator: None,
            shard_vote_timeout_ms: None,
            shard_redrive_interval_ms: None,
        }
    }
}

struct ShardHarness<T: Transport, M: Mailbox> {
    client: ShardedClient<T, M>,
    spec: ShardSpec,
    /// Oracle keyed by *global* item id.
    oracle: HashMap<u32, ItemOracle>,
    /// Per-physical-site up/down belief (the harness's own actions).
    up: Vec<bool>,
    /// Write sets of transactions whose final outcome the harness has
    /// not yet recorded: `txn id → (cross_shard, [(item, data)])`.
    /// Entries persist across a report timeout so a late resolution
    /// (harvested from the client) still updates the oracle.
    pending_writes: HashMap<u64, (bool, Vec<(u32, u64)>)>,
    /// Cross-shard transaction ids the top-level coordinator decided to
    /// abort: their version stamp must appear on *no* item afterwards
    /// (atomicity — no branch may have committed).
    aborted_cross: Vec<u64>,
    outcome: ChaosOutcome,
    opts: ShardChaosOptions,
}

impl<T: Transport, M: Mailbox> ShardHarness<T, M> {
    fn trace(&mut self, line: String) {
        self.outcome.trace.push(line);
    }

    /// Emit a schedule action as a [`EventKind::Chaos`] annotation into
    /// the client's trace stream (no-op when tracing is off), so a
    /// captured JSONL file interleaves kills and recoveries with the
    /// transaction spans they disturbed.
    fn annotate(&self, action: ChaosAction, target: SiteId) {
        self.client
            .tracer()
            .emit_traced(None, 0, EventKind::Chaos { action, target });
    }

    fn violation(&mut self, step: u32, what: String) {
        self.outcome
            .trace
            .push(format!("{{\"step\":{step},\"violation\":\"{what}\"}}"));
        self.outcome.violations.push(format!("step {step}: {what}"));
    }

    /// Record a transaction's final outcome against the oracle. Safe to
    /// call for ids the harness never tracked (reads, duplicates): those
    /// are ignored. A commit promotes `last_committed` only when the
    /// transaction id is *newer* than what's recorded — cross-shard
    /// transactions can resolve late, after a younger single-shard write
    /// to the same item already committed, and version ordering
    /// (`put_if_fresher`) makes the younger write the survivor.
    fn record_outcome(&mut self, step: u32, txn: u64, committed: bool) {
        let Some((cross, writes)) = self.pending_writes.remove(&txn) else {
            return;
        };
        if committed {
            for &(item, data) in &writes {
                let oracle = self.oracle.entry(item).or_default();
                let newer = match oracle.last_committed {
                    Some((v, _)) => txn > v,
                    None => true,
                };
                if newer {
                    oracle.last_committed = Some((txn, data));
                }
                oracle.in_doubt.retain(|(v, _)| *v != txn);
            }
            self.outcome.committed_writes += 1;
            self.trace(format!(
                "{{\"step\":{step},\"observed\":\"committed\",\"txn\":{txn},\"cross\":{cross}}}"
            ));
        } else {
            for &(item, _) in &writes {
                self.oracle
                    .entry(item)
                    .or_default()
                    .in_doubt
                    .retain(|(v, _)| *v != txn);
            }
            if cross {
                self.aborted_cross.push(txn);
            }
            self.outcome.aborted += 1;
            self.trace(format!(
                "{{\"step\":{step},\"observed\":\"aborted\",\"txn\":{txn},\"cross\":{cross}}}"
            ));
        }
    }

    /// Harvest outcomes that arrived after their submitter gave up
    /// waiting (late re-driven commits, late global aborts).
    fn harvest(&mut self, step: u32) {
        for report in self.client.drain_finished() {
            self.record_outcome(step, report.txn.0, report.committed());
        }
    }

    fn run_write(&mut self, step: u32, rng: &mut StdRng) {
        let id = self.client.next_txn_id();
        let data = id.0;
        let cross = self.spec.n_groups >= 2 && rng.random_range(0..100u32) < self.opts.cross_pct;
        let ops: Vec<Operation> = if cross {
            // Two distinct groups, one item in each.
            let g1 = rng.random_range(0..self.spec.n_groups);
            let g2 = (g1 + 1 + rng.random_range(0..self.spec.n_groups - 1)) % self.spec.n_groups;
            let mut items = [
                self.spec
                    .globalize(g1, ItemId(rng.random_range(0..self.opts.group_db_size))),
                self.spec
                    .globalize(g2, ItemId(rng.random_range(0..self.opts.group_db_size))),
            ];
            items.sort();
            items.iter().map(|&i| Operation::Write(i, data)).collect()
        } else {
            let item = rng.random_range(0..self.spec.global_db_size());
            vec![Operation::Write(ItemId(item), data)]
        };
        let writes: Vec<(u32, u64)> = ops
            .iter()
            .map(|op| match op {
                Operation::Write(item, d) => (item.0, *d),
                Operation::Read(_) => unreachable!("write-only ops"),
            })
            .collect();
        self.trace(format!(
            "{{\"step\":{step},\"action\":\"write\",\"txn\":{},\"cross\":{cross},\"items\":{:?}}}",
            id.0,
            writes.iter().map(|(i, _)| *i).collect::<Vec<_>>()
        ));
        self.pending_writes.insert(id.0, (cross, writes.clone()));
        match self.client.run_txn(Transaction::new(id, ops), TXN_WAIT) {
            Ok(report) => self.record_outcome(step, id.0, report.committed()),
            Err(ControlError::Timeout(_)) => {
                // In doubt: the write set stays in `pending_writes`, so
                // a late resolution harvested from the client resolves
                // the doubt either way.
                for (item, data) in writes {
                    self.oracle
                        .entry(item)
                        .or_default()
                        .in_doubt
                        .push((id.0, data));
                }
                self.outcome.in_doubt_writes += 1;
                self.trace(format!(
                    "{{\"step\":{step},\"observed\":\"in_doubt\",\"txn\":{}}}",
                    id.0
                ));
            }
            Err(ControlError::Disconnected) => {
                self.violation(step, "manager disconnected".into());
            }
        }
    }

    fn run_read(&mut self, step: u32, rng: &mut StdRng) {
        let item = rng.random_range(0..self.spec.global_db_size());
        let id = self.client.next_txn_id();
        self.trace(format!(
            "{{\"step\":{step},\"action\":\"read\",\"item\":{item},\"txn\":{}}}",
            id.0
        ));
        let txn = Transaction::new(id, vec![Operation::Read(ItemId(item))]);
        match self.client.run_txn(txn, TXN_WAIT) {
            Ok(report) if report.committed() => {
                let (version, data) = report
                    .read_results
                    .first()
                    .map(|(_, v)| (v.version, v.data))
                    .unwrap_or((0, 0));
                let oracle = self.oracle.entry(item).or_default().clone();
                if !oracle.acceptable(version, data) {
                    self.violation(
                        step,
                        format!(
                            "read of item {item} returned version={version} \
                             data={data}, outside the acceptable set ({})",
                            oracle.describe()
                        ),
                    );
                }
            }
            Ok(_) => self.outcome.aborted += 1,
            Err(ControlError::Timeout(_)) => {
                self.trace(format!("{{\"step\":{step},\"observed\":\"read_timeout\"}}"));
            }
            Err(ControlError::Disconnected) => {
                self.violation(step, "manager disconnected".into());
            }
        }
    }

    fn scrape(&mut self, step: u32, rng: &mut StdRng) {
        let site = rng.random_range(0..self.spec.n_physical_sites());
        if self.client.fetch_metrics(SiteId(site), MGMT_WAIT).is_err() {
            self.violation(step, format!("metrics scrape of site {site} failed"));
        }
    }

    /// Sites whose group would keep at least one up member if they were
    /// killed — the sharded schedule never takes a whole group down on
    /// purpose (recovery needs an in-group donor), though crossing
    /// failure announcements under loss can still do it invisibly; the
    /// convergence phase's bootstrap fallback handles that.
    fn killable(&self) -> Vec<u8> {
        (0..self.spec.n_physical_sites())
            .filter(|&s| {
                if !self.up[s as usize] {
                    return false;
                }
                let (group, _) = self.spec.local_site(SiteId(s));
                self.spec
                    .group_members(group)
                    .iter()
                    .filter(|m| self.up[m.index()])
                    .count()
                    >= 2
            })
            .collect()
    }

    /// Probe whether a site's engine is actually operational: a down
    /// engine aborts any submitted transaction with
    /// `SiteNotOperational`. Crossing failure announcements under loss
    /// can step a site down *invisibly* (the harness still believes it
    /// up), and recovery donor selection must not count such a site.
    /// A probe timeout (e.g. blocked behind a parked branch's lock) is
    /// treated as operational.
    fn probe_up(&mut self, site: SiteId) -> bool {
        let (group, _) = self.spec.local_site(site);
        let id = self.client.next_txn_id();
        let probe = Transaction::new(
            id,
            vec![Operation::Read(self.spec.globalize(group, ItemId(0)))],
        );
        match self
            .client
            .run_txn_at(site, probe, Duration::from_millis(1500))
        {
            Ok(report) => !matches!(
                report.outcome,
                TxnOutcome::Aborted(AbortReason::SiteNotOperational)
            ),
            Err(_) => true,
        }
    }

    /// Total-group-failure recovery, the paper's "the last site to fail
    /// recovers first from its own state": fail every member, bootstrap
    /// the member that reported the group's most recent commit (it was
    /// provably operational at that commit, so its copy is as complete
    /// as any member's), then recover the rest from it. Returns false
    /// (after recording a violation) when the group cannot be revived.
    fn group_reset(&mut self, step: u32, group: u8) -> bool {
        let members = self.spec.group_members(group);
        let seed_site = self
            .client
            .last_commit_coordinator(group)
            .unwrap_or(members[0]);
        for m in &members {
            self.annotate(ChaosAction::Kill, *m);
            self.client.fail(*m);
            self.up[m.index()] = false;
        }
        std::thread::sleep(Duration::from_millis(50));
        self.annotate(ChaosAction::Bootstrap, seed_site);
        match self.client.bootstrap(seed_site, MGMT_WAIT) {
            Ok(session) => {
                self.up[seed_site.index()] = true;
                self.trace(format!(
                    "{{\"step\":{step},\"action\":\"bootstrap\",\"group\":{group},\"site\":{},\"session\":{}}}",
                    seed_site.0, session.0
                ));
            }
            Err(e) => {
                self.violation(
                    step,
                    format!("group {group} bootstrap of site {seed_site} failed: {e}"),
                );
                return false;
            }
        }
        for m in &members {
            if self.up[m.index()] {
                continue;
            }
            self.annotate(ChaosAction::Recover, *m);
            match self.client.recover(*m, MGMT_WAIT) {
                Ok(_) => self.up[m.index()] = true,
                Err(e) => {
                    self.violation(step, format!("site {m} failed to rejoin: {e}"));
                    return false;
                }
            }
        }
        true
    }

    /// Recover every down site, pump cross-shard work dry, normalize
    /// every site, then read each group's slice through each of its
    /// members and compare — per-group convergence plus cross-shard
    /// atomicity (no aborted cross-shard id on any item).
    fn converge(&mut self) {
        let step = self.opts.steps;
        self.trace(format!("{{\"step\":{step},\"action\":\"converge\"}}"));

        // Find out which sites are *actually* operational (invisible
        // step-downs included), then bring every down site back while
        // its group's true survivors can donate state. A group with no
        // operational member left gets the total-failure reset.
        for i in 0..self.spec.n_physical_sites() {
            if self.up[i as usize] && !self.probe_up(SiteId(i)) {
                self.up[i as usize] = false;
                self.trace(format!(
                    "{{\"step\":{step},\"observed\":\"invisible_down\",\"site\":{i}}}"
                ));
            }
        }
        for group in 0..self.spec.n_groups {
            let mut need_reset = false;
            for m in self.spec.group_members(group) {
                if self.up[m.index()] {
                    continue;
                }
                self.annotate(ChaosAction::Recover, m);
                match self.client.recover(m, MGMT_WAIT) {
                    Ok(session) => {
                        self.up[m.index()] = true;
                        self.trace(format!(
                            "{{\"step\":{step},\"action\":\"rejoin\",\"site\":{},\"session\":{}}}",
                            m.0, session.0
                        ));
                    }
                    Err(ControlError::Timeout(_)) => {
                        need_reset = true;
                        break;
                    }
                    Err(e) => {
                        self.violation(step, format!("site {m} failed to rejoin: {e}"));
                        return;
                    }
                }
            }
            if need_reset && !self.group_reset(step, group) {
                return;
            }
        }

        // Drain the cross-shard pipeline: every committed-but-
        // unconfirmed branch must confirm through the re-drive loop. A
        // pipeline that never drains is a blocked cross-shard commit —
        // exactly the violation the re-drive protocol exists to prevent.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while self.client.pending_cross() > 0 {
            if Instant::now() >= drain_deadline {
                let n = self.client.pending_cross();
                self.violation(
                    step,
                    format!("{n} cross-shard transaction(s) stuck unresolved after heal"),
                );
                return;
            }
            let _ = self.client.pump_for(Duration::from_millis(100));
            self.harvest(step);
        }
        self.harvest(step);

        // Cycle every site through fail + recover to clear divergent
        // up/down perception, exactly as the unsharded converge does. A
        // timeout here means the site's donors went down invisibly
        // after the rejoin pass — reset the whole group.
        for i in 0..self.spec.n_physical_sites() {
            self.annotate(ChaosAction::Kill, SiteId(i));
            self.client.fail(SiteId(i));
            std::thread::sleep(Duration::from_millis(50));
            self.annotate(ChaosAction::Recover, SiteId(i));
            match self.client.recover(SiteId(i), MGMT_WAIT) {
                Ok(session) => {
                    self.up[i as usize] = true;
                    self.trace(format!(
                        "{{\"step\":{step},\"action\":\"normalize\",\"site\":{i},\"session\":{}}}",
                        session.0
                    ));
                }
                Err(ControlError::Timeout(_)) => {
                    let (group, _) = self.spec.local_site(SiteId(i));
                    self.up[i as usize] = false;
                    if !self.group_reset(step, group) {
                        return;
                    }
                }
                Err(e) => {
                    self.violation(step, format!("site {i} failed to recover: {e}"));
                    return;
                }
            }
        }
        self.harvest(step);

        // Up to two read rounds per group (the first may race a
        // just-resolved in-doubt transaction; a repeat must agree).
        let mut final_db: Vec<(u32, u64, u64)> = Vec::new();
        for group in 0..self.spec.n_groups {
            let image = match self.read_group_all(step, group) {
                Ok(image) => image,
                Err(divergence) => {
                    self.trace(format!(
                        "{{\"step\":{step},\"observed\":\"divergence_retry\",\"group\":{group},\"detail\":\"{divergence}\"}}"
                    ));
                    std::thread::sleep(Duration::from_millis(1000));
                    match self.read_group_all(step, group) {
                        Ok(image) => image,
                        Err(divergence) => {
                            self.violation(
                                step,
                                format!("group {group} copies diverged: {divergence}"),
                            );
                            return;
                        }
                    }
                }
            };
            final_db.extend(image);
        }
        final_db.sort_by_key(|&(item, _, _)| item);

        let aborted_cross = self.aborted_cross.clone();
        for &(item, version, data) in &final_db {
            let oracle = self.oracle.entry(item).or_default().clone();
            if !oracle.acceptable(version, data) {
                self.violation(
                    step,
                    format!(
                        "converged item {item} has version={version} data={data}, \
                         outside the acceptable set ({})",
                        oracle.describe()
                    ),
                );
            }
            if aborted_cross.contains(&version) {
                self.violation(
                    step,
                    format!(
                        "atomicity: item {item} carries version {version} of a \
                         globally aborted cross-shard transaction"
                    ),
                );
            }
        }
        self.outcome.final_db = final_db;
    }

    /// Read one group's full slice through every member and compare.
    /// `Ok` carries the agreed image (global item names); `Err`
    /// describes the first divergence.
    #[allow(clippy::type_complexity)]
    fn read_group_all(&mut self, step: u32, group: u8) -> Result<Vec<(u32, u64, u64)>, String> {
        let ops: Vec<Operation> = (0..self.opts.group_db_size)
            .map(|i| Operation::Read(self.spec.globalize(group, ItemId(i))))
            .collect();
        let mut reference: Option<(SiteId, Vec<(u32, u64, u64)>)> = None;
        for member in self.spec.group_members(group) {
            let id = self.client.next_txn_id();
            let report = self
                .client
                .run_txn_at(member, Transaction::new(id, ops.clone()), MGMT_WAIT)
                .map_err(|e| format!("full read via site {member}: {e}"))?;
            if !report.committed() {
                return Err(format!(
                    "full read via site {member} aborted: {:?}",
                    report.outcome
                ));
            }
            let image: Vec<(u32, u64, u64)> = report
                .read_results
                .iter()
                .map(|(item, v)| (item.0, v.version, v.data))
                .collect();
            self.trace(format!(
                "{{\"step\":{step},\"observed\":\"full_read\",\"group\":{group},\"site\":{},\"items\":{}}}",
                member.0,
                image.len()
            ));
            match &reference {
                None => reference = Some((member, image)),
                Some((ref_site, ref_image)) => {
                    if *ref_image != image {
                        let detail = ref_image
                            .iter()
                            .zip(&image)
                            .find(|(a, b)| a != b)
                            .map(|(a, b)| {
                                format!(
                                    "item {}: site {ref_site} has (v{},d{}), site {} has (v{},d{})",
                                    a.0, a.1, a.2, member.0, b.1, b.2
                                )
                            })
                            .unwrap_or_else(|| "length mismatch".into());
                        return Err(detail);
                    }
                }
            }
        }
        Ok(reference.map(|(_, image)| image).unwrap_or_default())
    }
}

/// Run one randomized chaos schedule against a *sharded* threaded
/// cluster: several independent replication groups, single- and
/// cross-shard transactions, kills and recoveries (never taking a whole
/// group down on purpose), lossy links. On top of the unsharded
/// invariants — applied per group — the oracle checks cross-shard
/// atomicity: a globally aborted transaction's version stamp must
/// appear on no item, and a committed one must eventually confirm on
/// every branch (a stuck cross-shard pipeline after healing is a
/// violation).
pub fn run_sharded_chaos(opts: ShardChaosOptions) -> ChaosOutcome {
    let spec = ShardSpec::new(opts.n_groups, opts.sites_per_group, opts.group_db_size);
    let plan = FaultPlan {
        drop: opts.drop,
        duplicate: opts.duplicate,
        ..FaultPlan::none(opts.seed)
    };
    // A traced sharded run (`MINIRAID_CHAOS_TRACE_DIR`) is the
    // observability scenario: back the sites with the WAL so traced
    // transactions carry their covering group fsync in the span tree.
    let defaults = ProtocolConfig::default();
    let config = ProtocolConfig {
        emit_persistence: std::env::var_os("MINIRAID_CHAOS_TRACE_DIR").is_some(),
        shard_vote_timeout_ms: opts
            .shard_vote_timeout_ms
            .unwrap_or(defaults.shard_vote_timeout_ms),
        shard_redrive_interval_ms: opts
            .shard_redrive_interval_ms
            .unwrap_or(defaults.shard_redrive_interval_ms),
        ..defaults
    };
    // Timer constraint of the decision-log design (DESIGN.md §13): a
    // parked branch's participants legitimately wait through a
    // coordinator crash + takeover — one vote timeout (the successor's
    // takeover delay), a quorum-read round (bounded by another vote
    // timeout under loss), plus one re-drive. A participant timeout
    // shorter than that budget declares the *parked* branch coordinator
    // failed mid-takeover and fail-locks its own staged copies, wrongly.
    let mut timing = ClusterTiming::default();
    let takeover_budget =
        Duration::from_millis(2 * config.shard_vote_timeout_ms + config.shard_redrive_interval_ms);
    if timing.participant_timeout < takeover_budget {
        timing.participant_timeout = takeover_budget;
    }
    let (cluster, client, _controls) =
        Cluster::launch_sharded_faulty(spec, config, timing, plan, opts.with_reliable);

    let mut harness = ShardHarness {
        client,
        spec,
        oracle: HashMap::new(),
        up: vec![true; spec.n_physical_sites() as usize],
        pending_writes: HashMap::new(),
        aborted_cross: Vec::new(),
        outcome: ChaosOutcome::default(),
        opts,
    };
    harness.trace(format!(
        "{{\"mode\":\"sharded\",\"seed\":{},\"steps\":{},\"groups\":{},\"sites_per_group\":{},\"cross_pct\":{},\"drop\":{},\"duplicate\":{},\"reliable\":{},\"kill_coordinator\":{:?}}}",
        opts.seed,
        opts.steps,
        opts.n_groups,
        opts.sites_per_group,
        opts.cross_pct,
        opts.drop,
        opts.duplicate,
        opts.with_reliable,
        opts.kill_coordinator.map(|kp| kp.name())
    ));

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut seen_crashes = 0u64;
    for step in 0..opts.steps {
        if !harness.outcome.violations.is_empty() {
            break;
        }
        harness.harvest(step);
        // Coordinator-kill schedule: keep the one-shot kill armed while
        // no takeover is in flight, so the coordinator keeps dying at
        // the chosen point for as long as the run submits cross-shard
        // work. (The last armed kill may fire during the convergence
        // drain — the takeover must still resolve it.)
        if let Some(kp) = opts.kill_coordinator {
            let crashes = harness.client.coordinator_crashes();
            if crashes > seen_crashes {
                seen_crashes = crashes;
                harness.trace(format!(
                    "{{\"step\":{step},\"observed\":\"coordinator_crash\",\"kill_point\":\"{}\",\"count\":{crashes}}}",
                    kp.name()
                ));
            }
            if harness.client.armed_kill_point().is_none() && !harness.client.takeover_pending() {
                harness.client.arm_coordinator_kill(kp);
                harness.trace(format!(
                    "{{\"step\":{step},\"action\":\"arm_kill_coordinator\",\"kill_point\":\"{}\"}}",
                    kp.name()
                ));
            }
        }
        let roll = rng.random_range(0..100u32);
        if roll < 8 {
            let victims = harness.killable();
            if victims.is_empty() {
                continue;
            }
            let site = victims[rng.random_range(0..victims.len())];
            harness.annotate(ChaosAction::Kill, SiteId(site));
            harness.client.fail(SiteId(site));
            harness.up[site as usize] = false;
            harness.trace(format!(
                "{{\"step\":{step},\"action\":\"kill\",\"site\":{site}}}"
            ));
        } else if roll < 18 {
            let downs: Vec<u8> = (0..spec.n_physical_sites())
                .filter(|i| !harness.up[*i as usize])
                .collect();
            if downs.is_empty() {
                continue;
            }
            let site = downs[rng.random_range(0..downs.len())];
            harness.annotate(ChaosAction::Recover, SiteId(site));
            harness.trace(format!(
                "{{\"step\":{step},\"action\":\"recover\",\"site\":{site}}}"
            ));
            match harness.client.recover(SiteId(site), MGMT_WAIT) {
                Ok(_) => harness.up[site as usize] = true,
                Err(ControlError::Timeout(_)) => {
                    harness.trace(format!(
                        "{{\"step\":{step},\"observed\":\"recover_timeout\",\"site\":{site}}}"
                    ));
                }
                Err(ControlError::Disconnected) => {
                    harness.violation(step, "manager disconnected".into());
                }
            }
        } else if roll < 22 {
            harness.scrape(step, &mut rng);
        } else if roll < 75 {
            harness.run_write(step, &mut rng);
        } else {
            harness.run_read(step, &mut rng);
        }
    }

    if harness.outcome.violations.is_empty() {
        harness.converge();
    }

    let xm = harness.client.xmetrics();
    let crashes = harness.client.coordinator_crashes();
    let cross_hist = harness.client.cross_commit_latency.clone();
    let takeover_hist = harness.client.takeover_latency.clone();
    let mut outcome = std::mem::take(&mut harness.outcome);
    outcome.coordinator_crashes = crashes;
    outcome.takeovers = xm.takeovers;
    outcome.takeover_p50_us = takeover_hist.quantile(0.5);
    outcome.takeover_p99_us = takeover_hist.quantile(0.99);
    harness.client.terminate_all();
    cluster.join(Duration::from_secs(5));
    outcome.trace.push(format!(
        "{{\"summary\":{{\"committed\":{},\"in_doubt\":{},\"aborted\":{},\"cross_begun\":{},\"cross_committed\":{},\"cross_aborted\":{},\"cross_redrives\":{},\"cross_commit_p50_us\":{},\"coordinator_crashes\":{crashes},\"takeovers\":{},\"takeover_p50_us\":{},\"violations\":{}}}}}",
        outcome.committed_writes,
        outcome.in_doubt_writes,
        outcome.aborted,
        xm.begun,
        xm.committed,
        xm.aborted,
        xm.redrives,
        cross_hist.quantile(0.5),
        xm.takeovers,
        takeover_hist.quantile(0.5),
        outcome.violations.len()
    ));
    outcome
}

/// Knobs for a reshard chaos run: a *mapped* threaded cluster (items
/// named globally, ownership decided by an epoch-versioned
/// [`ShardMap`]) migrating live under foreground traffic, with a kill
/// scheduled mid-migration.
#[derive(Debug, Clone, Copy)]
pub struct ReshardChaosOptions {
    /// Seed for the foreground schedule, the migration plan, the kill
    /// point placement and the fault plan.
    pub seed: u64,
    /// Replication groups (at least 2 — a migration needs somewhere to
    /// go).
    pub n_groups: u8,
    /// Sites per group.
    pub sites_per_group: u8,
    /// Global keyspace size (rounded up to a multiple of `n_groups`).
    pub db_size: u32,
    /// What to kill mid-migration (`None`: fault-free migration).
    pub kill: Option<ReshardKillPoint>,
    /// Per-message drop probability on non-management frames.
    pub drop: f64,
    /// Per-message duplicate probability.
    pub duplicate: f64,
    /// Re-send dropped 2PC frames (the reliable-delivery layer).
    pub with_reliable: bool,
}

impl Default for ReshardChaosOptions {
    fn default() -> Self {
        ReshardChaosOptions {
            seed: 7,
            n_groups: 2,
            sites_per_group: 2,
            db_size: 48,
            kill: None,
            drop: 0.0,
            duplicate: 0.0,
            with_reliable: true,
        }
    }
}

/// Oracle + schedule state for a reshard run. Deliberately does *not*
/// own the client: the resharder's interleave hook receives the client
/// by parameter while the closure captures this context, so both can
/// be borrowed mutably at once.
struct ReshardCtx {
    spec: ShardSpec,
    /// Global keyspace size.
    db_size: u32,
    /// Oracle keyed by global item id.
    oracle: HashMap<u32, ItemOracle>,
    /// Write sets of transactions whose final outcome is unrecorded:
    /// `txn id → [(item, data)]`.
    pending_writes: HashMap<u64, Vec<(u32, u64)>>,
    /// Per-physical-site up/down belief (the harness's own kills).
    up: Vec<bool>,
    outcome: ChaosOutcome,
    /// Foreground step counter (for trace lines).
    step: u32,
}

impl ReshardCtx {
    fn trace(&mut self, line: String) {
        self.outcome.trace.push(line);
    }

    fn violation(&mut self, what: String) {
        let step = self.step;
        self.outcome
            .trace
            .push(format!("{{\"step\":{step},\"violation\":\"{what}\"}}"));
        self.outcome.violations.push(format!("step {step}: {what}"));
    }

    /// Record a transaction's final outcome against the oracle (same
    /// newer-id-wins promotion as the sharded harness: a bounced write
    /// can resolve late, after a younger write to the same item).
    /// `version` is the id the write finally committed under
    /// (`committed_as`) — it differs from `txn` when a `WrongEpoch`
    /// bounce re-stamped the retry with a fresh, later id, and it is
    /// the version stamp the copies actually carry.
    fn record_outcome(&mut self, txn: u64, version: u64, committed: bool) {
        let Some(writes) = self.pending_writes.remove(&txn) else {
            return;
        };
        let step = self.step;
        if committed {
            for &(item, data) in &writes {
                let oracle = self.oracle.entry(item).or_default();
                let newer = match oracle.last_committed {
                    Some((v, _)) => version > v,
                    None => true,
                };
                if newer {
                    oracle.last_committed = Some((version, data));
                }
                oracle.in_doubt.retain(|(v, _)| *v != txn);
            }
            self.outcome.committed_writes += 1;
            self.trace(format!(
                "{{\"step\":{step},\"observed\":\"committed\",\"txn\":{txn},\"as\":{version}}}"
            ));
        } else {
            for &(item, _) in &writes {
                self.oracle
                    .entry(item)
                    .or_default()
                    .in_doubt
                    .retain(|(v, _)| *v != txn);
            }
            self.outcome.aborted += 1;
            self.trace(format!(
                "{{\"step\":{step},\"observed\":\"aborted\",\"txn\":{txn}}}"
            ));
        }
    }

    /// Harvest outcomes that arrived after their submitter gave up
    /// waiting (bounced writes re-routed post-cutover, late commits).
    fn harvest<T: Transport, M: Mailbox>(&mut self, client: &mut ShardedClient<T, M>) {
        for report in client.drain_finished() {
            self.record_outcome(report.txn.0, report.committed_as.0, report.committed());
        }
    }

    /// One foreground step: a single-item write or read through mapped
    /// routing, checked against the oracle.
    fn fg_step<T: Transport, M: Mailbox>(
        &mut self,
        client: &mut ShardedClient<T, M>,
        rng: &mut StdRng,
    ) {
        self.step += 1;
        let step = self.step;
        let item = rng.random_range(0..self.db_size);
        if rng.random_range(0..100u32) < 65 {
            let id = client.next_txn_id();
            let data = id.0;
            self.pending_writes.insert(id.0, vec![(item, data)]);
            self.trace(format!(
                "{{\"step\":{step},\"action\":\"write\",\"txn\":{},\"item\":{item}}}",
                id.0
            ));
            let txn = Transaction::new(id, vec![Operation::Write(ItemId(item), data)]);
            match client.run_txn(txn, TXN_WAIT) {
                Ok(report) => self.record_outcome(id.0, report.committed_as.0, report.committed()),
                Err(ControlError::Timeout(_)) => {
                    // In doubt: the write set stays pending, so a late
                    // resolution (a bounce retried past cutover) still
                    // settles the oracle either way.
                    self.oracle
                        .entry(item)
                        .or_default()
                        .in_doubt
                        .push((id.0, data));
                    self.outcome.in_doubt_writes += 1;
                    self.trace(format!(
                        "{{\"step\":{step},\"observed\":\"in_doubt\",\"txn\":{}}}",
                        id.0
                    ));
                }
                Err(ControlError::Disconnected) => {
                    self.violation("manager disconnected".into());
                }
            }
        } else {
            let id = client.next_txn_id();
            self.trace(format!(
                "{{\"step\":{step},\"action\":\"read\",\"item\":{item},\"txn\":{}}}",
                id.0
            ));
            let txn = Transaction::new(id, vec![Operation::Read(ItemId(item))]);
            match client.run_txn(txn, TXN_WAIT) {
                Ok(report) if report.committed() => {
                    let (version, data) = report
                        .read_results
                        .first()
                        .map(|(_, v)| (v.version, v.data))
                        .unwrap_or((0, 0));
                    let oracle = self.oracle.entry(item).or_default().clone();
                    if !oracle.acceptable_retried(version, data) {
                        self.violation(format!(
                            "read of item {item} returned version={version} \
                             data={data}, outside the acceptable set ({})",
                            oracle.describe()
                        ));
                    }
                }
                Ok(_) => self.outcome.aborted += 1,
                Err(ControlError::Timeout(_)) => {
                    self.trace(format!("{{\"step\":{step},\"observed\":\"read_timeout\"}}"));
                }
                Err(ControlError::Disconnected) => {
                    self.violation("manager disconnected".into());
                }
            }
        }
    }

    /// Kill one up member of `group`, keeping at least one member
    /// alive (recovery needs an in-group donor).
    fn kill_member<T: Transport, M: Mailbox>(
        &mut self,
        client: &mut ShardedClient<T, M>,
        rng: &mut StdRng,
        group: u8,
    ) {
        let ups: Vec<SiteId> = self
            .spec
            .group_members(group)
            .into_iter()
            .filter(|m| self.up[m.index()])
            .collect();
        if ups.len() < 2 {
            self.trace(format!(
                "{{\"step\":{},\"observed\":\"kill_skipped\",\"group\":{group}}}",
                self.step
            ));
            return;
        }
        let victim = ups[rng.random_range(0..ups.len())];
        client.tracer().emit_traced(
            None,
            0,
            EventKind::Chaos {
                action: ChaosAction::Kill,
                target: victim,
            },
        );
        client.fail(victim);
        self.up[victim.index()] = false;
        self.trace(format!(
            "{{\"step\":{},\"action\":\"kill\",\"site\":{},\"group\":{group}}}",
            self.step, victim.0
        ));
    }

    /// Read `items` through every member of `group` (mapped routing,
    /// identity names) and compare. `Ok` carries the agreed image;
    /// `Err` describes the first divergence.
    fn read_group_mapped<T: Transport, M: Mailbox>(
        &mut self,
        client: &mut ShardedClient<T, M>,
        group: u8,
        items: &[u32],
    ) -> Result<Vec<(u32, u64, u64)>, String> {
        type ItemImage = Vec<(u32, u64, u64)>;
        let ops: Vec<Operation> = items.iter().map(|&i| Operation::Read(ItemId(i))).collect();
        let mut reference: Option<(SiteId, ItemImage)> = None;
        for member in self.spec.group_members(group) {
            let id = client.next_txn_id();
            let report = client
                .run_mapped_at(member, Transaction::new(id, ops.clone()), false, MGMT_WAIT)
                .map_err(|e| format!("mapped read via site {member}: {e}"))?;
            if !report.committed() {
                return Err(format!(
                    "mapped read via site {member} aborted: {:?}",
                    report.outcome
                ));
            }
            let image: Vec<(u32, u64, u64)> = report
                .read_results
                .iter()
                .map(|(item, v)| (item.0, v.version, v.data))
                .collect();
            self.trace(format!(
                "{{\"step\":{},\"observed\":\"full_read\",\"group\":{group},\"site\":{},\"items\":{}}}",
                self.step,
                member.0,
                image.len()
            ));
            match &reference {
                None => reference = Some((member, image)),
                Some((ref_site, ref_image)) => {
                    if *ref_image != image {
                        let detail = ref_image
                            .iter()
                            .zip(&image)
                            .find(|(a, b)| a != b)
                            .map(|(a, b)| {
                                format!(
                                    "item {}: site {ref_site} has (v{},d{}), site {} has (v{},d{})",
                                    a.0, a.1, a.2, member.0, b.1, b.2
                                )
                            })
                            .unwrap_or_else(|| "length mismatch".into());
                        return Err(detail);
                    }
                }
            }
        }
        Ok(reference.map(|(_, image)| image).unwrap_or_default())
    }

    /// Post-migration convergence: recover the kills, drain the mapped
    /// pipeline, then check the run's two invariants — **no item lost**
    /// (every copy agrees with the oracle's acceptable set under the
    /// final map) and **no item double-owned** (the old donor rejects a
    /// post-cutover write of a migrated item with `StaleShardMap`,
    /// while the new owner commits one).
    fn converge<T: Transport, M: Mailbox>(
        &mut self,
        client: &mut ShardedClient<T, M>,
        migrated: &[u32],
        donor_group: u8,
    ) {
        self.trace(format!(
            "{{\"step\":{},\"action\":\"converge\"}}",
            self.step
        ));
        for i in 0..self.spec.n_physical_sites() {
            if self.up[i as usize] {
                continue;
            }
            client.tracer().emit_traced(
                None,
                0,
                EventKind::Chaos {
                    action: ChaosAction::Recover,
                    target: SiteId(i),
                },
            );
            match client.recover(SiteId(i), MGMT_WAIT) {
                Ok(session) => {
                    self.up[i as usize] = true;
                    self.trace(format!(
                        "{{\"step\":{},\"action\":\"rejoin\",\"site\":{i},\"session\":{}}}",
                        self.step, session.0
                    ));
                }
                Err(e) => {
                    self.violation(format!("site {i} failed to rejoin: {e}"));
                    return;
                }
            }
        }

        // Drain in-flight and bounced mapped transactions. Entries
        // whose coordinator died with the Begin can never report —
        // after the deadline those stay in doubt, which the oracle's
        // acceptable set already covers.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while client.pending_mapped() > 0 && Instant::now() < drain_deadline {
            let _ = client.pump_for(Duration::from_millis(100));
            self.harvest(client);
        }
        self.harvest(client);
        if client.pending_mapped() > 0 {
            self.trace(format!(
                "{{\"step\":{},\"observed\":\"stranded_mapped\",\"count\":{}}}",
                self.step,
                client.pending_mapped()
            ));
        }

        let map = match client.map() {
            Some(m) => m.clone(),
            None => {
                self.violation("client lost its shard map".into());
                return;
            }
        };
        if !map.migrating.is_empty() {
            self.violation(format!(
                "migration still in flight after convergence (epoch {})",
                map.epoch
            ));
            return;
        }
        self.outcome.map_epoch = map.epoch;

        // No item lost: member-compare reads of every group's owned
        // slice under the final map, each value inside the oracle's
        // acceptable set. Up to two rounds (the first may race a
        // just-resolved in-doubt transaction).
        let mut final_db: Vec<(u32, u64, u64)> = Vec::new();
        for group in 0..self.spec.n_groups {
            let items: Vec<u32> = (0..self.db_size)
                .filter(|&i| map.owner(i) == group)
                .collect();
            if items.is_empty() {
                // A merged-away donor owns nothing; its copies serve no
                // reads and cannot lose an item.
                continue;
            }
            let image = match self.read_group_mapped(client, group, &items) {
                Ok(image) => image,
                Err(divergence) => {
                    self.trace(format!(
                        "{{\"step\":{},\"observed\":\"divergence_retry\",\"group\":{group},\"detail\":\"{divergence}\"}}",
                        self.step
                    ));
                    std::thread::sleep(Duration::from_millis(1000));
                    self.harvest(client);
                    match self.read_group_mapped(client, group, &items) {
                        Ok(image) => image,
                        Err(divergence) => {
                            self.violation(format!("group {group} copies diverged: {divergence}"));
                            return;
                        }
                    }
                }
            };
            final_db.extend(image);
        }
        final_db.sort_by_key(|&(item, _, _)| item);
        for &(item, version, data) in &final_db {
            let oracle = self.oracle.entry(item).or_default().clone();
            if !oracle.acceptable_retried(version, data) {
                self.violation(format!(
                    "item lost: converged item {item} has version={version} \
                     data={data}, outside the acceptable set ({})",
                    oracle.describe()
                ));
            }
        }
        self.outcome.final_db = final_db;

        // No item double-owned: the old donor must bounce a write of a
        // migrated item — a commit would mean two groups accept writes
        // for the same item under the final epoch.
        if let Some(&probe_item) = migrated.first() {
            if map.owner(probe_item) != donor_group {
                let member = self.spec.group_members(donor_group)[0];
                let id = client.next_txn_id();
                let txn = Transaction::new(id, vec![Operation::Write(ItemId(probe_item), 0)]);
                match client.run_mapped_at(member, txn, false, MGMT_WAIT) {
                    Ok(report) if report.committed() => {
                        self.violation(format!(
                            "double owner: donor group {donor_group} committed a write \
                             of migrated item {probe_item} after cutover"
                        ));
                    }
                    Ok(report) => {
                        let stale = matches!(
                            report.outcome,
                            TxnOutcome::Aborted(AbortReason::StaleShardMap)
                        );
                        self.trace(format!(
                            "{{\"step\":{},\"observed\":\"donor_probe_rejected\",\"item\":{probe_item},\"stale_shard_map\":{stale}}}",
                            self.step
                        ));
                    }
                    Err(e) => {
                        self.violation(format!("double-owner probe at the donor: {e}"));
                    }
                }
            }
            // ...and the new owner must serve one (cutover liveness).
            let id = client.next_txn_id();
            self.pending_writes.insert(id.0, vec![(probe_item, id.0)]);
            let txn = Transaction::new(id, vec![Operation::Write(ItemId(probe_item), id.0)]);
            match client.run_txn(txn, TXN_WAIT) {
                Ok(report) if report.committed() => {
                    self.record_outcome(id.0, report.committed_as.0, true)
                }
                Ok(report) => {
                    self.violation(format!(
                        "post-cutover write of migrated item {probe_item} aborted: {:?}",
                        report.outcome
                    ));
                }
                Err(e) => {
                    self.violation(format!(
                        "post-cutover write of migrated item {probe_item}: {e}"
                    ));
                }
            }
        }
    }
}

/// Run one randomized reshard chaos schedule: launch a mapped cluster,
/// derive a seed-dependent migration plan (a range move, a split, or a
/// whole-group merge), drive it with the [`Resharder`] while foreground
/// transactions interleave with every copy leg, kill the configured
/// target mid-copy, then converge and check the two migration
/// invariants — no item lost, no item double-owned. A killed resharder
/// is resumed by a successor from the installed epochs
/// ([`Resharder::resume`]).
pub fn run_reshard_chaos(opts: ReshardChaosOptions) -> ChaosOutcome {
    assert!(opts.n_groups >= 2, "a migration needs at least two groups");
    let per = opts.db_size.div_ceil(opts.n_groups as u32).max(2);
    let db_size = per * opts.n_groups as u32;
    let spec = ShardSpec::new(opts.n_groups, opts.sites_per_group, per);
    let fault_plan = FaultPlan {
        drop: opts.drop,
        duplicate: opts.duplicate,
        ..FaultPlan::none(opts.seed)
    };
    let defaults = ProtocolConfig::default();
    let config = ProtocolConfig {
        emit_persistence: std::env::var_os("MINIRAID_CHAOS_TRACE_DIR").is_some(),
        ..defaults
    };
    let mut timing = ClusterTiming::default();
    let takeover_budget =
        Duration::from_millis(2 * config.shard_vote_timeout_ms + config.shard_redrive_interval_ms);
    if timing.participant_timeout < takeover_budget {
        timing.participant_timeout = takeover_budget;
    }
    let initial = ShardMap::blocked(opts.n_groups, db_size);
    let (cluster, mut client, _controls) = Cluster::launch_mapped_faulty(
        spec,
        config,
        timing,
        fault_plan,
        opts.with_reliable,
        initial.clone(),
    );

    let mut ctx = ReshardCtx {
        spec,
        db_size,
        oracle: HashMap::new(),
        pending_writes: HashMap::new(),
        up: vec![true; spec.n_physical_sites() as usize],
        outcome: ChaosOutcome::default(),
        step: 0,
    };
    ctx.trace(format!(
        "{{\"mode\":\"reshard\",\"seed\":{},\"groups\":{},\"sites_per_group\":{},\"db_size\":{db_size},\"kill\":{:?},\"drop\":{},\"duplicate\":{},\"reliable\":{}}}",
        opts.seed,
        opts.n_groups,
        opts.sites_per_group,
        opts.kill.map(|k| k.name()),
        opts.drop,
        opts.duplicate,
        opts.with_reliable
    ));

    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Warm up: one committed write per item, so every migrating item
    // carries real state the copier must not lose.
    for item in 0..db_size {
        let id = client.next_txn_id();
        ctx.pending_writes.insert(id.0, vec![(item, id.0)]);
        let txn = Transaction::new(id, vec![Operation::Write(ItemId(item), id.0)]);
        match client.run_txn(txn, TXN_WAIT) {
            Ok(report) => ctx.record_outcome(id.0, report.committed_as.0, report.committed()),
            Err(_) => {
                ctx.oracle
                    .entry(item)
                    .or_default()
                    .in_doubt
                    .push((id.0, id.0));
                ctx.outcome.in_doubt_writes += 1;
            }
        }
    }

    // A seed-dependent plan over the blocked layout: move half a
    // block, split a block at its midpoint, or merge a whole group
    // into its neighbour.
    let g = rng.random_range(0..opts.n_groups);
    let to = (g + 1) % opts.n_groups;
    let (lo, hi) = (g as u32 * per, g as u32 * per + per);
    let op = match rng.random_range(0..3u32) {
        0 => PlanOp::Move {
            lo,
            hi: lo + per / 2,
            to,
        },
        1 => PlanOp::Split {
            lo,
            hi,
            at: lo + per / 2,
            to,
        },
        _ => PlanOp::Merge { from: g, to },
    };
    let plan = MigrationPlan { ops: vec![op] };
    ctx.trace(format!(
        "{{\"action\":\"plan\",\"detail\":\"{:?}\"}}",
        plan.ops
    ));

    let base = client.map().cloned().unwrap_or(initial);
    let mut resharder = match Resharder::plan(&base, &plan, opts.n_groups, TXN_WAIT) {
        Ok(r) => r,
        Err(e) => {
            ctx.violation(format!("plan rejected: {e}"));
            let outcome = std::mem::take(&mut ctx.outcome);
            client.terminate_all();
            cluster.join(Duration::from_secs(5));
            return outcome_summary(outcome, 0, 0, 0);
        }
    };
    let migrated = resharder.map().migrating_items();
    let donor_group = resharder.map().migrating[0].donor;
    let recipient_group = resharder.map().migrating[0].recipient;
    let total = migrated.len() as u64;
    let kill_at = rng.random_range(1..=total.max(1));
    let mut killed = opts.kill.is_none();

    let run = resharder.run(&mut client, |client, copied, _total| {
        ctx.harvest(client);
        ctx.fg_step(client, &mut rng);
        if !killed && copied >= kill_at {
            killed = true;
            match opts.kill.expect("kill point armed") {
                ReshardKillPoint::Resharder => {
                    ctx.trace(format!(
                        "{{\"step\":{},\"action\":\"kill_resharder\",\"copied\":{copied}}}",
                        ctx.step
                    ));
                    return false;
                }
                ReshardKillPoint::Donor => ctx.kill_member(client, &mut rng, donor_group),
                ReshardKillPoint::Recipient => ctx.kill_member(client, &mut rng, recipient_group),
            }
        }
        true
    });
    let mut stats = match run {
        Ok(s) => s,
        Err(e) => {
            ctx.violation(format!("resharder failed: {e}"));
            ReshardStats::default()
        }
    };

    // A killed resharder's successor adopts the installed epochs and
    // replays the migration from wherever it stands.
    let mut revivals = 0;
    while !stats.completed && ctx.outcome.violations.is_empty() && revivals < 3 {
        revivals += 1;
        for _ in 0..4 {
            ctx.fg_step(&mut client, &mut rng);
        }
        match Resharder::resume(&mut client, MGMT_WAIT) {
            Ok(Some(mut successor)) => {
                ctx.outcome.resharder_resumes += 1;
                ctx.trace(format!(
                    "{{\"step\":{},\"action\":\"resume\",\"epoch\":{}}}",
                    ctx.step,
                    successor.map().epoch
                ));
                match successor.run(&mut client, |client, _, _| {
                    ctx.harvest(client);
                    true
                }) {
                    Ok(s2) => {
                        stats.items_copied += s2.items_copied;
                        stats.items_skipped += s2.items_skipped;
                        stats.map_epoch = s2.map_epoch;
                        stats.completed = s2.completed;
                    }
                    Err(e) => {
                        ctx.violation(format!("resumed resharder failed: {e}"));
                    }
                }
            }
            Ok(None) => stats.completed = true,
            Err(e) => {
                ctx.violation(format!("resume probe failed: {e}"));
            }
        }
    }
    if !stats.completed && ctx.outcome.violations.is_empty() {
        ctx.violation("migration never completed".into());
    }

    // Post-cutover foreground traffic, then the convergence checks.
    if ctx.outcome.violations.is_empty() {
        for _ in 0..8 {
            ctx.fg_step(&mut client, &mut rng);
        }
        ctx.converge(&mut client, &migrated, donor_group);
    }

    let mut outcome = std::mem::take(&mut ctx.outcome);
    outcome.items_migrated = stats.items_copied;
    if outcome.map_epoch == 0 {
        outcome.map_epoch = stats.map_epoch;
    }
    outcome.stale_bounces = client.stale_bounces;
    client.terminate_all();
    cluster.join(Duration::from_secs(5));
    outcome_summary(
        outcome,
        stats.items_total,
        stats.items_copied,
        stats.items_skipped,
    )
}

/// Append the run's summary trace line and return the outcome.
fn outcome_summary(
    mut outcome: ChaosOutcome,
    items_total: u64,
    items_copied: u64,
    items_skipped: u64,
) -> ChaosOutcome {
    outcome.trace.push(format!(
        "{{\"summary\":{{\"committed\":{},\"in_doubt\":{},\"aborted\":{},\"items_total\":{items_total},\"items_copied\":{items_copied},\"items_skipped\":{items_skipped},\"map_epoch\":{},\"stale_bounces\":{},\"resumes\":{},\"violations\":{}}}}}",
        outcome.committed_writes,
        outcome.in_doubt_writes,
        outcome.aborted,
        outcome.map_epoch,
        outcome.stale_bounces,
        outcome.resharder_resumes,
        outcome.violations.len()
    ));
    outcome
}

/// Knobs for a process-mode chaos run: real `miniraid-site` OS
/// processes over TCP with WAL-backed durable stores, killed with
/// SIGKILL mid-transaction and restarted from their logs.
#[derive(Debug, Clone)]
pub struct ProcChaosOptions {
    /// Master seed for the schedule RNG and per-site fault plans.
    pub seed: u64,
    /// Kill/restart cycles to run.
    pub kills: u32,
    /// Closed-loop writes between kills.
    pub writes_per_round: u32,
    /// Database sites (each its own OS process).
    pub n_sites: u8,
    /// Items per database copy.
    pub db_size: u32,
    /// Site `i` listens on `base_port + i`; the manager on
    /// `base_port + n_sites`.
    pub base_port: u16,
    /// Path to the `miniraid-site` binary.
    pub site_bin: std::path::PathBuf,
    /// Directory for the per-site WALs (must outlive the run).
    pub durable_dir: std::path::PathBuf,
    /// Per-frame drop probability injected inside each site process.
    pub drop: f64,
    /// Per-frame duplication probability.
    pub duplicate: f64,
    /// Enable the reliable session layer inside each site process.
    pub with_reliable: bool,
}

struct Procs(Vec<Option<std::process::Child>>);

impl Drop for Procs {
    fn drop(&mut self) {
        for child in self.0.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_site(opts: &ProcChaosOptions, site: u8) -> std::io::Result<std::process::Child> {
    let mut cmd = std::process::Command::new(&opts.site_bin);
    cmd.args([
        site.to_string(),
        opts.n_sites.to_string(),
        opts.base_port.to_string(),
        opts.db_size.to_string(),
    ])
    .arg(&opts.durable_dir)
    .stderr(std::process::Stdio::null());
    if opts.drop > 0.0 || opts.duplicate > 0.0 {
        // Same per-site seed derivation as `Cluster::launch_faulty`.
        let seed = opts
            .seed
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(site as u64 + 1));
        cmd.env(
            "MINIRAID_FAULTS",
            format!("{seed}:{}:{}", opts.drop, opts.duplicate),
        );
    }
    if opts.with_reliable {
        cmd.env("MINIRAID_RELIABLE", "1");
    }
    cmd.spawn()
}

/// Run a kill-heavy chaos schedule against real OS processes: each
/// round does some closed-loop writes, then SIGKILLs a random site
/// *while a write coordinated by that site is in flight*, restarts it
/// from its WAL, and re-integrates it through fail/recover. The same
/// oracle and convergence checks as [`run_thread_chaos`] apply; a
/// coordinator killed between Prepare and its commit decision must
/// leave every participant with the same outcome, which the final
/// convergence pass verifies.
pub fn run_process_chaos(opts: &ProcChaosOptions) -> ChaosOutcome {
    use miniraid_net::tcp::{AddressPlan, TcpEndpoint};

    let mut procs = Procs(Vec::new());
    for i in 0..opts.n_sites {
        match spawn_site(opts, i) {
            Ok(child) => procs.0.push(Some(child)),
            Err(e) => {
                let mut outcome = ChaosOutcome::default();
                outcome.violations.push(format!("spawn site {i}: {e}"));
                return outcome;
            }
        }
    }
    std::thread::sleep(Duration::from_millis(400)); // let the ports bind

    let plan = AddressPlan {
        base_port: opts.base_port,
    };
    let (transport, mailbox) = match TcpEndpoint::bind(SiteId(opts.n_sites), plan) {
        Ok(pair) => pair,
        Err(e) => {
            let mut outcome = ChaosOutcome::default();
            outcome.violations.push(format!("bind manager: {e}"));
            return outcome;
        }
    };
    let client = ManagingClient::new(transport, mailbox, opts.n_sites);

    let mut harness = Harness {
        client,
        controls: Vec::new(),
        oracle: HashMap::new(),
        up: vec![true; opts.n_sites as usize],
        isolated: vec![false; opts.n_sites as usize],
        last_commit_coordinator: None,
        outcome: ChaosOutcome::default(),
        opts: ChaosOptions {
            seed: opts.seed,
            steps: opts.kills,
            n_sites: opts.n_sites,
            db_size: opts.db_size,
            drop: opts.drop,
            duplicate: opts.duplicate,
            with_reliable: opts.with_reliable,
        },
    };
    harness.trace(format!(
        "{{\"mode\":\"proc\",\"seed\":{},\"kills\":{},\"n_sites\":{},\"drop\":{},\"duplicate\":{},\"reliable\":{}}}",
        opts.seed, opts.kills, opts.n_sites, opts.drop, opts.duplicate, opts.with_reliable
    ));

    let mut rng = StdRng::seed_from_u64(opts.seed);
    for round in 0..opts.kills {
        if !harness.outcome.violations.is_empty() {
            break;
        }
        for _ in 0..opts.writes_per_round {
            harness.run_write(round, &mut rng);
        }
        harness.harvest_late_reports();

        // SIGKILL a site while it coordinates an in-flight write: the
        // crash can land between Prepare and the commit decision.
        let victim = rng.random_range(0..opts.n_sites);
        let item = rng.random_range(0..opts.db_size);
        let id = harness.client.next_txn_id();
        harness.client.submit_txn(
            SiteId(victim),
            Transaction::new(id, vec![Operation::Write(ItemId(item), id.0)]),
        );
        harness
            .oracle
            .entry(item)
            .or_default()
            .in_doubt
            .push((id.0, id.0));
        harness.outcome.in_doubt_writes += 1;
        if let Some(child) = procs.0[victim as usize].as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        harness.trace(format!(
            "{{\"round\":{round},\"action\":\"kill9\",\"site\":{victim},\"inflight_txn\":{}}}",
            id.0
        ));
        harness.up[victim as usize] = false;

        // Give the survivors time to detect the crash (participant
        // timeouts) and the OS time to free the port, then restart the
        // victim from its WAL.
        std::thread::sleep(Duration::from_millis(700));
        match spawn_site(opts, victim) {
            Ok(child) => procs.0[victim as usize] = Some(child),
            Err(e) => {
                harness.violation(round, format!("respawn site {victim}: {e}"));
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(400));
        harness.trace(format!(
            "{{\"round\":{round},\"action\":\"respawn\",\"site\":{victim}}}"
        ));
        // A fresh process may come up "up" (empty WAL) or waiting to
        // recover (non-empty WAL): fail first to normalize, then
        // recover.
        harness.client.fail(SiteId(victim));
        std::thread::sleep(Duration::from_millis(100));
        match harness.client.recover(SiteId(victim), MGMT_WAIT) {
            Ok(session) => {
                harness.up[victim as usize] = true;
                harness.trace(format!(
                    "{{\"round\":{round},\"action\":\"recover\",\"site\":{victim},\"session\":{}}}",
                    session.0
                ));
            }
            Err(e) => {
                harness.violation(round, format!("site {victim} failed to rejoin: {e}"));
                break;
            }
        }
        harness.harvest_late_reports();
    }

    if harness.outcome.violations.is_empty() {
        harness.converge();
    }

    let mut outcome = std::mem::take(&mut harness.outcome);
    harness.client.terminate_all();
    std::thread::sleep(Duration::from_millis(300));
    drop(procs);
    outcome.trace.push(format!(
        "{{\"summary\":{{\"committed\":{},\"in_doubt\":{},\"aborted\":{},\"violations\":{}}}}}",
        outcome.committed_writes,
        outcome.in_doubt_writes,
        outcome.aborted,
        outcome.violations.len()
    ));
    outcome
}
