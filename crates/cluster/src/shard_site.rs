//! Identity translation for sharded deployments.
//!
//! Every physical site of a sharded cluster belongs to exactly one
//! replication group and runs the unmodified [`SiteEngine`] configured
//! for that group alone: the engine believes it lives in a small
//! cluster of `sites_per_group` sites with group-local ids
//! `0..sites_per_group` and a managing site at `sites_per_group`. The
//! two wrappers here sit between the engine's site loop and the real
//! (physical) network and translate both directions:
//!
//! * [`ShardTransport`] maps group-local destinations to physical site
//!   ids and wraps every outgoing message in a shard-tagged envelope
//!   ([`Message::ShardEnv`]), so the wire traffic of a sharded cluster
//!   is self-describing.
//! * [`ShardMailbox`] unwraps incoming envelopes, drops frames tagged
//!   for a different group (misrouting protection), and maps physical
//!   sender ids back to group-local ones.
//!
//! Layering order matters: the shard wrappers go *above* the reliable
//! session layer (`Seq { ShardEnv { .. } }` is the legal nesting — the
//! codec rejects the converse), so one physical link carries one
//! sequence space no matter which layer produced the frame.
//!
//! [`SiteEngine`]: miniraid_core::engine::SiteEngine

use std::time::{Duration, Instant};

use miniraid_core::ids::SiteId;
use miniraid_core::messages::Message;
use miniraid_net::{Mailbox, NetError, RecvError, Transport, TransportStats};
use miniraid_shard::ShardSpec;

/// Sending half for one site of one replication group: translates
/// group-local destinations to physical ids and shard-tags every frame.
pub struct ShardTransport<T> {
    inner: T,
    spec: ShardSpec,
    group: u8,
}

impl<T: Transport> ShardTransport<T> {
    /// Wrap `inner` (whose destinations are physical site ids) for the
    /// site loop of a member of `group`.
    pub fn new(inner: T, spec: ShardSpec, group: u8) -> Self {
        ShardTransport { inner, spec, group }
    }

    fn physical(&self, to: SiteId) -> SiteId {
        if to == self.spec.local_manager_alias() {
            self.spec.physical_manager()
        } else {
            self.spec.physical_site(self.group, to)
        }
    }

    fn wrap(&self, msg: &Message) -> Message {
        Message::ShardEnv {
            shard: self.group,
            inner: Box::new(msg.clone()),
        }
    }
}

impl<T: Transport> Transport for ShardTransport<T> {
    fn send(&self, to: SiteId, msg: &Message) -> Result<(), NetError> {
        self.inner.send(self.physical(to), &self.wrap(msg))
    }

    fn send_batch(&self, to: SiteId, msgs: &[Message]) -> Result<(), NetError> {
        let wrapped: Vec<Message> = msgs.iter().map(|m| self.wrap(m)).collect();
        self.inner.send_batch(self.physical(to), &wrapped)
    }

    fn local_id(&self) -> SiteId {
        self.spec.local_site(self.inner.local_id()).1
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

/// Receiving half for one site of one replication group: unwraps shard
/// envelopes and translates physical senders to group-local ids.
pub struct ShardMailbox<M> {
    inner: M,
    spec: ShardSpec,
    group: u8,
}

impl<M: Mailbox> ShardMailbox<M> {
    /// Wrap `inner` (which yields physical sender ids) for a member of
    /// `group`.
    pub fn new(inner: M, spec: ShardSpec, group: u8) -> Self {
        ShardMailbox { inner, spec, group }
    }

    /// Translate one delivery, or `None` to drop it (wrong group).
    fn translate(&self, from: SiteId, msg: Message) -> Option<(SiteId, Message)> {
        let local_from = if from == self.spec.physical_manager() {
            self.spec.local_manager_alias()
        } else {
            let (g, local) = self.spec.local_site(from);
            if g != self.group {
                return None;
            }
            local
        };
        let msg = match msg {
            Message::ShardEnv { shard, inner } => {
                if shard != self.group {
                    return None;
                }
                *inner
            }
            other => other,
        };
        Some((local_from, msg))
    }
}

impl<M: Mailbox> Mailbox for ShardMailbox<M> {
    fn recv_timeout(&self, timeout: Duration) -> Result<(SiteId, Message), RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let (from, msg) = self.inner.recv_timeout(left)?;
            if let Some(delivery) = self.translate(from, msg) {
                return Ok(delivery);
            }
            // Dropped a misrouted frame; keep waiting out the budget.
            if Instant::now() >= deadline {
                return Err(RecvError::Timeout);
            }
        }
    }

    fn try_recv(&self) -> Result<(SiteId, Message), RecvError> {
        loop {
            let (from, msg) = self.inner.try_recv()?;
            if let Some(delivery) = self.translate(from, msg) {
                return Ok(delivery);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniraid_core::ids::TxnId;
    use miniraid_net::channel::ChannelNetwork;

    fn spec() -> ShardSpec {
        ShardSpec::new(2, 2, 4) // physical sites 0..4, manager 4
    }

    #[test]
    fn transport_translates_and_tags() {
        let mut endpoints = ChannelNetwork::new(5);
        let (mgr_t, mgr_m) = endpoints.pop().expect("manager");
        let eps: Vec<_> = endpoints.into_iter().collect();
        let mut eps = eps.into_iter();
        let (t0, _m0) = eps.next().expect("site 0");
        let _keep: Vec<_> = eps.collect(); // keep receivers alive

        // Group 0's local site 0 sends to its local peer 1 and to the
        // local manager alias (SiteId(2)).
        let st = ShardTransport::new(t0, spec(), 0);
        assert_eq!(st.local_id(), SiteId(0));
        st.send(SiteId(1), &Message::CommitAck { txn: TxnId(3) })
            .expect("send to peer");
        st.send(
            SiteId(2),
            &Message::ShardVote {
                txn: TxnId(3),
                ok: true,
            },
        )
        .expect("send to manager alias");

        // The manager's (physical) mailbox got the vote, shard-tagged.
        let (from, msg) = mgr_m.try_recv().expect("vote frame");
        assert_eq!(from, SiteId(0));
        match msg {
            Message::ShardEnv { shard, inner } => {
                assert_eq!(shard, 0);
                assert_eq!(
                    *inner,
                    Message::ShardVote {
                        txn: TxnId(3),
                        ok: true
                    }
                );
            }
            other => panic!("expected envelope, got {other:?}"),
        }
        drop(mgr_t);
    }

    #[test]
    fn mailbox_unwraps_and_filters_by_group() {
        let mut endpoints = ChannelNetwork::new(5);
        let (mgr_t, _mgr_m) = endpoints.pop().expect("manager");
        let eps: Vec<_> = endpoints.into_iter().collect();
        let mut eps = eps.into_iter();
        let (_t0, m0) = eps.next().expect("site 0");
        let _keep: Vec<_> = eps.collect();

        let sm = ShardMailbox::new(m0, spec(), 0);

        // Manager sends a correctly-tagged frame and a mis-tagged one.
        mgr_t
            .send(
                SiteId(0),
                &Message::ShardEnv {
                    shard: 1,
                    inner: Box::new(Message::MetricsRequest),
                },
            )
            .expect("mis-tagged");
        mgr_t
            .send(
                SiteId(0),
                &Message::ShardEnv {
                    shard: 0,
                    inner: Box::new(Message::MetricsRequest),
                },
            )
            .expect("tagged");

        // The mis-tagged frame is dropped; the good one arrives with the
        // sender mapped to the group-local manager alias (SiteId(2)).
        let (from, msg) = sm
            .recv_timeout(Duration::from_millis(500))
            .expect("delivery");
        assert_eq!(from, SiteId(2));
        assert_eq!(msg, Message::MetricsRequest);
        assert!(sm.try_recv().is_err());
    }
}
