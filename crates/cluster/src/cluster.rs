//! Cluster assembly: spawn one thread per site over a shared transport
//! and hand back the managing client.

use std::thread::JoinHandle;
use std::time::Duration;

use miniraid_core::config::ProtocolConfig;
use miniraid_core::engine::SiteEngine;
use miniraid_core::ids::SiteId;
use miniraid_core::partial::ReplicationMap;
use miniraid_net::channel::{ChannelMailbox, ChannelNetwork, ChannelTransport};
use miniraid_net::delay::DelayTransport;
use miniraid_net::fault::{FaultControl, FaultPlan, FaultTransport};
use miniraid_net::reliable::{reliable, ReliableConfig};
use miniraid_net::tcp::{AddressPlan, TcpEndpoint, TcpMailbox, TcpTransport};

use miniraid_shard::ShardSpec;

use crate::control::ManagingClient;
use crate::obs::SiteObs;
use crate::shard_client::ShardedClient;
use crate::shard_site::{ShardMailbox, ShardTransport};
use crate::site::{run_site, run_site_full, ClusterTiming};

/// A running cluster: join handles for every site thread.
pub struct Cluster {
    handles: Vec<JoinHandle<()>>,
}

/// What [`Cluster::launch_observed`] hands back: the cluster, the
/// managing client, and one [`miniraid_obs::MetricsHub`] per site for
/// in-process latency/abort inspection.
pub type ObservedCluster = (
    Cluster,
    ManagingClient<ChannelTransport, ChannelMailbox>,
    Vec<std::sync::Arc<miniraid_obs::MetricsHub>>,
);

impl Cluster {
    /// Launch `config.n_sites` sites as threads over in-process channels.
    /// Returns the cluster handle and the managing client (site id
    /// `n_sites`).
    pub fn launch(
        config: ProtocolConfig,
        timing: ClusterTiming,
    ) -> (Cluster, ManagingClient<ChannelTransport, ChannelMailbox>) {
        Self::launch_with_map(config, timing, None)
    }

    /// Launch with an explicit replication map (partial replication).
    pub fn launch_with_map(
        config: ProtocolConfig,
        timing: ClusterTiming,
        map: Option<ReplicationMap>,
    ) -> (Cluster, ManagingClient<ChannelTransport, ChannelMailbox>) {
        let n = config.n_sites;
        let manager_id = SiteId(n);
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        let mut handles = Vec::with_capacity(n as usize);
        // After popping the manager's endpoint, the rest are sites 0..n.
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let engine = match &map {
                Some(m) => SiteEngine::with_replication(SiteId(i as u8), config.clone(), m.clone()),
                None => SiteEngine::new(SiteId(i as u8), config.clone()),
            };
            let handle = std::thread::Builder::new()
                .name(format!("miniraid-site-{i}"))
                .spawn(move || run_site(engine, transport, mailbox, manager_id, timing))
                .expect("spawn site thread");
            handles.push(handle);
        }
        let client = ManagingClient::new(mgr_transport, mgr_mailbox, n);
        (Cluster { handles }, client)
    }

    /// Launch with observability attached to every site: each engine gets
    /// a tracer feeding a per-site [`miniraid_obs::MetricsHub`] (returned
    /// for in-process inspection), and — when `trace_dir` is given — a
    /// JSONL trace file `trace_dir/site-<i>.jsonl`. Sites launched this
    /// way answer metrics scrapes with latency histograms included.
    pub fn launch_observed(
        config: ProtocolConfig,
        timing: ClusterTiming,
        trace_dir: Option<&std::path::Path>,
    ) -> std::io::Result<ObservedCluster> {
        let n = config.n_sites;
        let manager_id = SiteId(n);
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        if let Some(dir) = trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let mut handles = Vec::with_capacity(n as usize);
        let mut hubs = Vec::with_capacity(n as usize);
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let mut engine = SiteEngine::new(SiteId(i as u8), config.clone());
            let trace_path = trace_dir.map(|d| d.join(format!("site-{i}.jsonl")));
            let obs = SiteObs::attach(&mut engine, trace_path.as_deref())?;
            hubs.push(obs.hub().clone());
            let handle = std::thread::Builder::new()
                .name(format!("miniraid-site-{i}"))
                .spawn(move || {
                    run_site_full(
                        engine,
                        transport,
                        mailbox,
                        manager_id,
                        timing,
                        None,
                        Some(obs),
                    )
                })
                .expect("spawn site thread");
            handles.push(handle);
        }
        let client = ManagingClient::new(mgr_transport, mgr_mailbox, n);
        Ok((Cluster { handles }, client, hubs))
    }

    /// Launch over in-process channels with a fixed per-send latency on
    /// every site's transport (the manager's sends stay immediate), like
    /// the paper's measured 9 ms intersite communication cost. Used by
    /// the throughput benchmark, where intersite latency is what makes
    /// pipelining overlap measurable.
    ///
    /// Every engine gets a null-sink tracer: the benchmark measures the
    /// full event-emission path (clock stamp + dynamic dispatch into a
    /// sink that discards), so its numbers bound the tracing overhead a
    /// real deployment pays.
    pub fn launch_with_latency(
        config: ProtocolConfig,
        timing: ClusterTiming,
        latency: Duration,
    ) -> (Cluster, ManagingClient<ChannelTransport, ChannelMailbox>) {
        use miniraid_core::trace::{SystemClock, Tracer};
        let n = config.n_sites;
        let manager_id = SiteId(n);
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        let mut handles = Vec::with_capacity(n as usize);
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let mut engine = SiteEngine::new(SiteId(i as u8), config.clone());
            engine.set_tracer(Tracer::new(
                SiteId(i as u8),
                std::sync::Arc::new(SystemClock::new()),
                std::sync::Arc::new(miniraid_obs::NullSink),
            ));
            let transport = DelayTransport::new(transport, latency);
            let handle = std::thread::Builder::new()
                .name(format!("miniraid-site-{i}"))
                .spawn(move || run_site(engine, transport, mailbox, manager_id, timing))
                .expect("spawn site thread");
            handles.push(handle);
        }
        let client = ManagingClient::new(mgr_transport, mgr_mailbox, n);
        (Cluster { handles }, client)
    }

    /// Launch over in-process channels with a seeded fault-injection
    /// decorator on every site's transport and — when `with_reliable` is
    /// set — the reliable session layer on top, so lost/duplicated/
    /// reordered frames are retransmitted and deduplicated before the
    /// engine sees them. The manager's endpoint stays plain (management
    /// traffic is the out-of-band measurement harness, and the fault
    /// decorator exempts it anyway). Each site derives its own RNG seed
    /// from `plan.seed`, so a whole-cluster run is reproducible from one
    /// number. Returns one [`FaultControl`] per site for scripting
    /// one-way partitions.
    ///
    /// `with_reliable = false` is the negative control: the engines face
    /// the raw lossy link, which the paper's protocol does *not* tolerate
    /// (its §1.2 assumption 1 presumes reliable delivery).
    pub fn launch_faulty(
        config: ProtocolConfig,
        timing: ClusterTiming,
        plan: FaultPlan,
        with_reliable: bool,
    ) -> (
        Cluster,
        ManagingClient<ChannelTransport, ChannelMailbox>,
        Vec<FaultControl>,
    ) {
        let n = config.n_sites;
        let manager_id = SiteId(n);
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        // Chaos debugging aid: when set, every site writes its protocol
        // events (fail-lock set/clear, copier rounds, session changes) to
        // `<dir>/site-<i>.jsonl`, so a seeded violation can be replayed
        // and diagnosed at the engine level.
        let trace_dir = std::env::var_os("MINIRAID_CHAOS_TRACE_DIR").map(std::path::PathBuf::from);
        if let Some(dir) = &trace_dir {
            let _ = std::fs::create_dir_all(dir);
        }

        let mut handles = Vec::with_capacity(n as usize);
        let mut controls = Vec::with_capacity(n as usize);
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let mut engine = SiteEngine::new(SiteId(i as u8), config.clone());
            let obs = trace_dir.as_ref().and_then(|dir| {
                SiteObs::attach(
                    &mut engine,
                    Some(dir.join(format!("site-{i}.jsonl")).as_path()),
                )
                .ok()
            });
            // Distinct per-site streams, all derived from the one seed.
            let site_plan = FaultPlan {
                seed: plan
                    .seed
                    .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ..plan
            };
            let (transport, control) = FaultTransport::new(transport, site_plan);
            controls.push(control);
            let handle = if with_reliable {
                let cfg = ReliableConfig {
                    // Threads never restart mid-run, so a fixed epoch
                    // keeps whole-cluster runs deterministic.
                    epoch: Some(1),
                    ..ReliableConfig::default()
                };
                let (transport, mailbox) = reliable(transport, mailbox, cfg);
                std::thread::Builder::new()
                    .name(format!("miniraid-site-{i}"))
                    .spawn(move || {
                        run_site_full(engine, transport, mailbox, manager_id, timing, None, obs)
                    })
                    .expect("spawn site thread")
            } else {
                std::thread::Builder::new()
                    .name(format!("miniraid-site-{i}"))
                    .spawn(move || {
                        run_site_full(engine, transport, mailbox, manager_id, timing, None, obs)
                    })
                    .expect("spawn site thread")
            };
            handles.push(handle);
        }
        let client = ManagingClient::new(mgr_transport, mgr_mailbox, n);
        (Cluster { handles }, client, controls)
    }

    /// Launch a sharded topology over in-process channels: physical
    /// sites `0..spec.n_physical_sites()`, each running one engine for
    /// its replication group (`config` narrowed per group — see
    /// [`ShardSpec::group_config`]), with the sharded managing client
    /// at the physical manager id. Groups are fully independent
    /// clusters: session vectors, fail-locks and control transactions
    /// never cross a group boundary.
    pub fn launch_sharded(
        spec: ShardSpec,
        config: ProtocolConfig,
        timing: ClusterTiming,
    ) -> (Cluster, ShardedClient<ChannelTransport, ChannelMailbox>) {
        let n = spec.n_physical_sites();
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        let group_config = spec.group_config(&config);
        let mut handles = Vec::with_capacity(n as usize);
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let (group, local) = spec.local_site(SiteId(i as u8));
            let engine = SiteEngine::new(local, group_config.clone());
            let transport = ShardTransport::new(transport, spec, group);
            let mailbox = ShardMailbox::new(mailbox, spec, group);
            let manager = spec.local_manager_alias();
            let handle = std::thread::Builder::new()
                .name(format!("miniraid-shard-{group}-{}", local.0))
                .spawn(move || run_site(engine, transport, mailbox, manager, timing))
                .expect("spawn site thread");
            handles.push(handle);
        }
        let client = ShardedClient::with_config(mgr_transport, mgr_mailbox, spec, &config);
        (Cluster { handles }, client)
    }

    /// Launch a sharded topology with a fixed per-send intersite latency
    /// on every site's transport (below the shard translation, so delays
    /// apply to the physical hops). The manager's endpoint stays plain —
    /// like [`Cluster::launch_with_latency`], the client is the
    /// out-of-band measurement harness. Used by the shard-scaling
    /// benchmark, where intersite latency is what makes group-level
    /// parallelism measurable.
    pub fn launch_sharded_with_latency(
        spec: ShardSpec,
        config: ProtocolConfig,
        timing: ClusterTiming,
        latency: Duration,
    ) -> (Cluster, ShardedClient<ChannelTransport, ChannelMailbox>) {
        let n = spec.n_physical_sites();
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        let group_config = spec.group_config(&config);
        let mut handles = Vec::with_capacity(n as usize);
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let (group, local) = spec.local_site(SiteId(i as u8));
            let engine = SiteEngine::new(local, group_config.clone());
            let transport =
                ShardTransport::new(DelayTransport::new(transport, latency), spec, group);
            let mailbox = ShardMailbox::new(mailbox, spec, group);
            let manager = spec.local_manager_alias();
            let handle = std::thread::Builder::new()
                .name(format!("miniraid-shard-{group}-{}", local.0))
                .spawn(move || run_site(engine, transport, mailbox, manager, timing))
                .expect("spawn site thread");
            handles.push(handle);
        }
        let client = ShardedClient::with_config(mgr_transport, mgr_mailbox, spec, &config);
        (Cluster { handles }, client)
    }

    /// Launch a sharded topology with seeded fault injection on every
    /// site's transport and — when `with_reliable` is set — the
    /// reliable session layer between the faults and the shard
    /// translation (the legal frame nesting is `Seq { ShardEnv {..} }`).
    /// The manager's endpoint stays plain, as in [`launch_faulty`].
    /// Returns one [`FaultControl`] per physical site, indexed by
    /// physical id, for scripting partitions.
    ///
    /// [`launch_faulty`]: Cluster::launch_faulty
    pub fn launch_sharded_faulty(
        spec: ShardSpec,
        config: ProtocolConfig,
        timing: ClusterTiming,
        plan: FaultPlan,
        with_reliable: bool,
    ) -> (
        Cluster,
        ShardedClient<ChannelTransport, ChannelMailbox>,
        Vec<FaultControl>,
    ) {
        let n = spec.n_physical_sites();
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        let trace_dir = std::env::var_os("MINIRAID_CHAOS_TRACE_DIR").map(std::path::PathBuf::from);
        if let Some(dir) = &trace_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        // With `emit_persistence` set, each site gets a WAL-backed
        // durable store (under `MINIRAID_SHARD_DURABLE_DIR`, or a
        // process-scoped temp directory), so sharded runs exercise the
        // group-commit fsync path and traced transactions carry
        // `wal_fsync` events in their span trees.
        let durable_dir: Option<std::path::PathBuf> = config.emit_persistence.then(|| {
            std::env::var_os("MINIRAID_SHARD_DURABLE_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    std::env::temp_dir().join(format!("miniraid-shard-wal-{}", std::process::id()))
                })
        });

        let group_config = spec.group_config(&config);
        let mut handles = Vec::with_capacity(n as usize);
        let mut controls = Vec::with_capacity(n as usize);
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let (group, local) = spec.local_site(SiteId(i as u8));
            let mut engine = SiteEngine::new(local, group_config.clone());
            let store = durable_dir.as_ref().map(|dir| {
                miniraid_storage::DurableStore::open(
                    &dir.join(format!("site-{i}")),
                    group_config.db_size,
                )
                .expect("open sharded durable store")
            });
            let obs = trace_dir.as_ref().and_then(|dir| {
                SiteObs::attach(
                    &mut engine,
                    Some(dir.join(format!("site-{i}.jsonl")).as_path()),
                )
                .ok()
            });
            // Same per-site seed derivation as `launch_faulty`, keyed by
            // physical id so a whole sharded run replays from one seed.
            let site_plan = FaultPlan {
                seed: plan
                    .seed
                    .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ..plan
            };
            let (transport, control) = FaultTransport::new(transport, site_plan);
            controls.push(control);
            let manager = spec.local_manager_alias();
            let handle = if with_reliable {
                let cfg = ReliableConfig {
                    epoch: Some(1),
                    ..ReliableConfig::default()
                };
                let (transport, mailbox) = reliable(transport, mailbox, cfg);
                let transport = ShardTransport::new(transport, spec, group);
                let mailbox = ShardMailbox::new(mailbox, spec, group);
                std::thread::Builder::new()
                    .name(format!("miniraid-shard-{group}-{}", local.0))
                    .spawn(move || {
                        run_site_full(engine, transport, mailbox, manager, timing, store, obs)
                    })
                    .expect("spawn site thread")
            } else {
                let transport = ShardTransport::new(transport, spec, group);
                let mailbox = ShardMailbox::new(mailbox, spec, group);
                std::thread::Builder::new()
                    .name(format!("miniraid-shard-{group}-{}", local.0))
                    .spawn(move || {
                        run_site_full(engine, transport, mailbox, manager, timing, store, obs)
                    })
                    .expect("spawn site thread")
            };
            handles.push(handle);
        }
        let mut client = ShardedClient::with_config(mgr_transport, mgr_mailbox, spec, &config);
        // With chaos tracing on, the client gets its own trace stream
        // (`client.jsonl`): it allocates per-transaction trace ids, and
        // its cross-shard coordination milestones land beside the sites'
        // per-engine streams so `miniraid-ctl trace` can reassemble one
        // span tree per transaction across the whole topology.
        if let Some(dir) = &trace_dir {
            if let Ok(sink) = miniraid_obs::json::JsonlSink::create(dir.join("client.jsonl")) {
                client.set_tracer(miniraid_core::trace::Tracer::new(
                    SiteId(n),
                    std::sync::Arc::new(miniraid_core::trace::SystemClock::new()),
                    std::sync::Arc::new(sink),
                ));
            }
        }
        (Cluster { handles }, client, controls)
    }

    /// Launch a *mapped* sharded topology: like
    /// [`launch_sharded_faulty`], but item placement is governed by a
    /// live, epoch-versioned [`ShardMap`] instead of the spec's frozen
    /// modulo stripe. Every group engine is configured over the full
    /// global keyspace (identity item naming — see
    /// [`ShardSpec::mapped_config`]), each site carries a
    /// [`MapStore`] preloaded with `initial`, and the site loop gates
    /// incoming transactions through it: a begin routed under a stale
    /// map bounces with `WrongEpoch` instead of reaching the engine.
    /// This is the topology the resharder migrates live — see
    /// `Resharder`.
    ///
    /// [`launch_sharded_faulty`]: Cluster::launch_sharded_faulty
    /// [`ShardMap`]: miniraid_shard::ShardMap
    /// [`MapStore`]: miniraid_shard::MapStore
    pub fn launch_mapped_faulty(
        spec: ShardSpec,
        config: ProtocolConfig,
        timing: ClusterTiming,
        plan: FaultPlan,
        with_reliable: bool,
        initial: miniraid_shard::ShardMap,
    ) -> (
        Cluster,
        ShardedClient<ChannelTransport, ChannelMailbox>,
        Vec<FaultControl>,
    ) {
        let n = spec.n_physical_sites();
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        let trace_dir = std::env::var_os("MINIRAID_CHAOS_TRACE_DIR").map(std::path::PathBuf::from);
        if let Some(dir) = &trace_dir {
            let _ = std::fs::create_dir_all(dir);
        }

        let mapped_config = spec.mapped_config(&config);
        let mut handles = Vec::with_capacity(n as usize);
        let mut controls = Vec::with_capacity(n as usize);
        for (i, (transport, mailbox)) in endpoints.into_iter().enumerate() {
            let (group, local) = spec.local_site(SiteId(i as u8));
            let mut engine = SiteEngine::new(local, mapped_config.clone());
            let obs = trace_dir.as_ref().and_then(|dir| {
                SiteObs::attach(
                    &mut engine,
                    Some(dir.join(format!("site-{i}.jsonl")).as_path()),
                )
                .ok()
            });
            let site_plan = FaultPlan {
                seed: plan
                    .seed
                    .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ..plan
            };
            let (transport, control) = FaultTransport::new(transport, site_plan);
            controls.push(control);
            let manager = spec.local_manager_alias();
            let mut map_store = miniraid_shard::MapStore::new(group);
            map_store.install(
                initial.epoch,
                initial.assignment.clone(),
                initial.migrating.clone(),
            );
            let handle = if with_reliable {
                let cfg = ReliableConfig {
                    epoch: Some(1),
                    ..ReliableConfig::default()
                };
                let (transport, mailbox) = reliable(transport, mailbox, cfg);
                let transport = ShardTransport::new(transport, spec, group);
                let mailbox = ShardMailbox::new(mailbox, spec, group);
                std::thread::Builder::new()
                    .name(format!("miniraid-mapped-{group}-{}", local.0))
                    .spawn(move || {
                        crate::site::run_site_mapped(
                            engine,
                            transport,
                            mailbox,
                            manager,
                            timing,
                            None,
                            obs,
                            Some(map_store),
                        )
                    })
                    .expect("spawn site thread")
            } else {
                let transport = ShardTransport::new(transport, spec, group);
                let mailbox = ShardMailbox::new(mailbox, spec, group);
                std::thread::Builder::new()
                    .name(format!("miniraid-mapped-{group}-{}", local.0))
                    .spawn(move || {
                        crate::site::run_site_mapped(
                            engine,
                            transport,
                            mailbox,
                            manager,
                            timing,
                            None,
                            obs,
                            Some(map_store),
                        )
                    })
                    .expect("spawn site thread")
            };
            handles.push(handle);
        }
        let mut client = ShardedClient::with_config(mgr_transport, mgr_mailbox, spec, &config);
        client.set_map(initial);
        if let Some(dir) = &trace_dir {
            if let Ok(sink) = miniraid_obs::json::JsonlSink::create(dir.join("client.jsonl")) {
                client.set_tracer(miniraid_core::trace::Tracer::new(
                    SiteId(n),
                    std::sync::Arc::new(miniraid_core::trace::SystemClock::new()),
                    std::sync::Arc::new(sink),
                ));
            }
        }
        (Cluster { handles }, client, controls)
    }

    /// Launch with WAL-backed durable storage under `dir/site-<i>/`.
    ///
    /// Each site recovers its committed database image from disk before
    /// joining; a site restarted this way comes up *down* (a process
    /// restart is a site failure in the paper's model) and must be
    /// brought back with `recover`, which runs the type-1 control
    /// transaction and refreshes whatever its preloaded copy missed.
    /// `emit_persistence` is forced on.
    pub fn launch_durable(
        config: ProtocolConfig,
        timing: ClusterTiming,
        dir: &std::path::Path,
    ) -> std::io::Result<(Cluster, ManagingClient<ChannelTransport, ChannelMailbox>)> {
        let (cluster, client, _) = Self::launch_durable_instrumented(config, timing, dir)?;
        Ok((cluster, client))
    }

    /// [`Cluster::launch_durable`], additionally returning each site's
    /// shared WAL counter handle (fsyncs, commit records, bytes) so a
    /// benchmark harness can compute fsyncs-per-committed-transaction
    /// without scraping metrics.
    #[allow(clippy::type_complexity)]
    pub fn launch_durable_instrumented(
        mut config: ProtocolConfig,
        timing: ClusterTiming,
        dir: &std::path::Path,
    ) -> std::io::Result<(
        Cluster,
        ManagingClient<ChannelTransport, ChannelMailbox>,
        Vec<std::sync::Arc<miniraid_storage::WalCounters>>,
    )> {
        config.emit_persistence = true;
        let n = config.n_sites;
        let manager_id = SiteId(n);
        let mut endpoints = ChannelNetwork::new(n as usize + 1);
        let (mgr_transport, mgr_mailbox) = endpoints.pop().expect("manager endpoint");

        // Open every store first to find the bootstrap authority of a
        // full-cluster restart: the site with the highest committed
        // transaction comes up operational, the rest rejoin through
        // type-1 control transactions (and copier refreshes).
        let mut stores = Vec::with_capacity(n as usize);
        for i in 0..n {
            let site_dir = dir.join(format!("site-{i}"));
            let store = miniraid_storage::DurableStore::open(&site_dir, config.db_size)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            stores.push(store);
        }
        let any_state = stores.iter().any(|s| s.last_txn() > 0);
        let bootstrap: Option<usize> = any_state.then(|| {
            (0..stores.len())
                .max_by_key(|i| stores[*i].last_txn())
                .expect("at least one site")
        });

        let mut handles = Vec::with_capacity(n as usize);
        let mut counters = Vec::with_capacity(n as usize);
        for ((i, (transport, mailbox)), store) in endpoints.into_iter().enumerate().zip(stores) {
            counters.push(store.counters());
            let mut engine = SiteEngine::new(SiteId(i as u8), config.clone());
            if store.last_txn() > 0 {
                // Instant restart: the checkpoint image (already in
                // memory) loads eagerly, but WAL records hand the engine
                // a lazy restart image — items hydrate on first touch or
                // via the site loop's background replay, so the site is
                // operational before the log is re-applied.
                engine.preload_db(
                    store
                        .mem()
                        .iter()
                        .filter(|(_, v)| v.version > 0)
                        .map(|(item, v)| (miniraid_core::ids::ItemId(item), v)),
                );
                engine.preload_lazy(store.image());
            }
            engine.preload_faillocks(
                store
                    .faillocks()
                    .iter()
                    .map(|(item, word)| (miniraid_core::ids::ItemId(*item), *word)),
            );
            if store.session() > 0 {
                engine.preload_session(miniraid_core::ids::SessionNumber(store.session()));
            }
            if any_state && bootstrap != Some(i) {
                // Restarted, non-authoritative: rejoin via Recover.
                engine.assume_failed();
            }
            let handle = std::thread::Builder::new()
                .name(format!("miniraid-site-{i}"))
                .spawn(move || {
                    crate::site::run_site_durable(
                        engine,
                        transport,
                        mailbox,
                        manager_id,
                        timing,
                        Some(store),
                    )
                })
                .expect("spawn site thread");
            handles.push(handle);
        }
        let client = ManagingClient::new(mgr_transport, mgr_mailbox, n);
        Ok((Cluster { handles }, client, counters))
    }

    /// Launch over real TCP sockets on localhost. Site `i` listens on
    /// `base_port + i`; the manager on `base_port + n_sites`.
    pub fn launch_tcp(
        config: ProtocolConfig,
        timing: ClusterTiming,
        base_port: u16,
    ) -> std::io::Result<(Cluster, ManagingClient<TcpTransport, TcpMailbox>)> {
        let n = config.n_sites;
        let manager_id = SiteId(n);
        let plan = AddressPlan { base_port };
        let mut handles = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (transport, mailbox) = TcpEndpoint::bind(SiteId(i), plan)?;
            let engine = SiteEngine::new(SiteId(i), config.clone());
            let handle = std::thread::Builder::new()
                .name(format!("miniraid-site-{i}"))
                .spawn(move || run_site(engine, transport, mailbox, manager_id, timing))
                .expect("spawn site thread");
            handles.push(handle);
        }
        let (mgr_transport, mgr_mailbox) = TcpEndpoint::bind(manager_id, plan)?;
        let client = ManagingClient::new(mgr_transport, mgr_mailbox, n);
        Ok((Cluster { handles }, client))
    }

    /// Wait for every site thread to exit (after `terminate_all`). Call
    /// `join` with a bounded patience in tests.
    pub fn join(self, patience: Duration) {
        let deadline = std::time::Instant::now() + patience;
        for handle in self.handles {
            // There is no timed join in std; poll with is_finished.
            while !handle.is_finished() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
            // A site that missed Terminate (because it was "down") is a
            // detached daemon thread; it parks on its mailbox harmlessly.
        }
    }
}
