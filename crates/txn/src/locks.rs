//! Strict two-phase locking — re-exported from `miniraid-core`.
//!
//! The lock manager moved into `miniraid-core` so the site engine can
//! serialize pipelined transactions through it (the engine cannot depend
//! on this crate — the dependency runs the other way). This module keeps
//! the original `miniraid_txn::locks` paths working.

pub use miniraid_core::locks::{LockManager, LockMode, LockResult};
