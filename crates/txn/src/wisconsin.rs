//! Wisconsin-benchmark-style workload (Bitton, DeWitt, Turbyfill 1983 —
//! the paper's cited \[Bitt83\] and second named future benchmark).
//!
//! The Wisconsin benchmark is a relational query benchmark; for a record
//! (item) level replicated store we reproduce its access *shapes*:
//! selection scans with 1 % and 10 % selectivity over a `tenk`-style
//! relation, and bulk updates over qualifying ranges. Each generated
//! transaction is one query: a range of reads (selection) or a range of
//! read-write pairs (update), over a relation laid out densely in the
//! item universe.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use miniraid_core::ids::{ItemId, TxnId};
use miniraid_core::ops::{Operation, Transaction};

use crate::workload::WorkloadGen;

/// Query shapes generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WisconsinQuery {
    /// 1 %-selectivity selection (reads).
    SelectOnePercent,
    /// 10 %-selectivity selection (reads).
    SelectTenPercent,
    /// 1 %-selectivity update (read-modify-writes).
    UpdateOnePercent,
}

/// The Wisconsin-style generator.
#[derive(Debug, Clone)]
pub struct WisconsinGen {
    rng: StdRng,
    relation_size: u32,
    /// Mix weights for the three query shapes, out of 100.
    select1_weight: u32,
    select10_weight: u32,
}

impl WisconsinGen {
    /// Create over a relation of `relation_size` tuples with the default
    /// mix (50 % 1 %-selects, 30 % 10 %-selects, 20 % updates).
    pub fn new(seed: u64, relation_size: u32) -> Self {
        assert!(relation_size >= 100, "relation must have >= 100 tuples");
        WisconsinGen {
            rng: StdRng::seed_from_u64(seed),
            relation_size,
            select1_weight: 50,
            select10_weight: 30,
        }
    }

    fn pick_query(&mut self) -> WisconsinQuery {
        let roll = self.rng.random_range(0..100);
        if roll < self.select1_weight {
            WisconsinQuery::SelectOnePercent
        } else if roll < self.select1_weight + self.select10_weight {
            WisconsinQuery::SelectTenPercent
        } else {
            WisconsinQuery::UpdateOnePercent
        }
    }

    fn range(&mut self, fraction: f64) -> (u32, u32) {
        let len = ((self.relation_size as f64 * fraction) as u32).max(1);
        let start = self.rng.random_range(0..self.relation_size - len + 1);
        (start, len)
    }
}

impl WorkloadGen for WisconsinGen {
    fn next_txn(&mut self, id: TxnId) -> Transaction {
        let query = self.pick_query();
        let mut ops = Vec::new();
        match query {
            WisconsinQuery::SelectOnePercent => {
                let (start, len) = self.range(0.01);
                for i in start..start + len {
                    ops.push(Operation::Read(ItemId(i)));
                }
            }
            WisconsinQuery::SelectTenPercent => {
                let (start, len) = self.range(0.10);
                for i in start..start + len {
                    ops.push(Operation::Read(ItemId(i)));
                }
            }
            WisconsinQuery::UpdateOnePercent => {
                let (start, len) = self.range(0.01);
                let new_value = self.rng.random_range(1..=u64::MAX);
                for i in start..start + len {
                    ops.push(Operation::Read(ItemId(i)));
                    ops.push(Operation::Write(ItemId(i), new_value));
                }
            }
        }
        Transaction::new(id, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_inside_relation() {
        let mut g = WisconsinGen::new(1, 1000);
        for i in 0..300 {
            let t = g.next_txn(TxnId(i));
            assert!(!t.is_empty());
            for op in &t.ops {
                assert!(op.item().0 < 1000);
            }
        }
    }

    #[test]
    fn selectivities_match_shapes() {
        let mut g = WisconsinGen::new(2, 1000);
        let mut saw_select10 = false;
        let mut saw_update = false;
        for i in 0..300 {
            let t = g.next_txn(TxnId(i));
            if t.is_read_only() {
                // 1 % => 10 reads, 10 % => 100 reads.
                assert!(t.len() == 10 || t.len() == 100, "len {}", t.len());
                saw_select10 |= t.len() == 100;
            } else {
                assert_eq!(t.len(), 20, "update = 10 read-write pairs");
                saw_update = true;
            }
        }
        assert!(saw_select10 && saw_update);
    }

    #[test]
    #[should_panic(expected = ">= 100")]
    fn tiny_relation_rejected() {
        let _ = WisconsinGen::new(1, 10);
    }
}
