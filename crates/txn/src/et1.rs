//! ET1/DebitCredit-style workload (Anon et al. 1985, the paper's cited
//! \[Anon85\] and named future benchmark).
//!
//! The classic bank schema — branches, tellers, accounts, history — is
//! mapped onto the dense item universe:
//!
//! ```text
//! [0, branches)                                  branch balances
//! [branches, branches+tellers)                   teller balances
//! [.., ..+accounts)                              account balances
//! [.., ..+history_slots)                         history ring buffer
//! ```
//!
//! Each transaction updates one account, its teller and its branch, and
//! appends a history record — four read-modify-write pairs, exactly the
//! DebitCredit profile.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use miniraid_core::ids::{ItemId, TxnId};
use miniraid_core::ops::{Operation, Transaction};

use crate::workload::WorkloadGen;

/// Scale description of the bank database.
#[derive(Debug, Clone, Copy)]
pub struct Et1Scale {
    /// Number of branches.
    pub branches: u32,
    /// Tellers per branch.
    pub tellers_per_branch: u32,
    /// Accounts per branch.
    pub accounts_per_branch: u32,
    /// History ring-buffer slots.
    pub history_slots: u32,
}

impl Et1Scale {
    /// A laptop-scale default (1 branch : 10 tellers : 100 accounts, as
    /// in TPC-B's ratios, scaled down).
    pub fn tiny() -> Self {
        Et1Scale {
            branches: 2,
            tellers_per_branch: 5,
            accounts_per_branch: 50,
            history_slots: 32,
        }
    }

    /// Total items the schema occupies.
    pub fn db_size(&self) -> u32 {
        self.branches
            + self.branches * self.tellers_per_branch
            + self.branches * self.accounts_per_branch
            + self.history_slots
    }
}

/// The ET1/DebitCredit generator.
#[derive(Debug, Clone)]
pub struct Et1Gen {
    rng: StdRng,
    scale: Et1Scale,
    next_history: u32,
}

impl Et1Gen {
    /// Create a generator.
    pub fn new(seed: u64, scale: Et1Scale) -> Self {
        Et1Gen {
            rng: StdRng::seed_from_u64(seed),
            scale,
            next_history: 0,
        }
    }

    /// The scale in use.
    pub fn scale(&self) -> Et1Scale {
        self.scale
    }

    fn branch_item(&self, branch: u32) -> ItemId {
        ItemId(branch)
    }

    fn teller_item(&self, branch: u32, teller: u32) -> ItemId {
        ItemId(self.scale.branches + branch * self.scale.tellers_per_branch + teller)
    }

    fn account_item(&self, branch: u32, account: u32) -> ItemId {
        ItemId(
            self.scale.branches
                + self.scale.branches * self.scale.tellers_per_branch
                + branch * self.scale.accounts_per_branch
                + account,
        )
    }

    fn history_item(&mut self) -> ItemId {
        let base = self.scale.branches
            + self.scale.branches * self.scale.tellers_per_branch
            + self.scale.branches * self.scale.accounts_per_branch;
        let slot = self.next_history % self.scale.history_slots;
        self.next_history = self.next_history.wrapping_add(1);
        ItemId(base + slot)
    }
}

impl WorkloadGen for Et1Gen {
    fn next_txn(&mut self, id: TxnId) -> Transaction {
        let branch = self.rng.random_range(0..self.scale.branches);
        let teller = self.rng.random_range(0..self.scale.tellers_per_branch);
        let account = self.rng.random_range(0..self.scale.accounts_per_branch);
        let delta = self.rng.random_range(1..=1_000u64);
        let account_item = self.account_item(branch, account);
        let teller_item = self.teller_item(branch, teller);
        let branch_item = self.branch_item(branch);
        let history_item = self.history_item();
        // Read-modify-write of account, teller, branch; append history.
        Transaction::new(
            id,
            vec![
                Operation::Read(account_item),
                Operation::Write(account_item, delta),
                Operation::Read(teller_item),
                Operation::Write(teller_item, delta),
                Operation::Read(branch_item),
                Operation::Write(branch_item, delta),
                Operation::Write(history_item, id.0),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_regions_do_not_overlap() {
        let scale = Et1Scale::tiny();
        let mut g = Et1Gen::new(1, scale);
        let branch_end = scale.branches;
        let teller_end = branch_end + scale.branches * scale.tellers_per_branch;
        let account_end = teller_end + scale.branches * scale.accounts_per_branch;
        for i in 0..200 {
            let t = g.next_txn(TxnId(i));
            assert_eq!(t.len(), 7);
            let items: Vec<u32> = t.ops.iter().map(|o| o.item().0).collect();
            // account, account, teller, teller, branch, branch, history
            assert!((teller_end..account_end).contains(&items[0]));
            assert!((branch_end..teller_end).contains(&items[2]));
            assert!(items[4] < branch_end);
            assert!((account_end..scale.db_size()).contains(&items[6]));
        }
    }

    #[test]
    fn history_ring_advances() {
        let mut g = Et1Gen::new(1, Et1Scale::tiny());
        let h1 = g.next_txn(TxnId(1)).ops[6].item();
        let h2 = g.next_txn(TxnId(2)).ops[6].item();
        assert_ne!(h1, h2);
    }

    #[test]
    fn every_txn_is_an_update() {
        let mut g = Et1Gen::new(5, Et1Scale::tiny());
        for i in 0..50 {
            assert!(!g.next_txn(TxnId(i)).is_read_only());
        }
    }

    #[test]
    fn db_size_accounts_for_all_regions() {
        let s = Et1Scale::tiny();
        assert_eq!(s.db_size(), 2 + 10 + 100 + 32);
    }
}
