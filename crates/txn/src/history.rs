//! Conflict-serializability checking for execution histories.
//!
//! A history is the interleaved sequence of data operations actually
//! executed. Two operations conflict when they touch the same item and
//! at least one writes. A history is conflict-serializable iff its
//! precedence (conflict) graph is acyclic; any topological order of that
//! graph is an equivalent serial order. The locking scheduler's runs are
//! validated against this checker (strict 2PL guarantees acyclicity).

use std::collections::{HashMap, HashSet, VecDeque};

use miniraid_core::ids::{ItemId, TxnId};

/// One executed operation in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryOp {
    /// The executing transaction.
    pub txn: TxnId,
    /// The item touched.
    pub item: ItemId,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// The precedence graph of a history.
#[derive(Debug, Default)]
pub struct PrecedenceGraph {
    /// Adjacency: `a -> b` means `a` must precede `b` serially.
    edges: HashMap<TxnId, HashSet<TxnId>>,
    nodes: HashSet<TxnId>,
}

impl PrecedenceGraph {
    /// Build the precedence graph of `history`.
    pub fn build(history: &[HistoryOp]) -> Self {
        let mut graph = PrecedenceGraph::default();
        for op in history {
            graph.nodes.insert(op.txn);
        }
        for (i, a) in history.iter().enumerate() {
            for b in &history[i + 1..] {
                if a.txn != b.txn && a.item == b.item && (a.is_write || b.is_write) {
                    graph.edges.entry(a.txn).or_default().insert(b.txn);
                }
            }
        }
        graph
    }

    /// Number of transactions in the history.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the history touched no transactions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A topological order of the graph (an equivalent serial order), or
    /// `None` if the graph has a cycle (not conflict-serializable).
    pub fn serial_order(&self) -> Option<Vec<TxnId>> {
        let mut in_degree: HashMap<TxnId, usize> = self.nodes.iter().map(|t| (*t, 0)).collect();
        for targets in self.edges.values() {
            for t in targets {
                *in_degree.get_mut(t).expect("known node") += 1;
            }
        }
        // Deterministic order: lowest txn id first among the ready set.
        let mut ready: Vec<TxnId> = in_degree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(t, _)| *t)
            .collect();
        ready.sort_unstable();
        let mut queue: VecDeque<TxnId> = ready.into();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(t) = queue.pop_front() {
            order.push(t);
            if let Some(targets) = self.edges.get(&t) {
                let mut newly: Vec<TxnId> = Vec::new();
                for next in targets {
                    let d = in_degree.get_mut(next).expect("known node");
                    *d -= 1;
                    if *d == 0 {
                        newly.push(*next);
                    }
                }
                newly.sort_unstable();
                queue.extend(newly);
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }

    /// True iff the history is conflict-serializable.
    pub fn is_serializable(&self) -> bool {
        self.serial_order().is_some()
    }

    /// Does the graph require `a` before `b`?
    pub fn requires(&self, a: TxnId, b: TxnId) -> bool {
        self.edges.get(&a).is_some_and(|t| t.contains(&b))
    }
}

/// Convenience: check a history directly.
pub fn is_conflict_serializable(history: &[HistoryOp]) -> bool {
    PrecedenceGraph::build(history).is_serializable()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(txn: u64, item: u32, is_write: bool) -> HistoryOp {
        HistoryOp {
            txn: TxnId(txn),
            item: ItemId(item),
            is_write,
        }
    }

    #[test]
    fn serial_history_is_serializable() {
        let h = [
            op(1, 0, true),
            op(1, 1, true),
            op(2, 0, false),
            op(2, 1, true),
        ];
        let g = PrecedenceGraph::build(&h);
        assert!(g.is_serializable());
        assert_eq!(g.serial_order().unwrap(), vec![TxnId(1), TxnId(2)]);
        assert!(g.requires(TxnId(1), TxnId(2)));
        assert!(!g.requires(TxnId(2), TxnId(1)));
    }

    #[test]
    fn classic_nonserializable_interleaving_is_rejected() {
        // T1 reads x, T2 writes x, T2 writes y, T1 writes y:
        // T1 -> T2 (on x) and T2 -> T1 (on y) — a cycle.
        let h = [
            op(1, 0, false),
            op(2, 0, true),
            op(2, 1, true),
            op(1, 1, true),
        ];
        assert!(!is_conflict_serializable(&h));
    }

    #[test]
    fn read_read_does_not_conflict() {
        let h = [op(1, 0, false), op(2, 0, false), op(1, 0, false)];
        let g = PrecedenceGraph::build(&h);
        assert!(g.is_serializable());
        assert!(!g.requires(TxnId(1), TxnId(2)));
        assert!(!g.requires(TxnId(2), TxnId(1)));
    }

    #[test]
    fn empty_history() {
        let g = PrecedenceGraph::build(&[]);
        assert!(g.is_empty());
        assert!(g.is_serializable());
        assert_eq!(g.serial_order().unwrap(), Vec::<TxnId>::new());
    }

    #[test]
    fn three_way_cycle_detected() {
        let h = [
            op(1, 0, true),
            op(2, 0, true), // 1 -> 2
            op(2, 1, true),
            op(3, 1, true), // 2 -> 3
            op(3, 2, true),
            op(1, 2, true), // 3 -> 1: cycle
        ];
        assert!(!is_conflict_serializable(&h));
    }

    #[test]
    fn disjoint_transactions_allow_any_order() {
        let h = [op(2, 0, true), op(1, 1, true)];
        let g = PrecedenceGraph::build(&h);
        assert_eq!(g.serial_order().unwrap(), vec![TxnId(1), TxnId(2)]);
    }
}
