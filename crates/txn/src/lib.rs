//! # miniraid-txn — workloads and concurrency control
//!
//! The transaction-generation side of the paper's testbed, plus the
//! concurrency control the paper explicitly factored out but planned to
//! add ("we also plan to run this protocol in the complete RAID system
//! and take into account other factors such as concurrency control").
//!
//! * [`workload`] — the paper's generator (uniform items from a
//!   frequently-referenced hot set, equal read/write probability, random
//!   size 1..=max) plus a Zipf-skewed variant.
//! * [`et1`] — an ET1/DebitCredit-style generator (Anon et al., "A
//!   measure of transaction processing power", 1985), the benchmark the
//!   paper names as future work.
//! * [`wisconsin`] — a Wisconsin-benchmark-style generator (Bitton,
//!   DeWitt, Turbyfill 1983), the paper's other named future benchmark.
//! * [`locks`] and [`deadlock`] — a strict two-phase-locking manager with
//!   wait-for-graph deadlock detection (implemented in `miniraid-core`,
//!   where the pipelined site engine uses it; re-exported here).
//! * [`scheduler`] — serial execution (the paper's assumption 2) and a
//!   2PL-interleaved scheduler for single-site validation of the lock
//!   manager.

#![warn(missing_docs)]

pub mod deadlock;
pub mod et1;
pub mod history;
pub mod locks;
pub mod scheduler;
pub mod wisconsin;
pub mod workload;

pub use et1::Et1Gen;
pub use locks::{LockManager, LockMode};
pub use wisconsin::WisconsinGen;
pub use workload::{UniformGen, WorkloadGen, ZipfGen};
