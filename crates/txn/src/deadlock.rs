//! Wait-for graph — re-exported from `miniraid-core`.
//!
//! Moved alongside [`crate::locks`] so the site engine can use deadlock
//! detection; this shim preserves the original paths.

pub use miniraid_core::deadlock::WaitForGraph;
