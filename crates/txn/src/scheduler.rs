//! Transaction schedulers over a single-site store.
//!
//! [`SerialScheduler`] reproduces the paper's assumption 2 ("transactions
//! were processed serially"); [`LockingScheduler`] interleaves operations
//! under strict 2PL with deadlock-victim aborts and retries, validating
//! that the lock manager provides conflict-serializable executions —
//! the integration path the paper names as future work.

use std::collections::{HashMap, VecDeque};

use miniraid_core::ids::TxnId;
use miniraid_core::ops::{Operation, Transaction};

use crate::history::HistoryOp;
use crate::locks::{LockManager, LockMode, LockResult};

/// Result of executing a batch of transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// Final database image.
    pub db: Vec<u64>,
    /// Commit order.
    pub commit_order: Vec<TxnId>,
    /// Values observed by each transaction's reads, in op order.
    pub reads: HashMap<TxnId, Vec<u64>>,
    /// Deadlock-victim aborts that were retried.
    pub deadlock_aborts: u32,
    /// The executed operation history (committed transactions only), for
    /// serializability checking.
    pub history: Vec<HistoryOp>,
}

/// Execute transactions one at a time, in order.
pub struct SerialScheduler;

impl SerialScheduler {
    /// Run `txns` serially over a fresh database of `db_size` items.
    pub fn run(db_size: u32, txns: &[Transaction]) -> BatchResult {
        let mut db = vec![0u64; db_size as usize];
        let mut reads: HashMap<TxnId, Vec<u64>> = HashMap::new();
        let mut commit_order = Vec::new();
        let mut history = Vec::new();
        for txn in txns {
            let entry = reads.entry(txn.id).or_default();
            for op in &txn.ops {
                history.push(HistoryOp {
                    txn: txn.id,
                    item: op.item(),
                    is_write: op.is_write(),
                });
                match op {
                    Operation::Read(item) => entry.push(db[item.index()]),
                    Operation::Write(item, value) => db[item.index()] = *value,
                }
            }
            commit_order.push(txn.id);
        }
        BatchResult {
            db,
            commit_order,
            reads,
            deadlock_aborts: 0,
            history,
        }
    }
}

#[derive(Debug)]
struct Running {
    txn: Transaction,
    /// Next op index to execute.
    pc: usize,
    /// Writes staged until commit (strict 2PL still applies writes at
    /// operation time in many systems; we stage to give clean aborts).
    staged: Vec<(usize, u64)>,
    reads: Vec<u64>,
    /// Operations executed so far (discarded if the txn aborts/retries).
    ops_done: Vec<HistoryOp>,
}

/// Interleave transactions round-robin under strict two-phase locking.
pub struct LockingScheduler;

impl LockingScheduler {
    /// Run `txns` with an interleaving that advances each live
    /// transaction one operation per round. Deadlock victims abort,
    /// release, and retry from scratch.
    pub fn run(db_size: u32, txns: &[Transaction]) -> BatchResult {
        let mut db = vec![0u64; db_size as usize];
        let mut lm = LockManager::new();
        let mut live: VecDeque<Running> = txns
            .iter()
            .map(|t| Running {
                txn: t.clone(),
                pc: 0,
                staged: Vec::new(),
                reads: Vec::new(),
                ops_done: Vec::new(),
            })
            .collect();
        let mut blocked: HashMap<TxnId, Running> = HashMap::new();
        let mut result = BatchResult {
            db: Vec::new(),
            commit_order: Vec::new(),
            reads: HashMap::new(),
            deadlock_aborts: 0,
            history: Vec::new(),
        };

        while let Some(mut running) = live.pop_front() {
            // Advance this transaction until it blocks, aborts or commits.
            loop {
                if running.pc == running.txn.ops.len() {
                    // Commit: apply staged writes, release locks.
                    for (idx, value) in &running.staged {
                        db[*idx] = *value;
                    }
                    result.commit_order.push(running.txn.id);
                    result.reads.insert(running.txn.id, running.reads);
                    result.history.append(&mut running.ops_done);
                    for woken in lm.release_all(running.txn.id) {
                        if let Some(r) = blocked.remove(&woken) {
                            live.push_back(r);
                        }
                    }
                    break;
                }
                let op = running.txn.ops[running.pc];
                let (item, mode) = match op {
                    Operation::Read(item) => (item, LockMode::Shared),
                    Operation::Write(item, _) => (item, LockMode::Exclusive),
                };
                match lm.acquire(running.txn.id, item, mode) {
                    LockResult::Granted => {
                        running.ops_done.push(HistoryOp {
                            txn: running.txn.id,
                            item,
                            is_write: matches!(op, Operation::Write(..)),
                        });
                        match op {
                            Operation::Read(item) => {
                                // Read-your-writes over staged state.
                                let staged = running
                                    .staged
                                    .iter()
                                    .rev()
                                    .find(|(idx, _)| *idx == item.index())
                                    .map(|(_, v)| *v);
                                running.reads.push(staged.unwrap_or(db[item.index()]));
                            }
                            Operation::Write(item, value) => {
                                running.staged.push((item.index(), value));
                            }
                        }
                        running.pc += 1;
                    }
                    LockResult::Waiting => {
                        blocked.insert(running.txn.id, running);
                        break;
                    }
                    LockResult::Deadlock => {
                        // Victim: abort, release, retry from scratch.
                        result.deadlock_aborts += 1;
                        for woken in lm.release_all(running.txn.id) {
                            if let Some(r) = blocked.remove(&woken) {
                                live.push_back(r);
                            }
                        }
                        running.pc = 0;
                        running.staged.clear();
                        running.reads.clear();
                        running.ops_done.clear();
                        live.push_back(running);
                        break;
                    }
                }
            }
        }
        assert!(blocked.is_empty(), "no transaction left blocked");
        result.db = db;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{UniformGen, WorkloadGen};
    use miniraid_core::ids::ItemId;

    fn txn(id: u64, ops: Vec<Operation>) -> Transaction {
        Transaction::new(TxnId(id), ops)
    }

    #[test]
    fn serial_scheduler_applies_in_order() {
        let txns = vec![
            txn(1, vec![Operation::Write(ItemId(0), 10)]),
            txn(
                2,
                vec![Operation::Read(ItemId(0)), Operation::Write(ItemId(0), 20)],
            ),
        ];
        let r = SerialScheduler::run(4, &txns);
        assert_eq!(r.db[0], 20);
        assert_eq!(r.reads[&TxnId(2)], vec![10]);
        assert_eq!(r.commit_order, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn locking_scheduler_is_equivalent_to_its_commit_order() {
        let mut gen = UniformGen::new(11, 16, 6);
        let txns: Vec<Transaction> = (1..=40).map(|i| gen.next_txn(TxnId(i))).collect();
        let locked = LockingScheduler::run(16, &txns);
        // Re-execute serially in the commit order the locking run chose:
        // the final database must match (conflict-serializability).
        let by_id: HashMap<TxnId, &Transaction> = txns.iter().map(|t| (t.id, t)).collect();
        let ordered: Vec<Transaction> = locked
            .commit_order
            .iter()
            .map(|id| (*by_id[id]).clone())
            .collect();
        let serial = SerialScheduler::run(16, &ordered);
        assert_eq!(locked.db, serial.db);
        // Reads must match too.
        for id in &locked.commit_order {
            assert_eq!(locked.reads[id], serial.reads[id], "reads of {id}");
        }
        assert_eq!(locked.commit_order.len(), 40);
    }

    #[test]
    fn deadlock_victims_retry_and_commit() {
        // Classic crossing pattern: T1 locks 0 then 1, T2 locks 1 then 0.
        let txns = vec![
            txn(
                1,
                vec![
                    Operation::Write(ItemId(0), 1),
                    Operation::Write(ItemId(1), 1),
                ],
            ),
            txn(
                2,
                vec![
                    Operation::Write(ItemId(1), 2),
                    Operation::Write(ItemId(0), 2),
                ],
            ),
        ];
        let r = LockingScheduler::run(2, &txns);
        assert_eq!(r.commit_order.len(), 2, "both eventually commit");
        // Final state is one of the two serial outcomes.
        assert!(r.db == vec![1, 1] || r.db == vec![2, 2]);
    }

    #[test]
    fn disjoint_transactions_all_commit_without_aborts() {
        let txns: Vec<Transaction> = (0..8)
            .map(|i| txn(i + 1, vec![Operation::Write(ItemId(i as u32), i + 1)]))
            .collect();
        let r = LockingScheduler::run(8, &txns);
        assert_eq!(r.deadlock_aborts, 0);
        assert_eq!(r.db, (1..=8).collect::<Vec<u64>>());
    }
}
