//! Transaction generators.
//!
//! The paper's managing site generated each database transaction as "a
//! random number of operations (from 1 to the maximum specified for the
//! system)" with "an equal probability of an operation being a read or a
//! write and each operation ... for a randomly chosen data item from the
//! database" (§1.2). [`UniformGen`] reproduces that exactly;
//! [`ZipfGen`] adds the skewed-access variant the paper's §5 discusses
//! ("in reality ... all data items are accessed with different
//! probabilities").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use miniraid_core::ids::{ItemId, TxnId};
use miniraid_core::ops::{Operation, Transaction};

/// A source of database transactions.
pub trait WorkloadGen {
    /// Produce the next transaction, stamped with `id`.
    fn next_txn(&mut self, id: TxnId) -> Transaction;
}

/// The paper's uniform generator over the frequently-referenced hot set.
///
/// ```
/// use miniraid_core::ids::TxnId;
/// use miniraid_txn::workload::{UniformGen, WorkloadGen};
///
/// // db = 50 items, max transaction size 5 (the paper's Experiment 2).
/// let mut gen = UniformGen::new(1987, 50, 5);
/// let txn = gen.next_txn(TxnId(1));
/// assert!((1..=5).contains(&txn.len()));
/// assert!(txn.ops.iter().all(|op| op.item().0 < 50));
/// ```
#[derive(Debug, Clone)]
pub struct UniformGen {
    rng: StdRng,
    db_size: u32,
    max_ops: u32,
    /// Probability that an operation is a read (the paper uses 0.5; §5
    /// discusses the read-heavy case, exercised by ablation X3).
    read_fraction: f64,
}

impl UniformGen {
    /// The paper's configuration: equal read/write probability.
    pub fn new(seed: u64, db_size: u32, max_ops: u32) -> Self {
        Self::with_read_fraction(seed, db_size, max_ops, 0.5)
    }

    /// Custom read fraction (e.g. 0.8 for a read-heavy mix).
    pub fn with_read_fraction(seed: u64, db_size: u32, max_ops: u32, read_fraction: f64) -> Self {
        assert!(db_size > 0 && max_ops > 0);
        assert!((0.0..=1.0).contains(&read_fraction));
        UniformGen {
            rng: StdRng::seed_from_u64(seed),
            db_size,
            max_ops,
            read_fraction,
        }
    }
}

impl WorkloadGen for UniformGen {
    fn next_txn(&mut self, id: TxnId) -> Transaction {
        let n_ops = self.rng.random_range(1..=self.max_ops);
        let ops = (0..n_ops)
            .map(|_| {
                let item = ItemId(self.rng.random_range(0..self.db_size));
                if self.rng.random_bool(self.read_fraction) {
                    Operation::Read(item)
                } else {
                    Operation::Write(item, self.rng.random_range(1..=u64::MAX))
                }
            })
            .collect();
        Transaction::new(id, ops)
    }
}

/// Zipf-skewed item selection (rank-1 most popular), same size and mix
/// model as [`UniformGen`].
#[derive(Debug, Clone)]
pub struct ZipfGen {
    rng: StdRng,
    max_ops: u32,
    read_fraction: f64,
    /// Cumulative distribution over item ranks.
    cdf: Vec<f64>,
}

impl ZipfGen {
    /// Create with skew parameter `theta` (0 = uniform; 0.99 = heavily
    /// skewed, the YCSB default).
    pub fn new(seed: u64, db_size: u32, max_ops: u32, theta: f64, read_fraction: f64) -> Self {
        assert!(db_size > 0 && max_ops > 0);
        assert!(theta >= 0.0);
        let weights: Vec<f64> = (1..=db_size as u64)
            .map(|rank| 1.0 / (rank as f64).powf(theta))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfGen {
            rng: StdRng::seed_from_u64(seed),
            max_ops,
            read_fraction,
            cdf,
        }
    }

    fn pick_item(&mut self) -> ItemId {
        let u: f64 = self.rng.random();
        let idx = self.cdf.partition_point(|&c| c < u);
        ItemId(idx.min(self.cdf.len() - 1) as u32)
    }
}

impl WorkloadGen for ZipfGen {
    fn next_txn(&mut self, id: TxnId) -> Transaction {
        let n_ops = self.rng.random_range(1..=self.max_ops);
        let ops = (0..n_ops)
            .map(|_| {
                let item = self.pick_item();
                if self.rng.random_bool(self.read_fraction) {
                    Operation::Read(item)
                } else {
                    Operation::Write(item, self.rng.random_range(1..=u64::MAX))
                }
            })
            .collect();
        Transaction::new(id, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_size_bounds() {
        let mut g = UniformGen::new(42, 50, 10);
        for i in 0..500 {
            let t = g.next_txn(TxnId(i));
            assert!((1..=10).contains(&t.len()));
            for op in &t.ops {
                assert!(op.item().0 < 50);
            }
        }
    }

    #[test]
    fn uniform_mix_is_roughly_half_reads() {
        let mut g = UniformGen::new(7, 50, 10);
        let (mut reads, mut total) = (0usize, 0usize);
        for i in 0..2000 {
            let t = g.next_txn(TxnId(i));
            reads += t.read_op_count();
            total += t.len();
        }
        let frac = reads as f64 / total as f64;
        assert!((0.45..0.55).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn read_fraction_is_honoured() {
        let mut g = UniformGen::with_read_fraction(7, 50, 10, 0.9);
        let (mut reads, mut total) = (0usize, 0usize);
        for i in 0..2000 {
            let t = g.next_txn(TxnId(i));
            reads += t.read_op_count();
            total += t.len();
        }
        let frac = reads as f64 / total as f64;
        assert!(frac > 0.85, "read fraction {frac}");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = UniformGen::new(9, 20, 5);
        let mut b = UniformGen::new(9, 20, 5);
        for i in 0..50 {
            assert_eq!(a.next_txn(TxnId(i)), b.next_txn(TxnId(i)));
        }
        let mut c = UniformGen::new(10, 20, 5);
        let differs =
            (0..50).any(|i| UniformGen::new(9, 20, 5).next_txn(TxnId(i)) != c.next_txn(TxnId(i)));
        assert!(differs);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut g = ZipfGen::new(3, 100, 4, 0.99, 0.5);
        let mut counts = vec![0u32; 100];
        for i in 0..3000 {
            for op in g.next_txn(TxnId(i)).ops {
                counts[op.item().index()] += 1;
            }
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[90..].iter().sum();
        assert!(head > tail * 3, "head {head} tail {tail}");
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut g = ZipfGen::new(3, 10, 4, 0.0, 0.5);
        let mut counts = vec![0u32; 10];
        for i in 0..5000 {
            for op in g.next_txn(TxnId(i)).ops {
                counts[op.item().index()] += 1;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "spread too wide for theta=0: {counts:?}");
    }
}
