//! Property: the strict-2PL interleaved scheduler always produces a
//! result equivalent to serial execution in its own commit order
//! (conflict-serializability), for arbitrary workloads.

use std::collections::HashMap;

use miniraid_core::ids::{ItemId, TxnId};
use miniraid_core::ops::{Operation, Transaction};
use miniraid_txn::history::PrecedenceGraph;
use miniraid_txn::scheduler::{LockingScheduler, SerialScheduler};
use proptest::prelude::*;

fn arb_txns() -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0u32..8, 1u64..100), 1..6),
        1..20,
    )
    .prop_map(|txns| {
        txns.into_iter()
            .enumerate()
            .map(|(i, ops)| {
                Transaction::new(
                    TxnId(i as u64 + 1),
                    ops.into_iter()
                        .map(|(w, item, value)| {
                            if w {
                                Operation::Write(ItemId(item), value)
                            } else {
                                Operation::Read(ItemId(item))
                            }
                        })
                        .collect(),
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn locking_run_is_conflict_serializable(txns in arb_txns()) {
        let locked = LockingScheduler::run(8, &txns);
        prop_assert_eq!(locked.commit_order.len(), txns.len(), "everything commits");
        let by_id: HashMap<TxnId, &Transaction> =
            txns.iter().map(|t| (t.id, t)).collect();
        let ordered: Vec<Transaction> = locked
            .commit_order
            .iter()
            .map(|id| (*by_id[id]).clone())
            .collect();
        let serial = SerialScheduler::run(8, &ordered);
        prop_assert_eq!(&locked.db, &serial.db);
        for id in &locked.commit_order {
            prop_assert_eq!(&locked.reads[id], &serial.reads[id]);
        }
        // The executed history's precedence graph must be acyclic
        // (strict 2PL guarantees conflict-serializability).
        let graph = PrecedenceGraph::build(&locked.history);
        prop_assert!(graph.is_serializable());
    }

    #[test]
    fn serial_scheduler_reads_see_latest_write(txns in arb_txns()) {
        let result = SerialScheduler::run(8, &txns);
        // Replay manually and compare.
        let mut db = vec![0u64; 8];
        for txn in &txns {
            let mut expect = Vec::new();
            for op in &txn.ops {
                match op {
                    Operation::Read(item) => expect.push(db[item.index()]),
                    Operation::Write(item, value) => db[item.index()] = *value,
                }
            }
            prop_assert_eq!(&result.reads[&txn.id], &expect);
        }
        prop_assert_eq!(&result.db, &db);
    }
}
